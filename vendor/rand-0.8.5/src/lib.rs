//! Offline, dependency-free stand-in for the subset of the `rand` 0.8 API
//! this workspace uses. Fully deterministic: there is no thread-local or
//! OS-entropy generator here, by design — every generator is explicitly
//! seeded (`SeedableRng`), which is what the workspace's determinism lint
//! (L1) demands of callers anyway.
//!
//! Faithfulness notes:
//! - `SeedableRng::seed_from_u64` uses the same SplitMix64 expansion over
//!   4-byte chunks as `rand_core` 0.6, so seeds produce the same generator
//!   states as the real crate.
//! - Integer `gen_range` uses Lemire's widening-multiply rejection method
//!   (unbiased); float ranges use the standard 53-bit mantissa mapping.
//! - `gen::<f64>()` is the real `Standard` mapping `(x >> 11) * 2^-53`.

/// Core generator interface: object-safe, implemented by concrete RNGs.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable construction, mirroring `rand_core::SeedableRng`.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// SplitMix64 expansion over 4-byte chunks, byte-compatible with
    /// `rand_core` 0.6's default implementation.
    fn seed_from_u64(mut state: u64) -> Self {
        const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_add(PHI);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

/// Unbiased uniform draw in `[0, bound)` via widening multiply + rejection.
#[doc(hidden)]
pub fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0, "uniform_u64_below: empty range");
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let m = u128::from(rng.next_u64()) * u128::from(bound);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// Types drawable from the `Standard`-equivalent distribution via `Rng::gen`.
pub trait StandardSample: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_from_u32 {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u32() as $t
            }
        }
    )*};
}
macro_rules! standard_from_u64 {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_from_u32!(u8, u16, u32, i8, i16, i32);
standard_from_u64!(u64, i64, usize, isize);

impl StandardSample for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let hi = rng.next_u64();
        let lo = rng.next_u64();
        u128::from(hi) << 64 | u128::from(lo)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Range argument for `Rng::gen_range`, mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty => $unsigned:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $unsigned).wrapping_sub(self.start as $unsigned);
                let draw = uniform_u64_below(rng, span as u64) as $unsigned;
                (self.start as $unsigned).wrapping_add(draw) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as $unsigned).wrapping_sub(start as $unsigned).wrapping_add(1);
                if span == 0 {
                    // Full domain of the type.
                    return <$t as StandardSample>::sample(rng);
                }
                let draw = uniform_u64_below(rng, span as u64) as $unsigned;
                (start as $unsigned).wrapping_add(draw) as $t
            }
        }
    )*};
}
int_sample_range!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as StandardSample>::sample(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let unit = <$t as StandardSample>::sample(rng);
                start + (end - start) * unit
            }
        }
    )*};
}
float_sample_range!(f32, f64);

/// Convenience methods layered over any `RngCore` (including `dyn RngCore`).
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use crate::{uniform_u64_below, RngCore};

    /// Slice helpers, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        /// Fisher–Yates, high index downward, matching rand 0.8's order.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_u64_below(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_u64_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let b = self.next_u64().to_le_bytes();
                let len = chunk.len();
                chunk.copy_from_slice(&b[..len]);
            }
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let x = rng.gen_range(-5i64..100);
            assert!((-5..100).contains(&x));
            let y = rng.gen_range(0usize..=7);
            assert!(y <= 7);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
