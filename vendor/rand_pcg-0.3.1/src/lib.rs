//! Offline stand-in for `rand_pcg` 0.3 carrying the *real* PCG XSL 128/64
//! (MCG) algorithm — the multiplier, state update, and XSL-RR output function
//! match O'Neill's reference and the upstream crate bit-for-bit, so seeded
//! streams are reproducible against the real implementation.
//!
//! One extension over upstream: [`Mcg128Xsl64::state`] /
//! [`Mcg128Xsl64::from_state`] expose the raw 128-bit state so callers can
//! serialize generator positions into durable snapshots (upstream only offers
//! this through the optional `serde1` feature). Workspace code wraps these in
//! `beeping::rng` so a future switch to the registry crate touches one place.

use rand::{RngCore, SeedableRng};

/// Multiplier from the PCG reference implementation (128-bit MCG).
const MULTIPLIER: u128 = 0x2360_ed05_1fc6_5da4_4385_df64_9fcc_f645;

/// A PCG generator: 128-bit multiplicative congruential state, XSL-RR output.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Mcg128Xsl64 {
    state: u128,
}

/// The conventional alias used throughout the workspace.
pub type Pcg64Mcg = Mcg128Xsl64;

impl Mcg128Xsl64 {
    /// Construct from any 128-bit value; the state is forced odd (an MCG
    /// requires an odd state to achieve its full period).
    pub fn new(state: u128) -> Self {
        Mcg128Xsl64 { state: state | 1 }
    }

    /// Raw generator state (snapshot extension; see module docs).
    pub fn state(&self) -> u128 {
        self.state
    }

    /// Rebuild a generator at an exact stream position captured via
    /// [`Mcg128Xsl64::state`] (snapshot extension; see module docs).
    pub fn from_state(state: u128) -> Self {
        Mcg128Xsl64 { state: state | 1 }
    }
}

/// XSL-RR output: xor-fold the state to 64 bits, then rotate by the top bits.
#[inline]
fn output_xsl_rr(state: u128) -> u64 {
    const XSHIFT: u32 = 64;
    const ROTATE: u32 = 122;
    let rot = (state >> ROTATE) as u32;
    let xsl = ((state >> XSHIFT) as u64) ^ (state as u64);
    xsl.rotate_right(rot)
}

impl RngCore for Mcg128Xsl64 {
    fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_mul(MULTIPLIER);
        output_xsl_rr(self.state)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
    }
}

impl SeedableRng for Mcg128Xsl64 {
    type Seed = [u8; 16];

    fn from_seed(seed: Self::Seed) -> Self {
        Mcg128Xsl64::new(u128::from_le_bytes(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_is_xsl_rr_of_advanced_state() {
        // First output must be XSL-RR of (state * MULTIPLIER): advance, then
        // fold — the MCG convention (there is no increment).
        let seed = 0xcafe_f00d_d15e_a5e5u128 | 1;
        let mut rng = Mcg128Xsl64::new(seed);
        let advanced = seed.wrapping_mul(MULTIPLIER);
        assert_eq!(rng.next_u64(), output_xsl_rr(advanced));
        assert_eq!(rng.state(), advanced);
    }

    #[test]
    fn state_round_trip() {
        let mut a = Mcg128Xsl64::seed_from_u64(0xbeef);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = Mcg128Xsl64::from_state(a.state());
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn state_is_odd() {
        assert_eq!(Mcg128Xsl64::new(0).state() & 1, 1);
        assert_eq!(Mcg128Xsl64::seed_from_u64(0).state() & 1, 1);
    }
}
