//! Offline deterministic stand-in for the subset of `proptest` 1.x this
//! workspace uses: the `proptest!` macro with `#![proptest_config(...)]`,
//! `pat in strategy` bindings, `prop_assert!`-family macros, range / tuple /
//! `any::<T>()` / `collection::vec` strategies, and `prop_map` /
//! `prop_flat_map` combinators.
//!
//! Differences from the real crate, on purpose:
//! - Cases are generated from a fixed per-test seed (FNV-1a of the test's
//!   module path and name), so runs are fully deterministic with no
//!   persistence files or `PROPTEST_*` environment handling.
//! - No shrinking: a failing case reports its inputs via the panic message
//!   of the assertion that fired (case index + test name).

pub mod test_runner {
    /// Run configuration. Only `cases` is honored.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
        /// Accepted for source compatibility with the real crate; the stub
        /// runner does not shrink, so this is never consulted.
        pub max_shrink_iters: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases, ..ProptestConfig::default() }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real default (256) is tuned for shrinking support; without
            // shrinking we trade a few cases for wall-clock on large suites.
            ProptestConfig { cases: 64, max_shrink_iters: 0 }
        }
    }

    /// Why a test case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// An assertion failed; the test fails.
        Fail(String),
        /// The inputs were rejected (e.g. `prop_assume!`); the case is skipped.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "{r}"),
                TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
            }
        }
    }

    #[doc(hidden)]
    pub fn fnv1a(bytes: &[u8]) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    /// Deterministic per-case generator (SplitMix64 stream).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn deterministic(test_hash: u64, case: u64) -> Self {
            // Decorrelate (test, case) pairs before streaming.
            let mut rng = TestRng { state: test_hash ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15) };
            rng.next_u64();
            rng
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`, unbiased (widening multiply + rejection).
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty range");
            let threshold = bound.wrapping_neg() % bound;
            loop {
                let m = u128::from(self.next_u64()) * u128::from(bound);
                if (m as u64) >= threshold {
                    return (m >> 64) as u64;
                }
            }
        }

        /// Uniform f64 in [0, 1).
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values for property tests.
    ///
    /// Unlike the real crate there is no value tree: `gen_value` draws a
    /// concrete value directly from the deterministic case RNG.
    pub trait Strategy {
        type Value;
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, f, reason }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(std::rc::Rc::new(self))
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn gen_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            (self.f)(self.inner.gen_value(rng)).gen_value(rng)
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        f: F,
        reason: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            // Bounded resampling; a filter that rejects everything is a bug
            // in the strategy, so fail loudly rather than spin.
            for _ in 0..1000 {
                let v = self.inner.gen_value(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 consecutive candidates: {}", self.reason)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    #[derive(Clone)]
    pub struct BoxedStrategy<T>(std::rc::Rc<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            self.0.gen_value(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            (**self).gen_value(rng)
        }
    }

    /// String strategies from a small regex subset, mirroring the real
    /// crate's `impl Strategy for &str`. Supported syntax: literal chars,
    /// `.` (printable ASCII), `[a-z0-9_]`-style classes (ranges and
    /// literals, no negation), and the quantifiers `{m}`, `{m,n}`, `?`,
    /// `*`, `+` (unbounded repetition is capped at 8). Anything else
    /// panics, pointing at this stub.
    impl Strategy for str {
        type Value = String;
        fn gen_value(&self, rng: &mut TestRng) -> String {
            gen_from_regex(self, rng)
        }
    }

    fn gen_from_regex(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // One atom: a character class, `.`, or a literal.
            let class: Vec<(char, char)> = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .unwrap_or_else(|| panic!("unclosed [ in regex strategy {pattern:?}"))
                        + i;
                    let body = &chars[i + 1..close];
                    assert!(
                        !body.is_empty() && body[0] != '^',
                        "unsupported char class in regex strategy {pattern:?} (stub proptest)"
                    );
                    let mut ranges = Vec::new();
                    let mut j = 0;
                    while j < body.len() {
                        if j + 2 < body.len() && body[j + 1] == '-' {
                            ranges.push((body[j], body[j + 2]));
                            j += 3;
                        } else {
                            ranges.push((body[j], body[j]));
                            j += 1;
                        }
                    }
                    i = close + 1;
                    ranges
                }
                '.' => {
                    i += 1;
                    vec![(' ', '~')]
                }
                '\\' if i + 1 < chars.len() => {
                    i += 2;
                    vec![(chars[i - 1], chars[i - 1])]
                }
                c if !"{}()|*+?".contains(c) => {
                    i += 1;
                    vec![(c, c)]
                }
                c => panic!("unsupported regex syntax {c:?} in strategy {pattern:?} (stub proptest)"),
            };
            // Optional quantifier.
            let (lo, hi) = if i < chars.len() {
                match chars[i] {
                    '{' => {
                        let close = chars[i..]
                            .iter()
                            .position(|&c| c == '}')
                            .unwrap_or_else(|| panic!("unclosed {{ in regex strategy {pattern:?}"))
                            + i;
                        let body: String = chars[i + 1..close].iter().collect();
                        i = close + 1;
                        match body.split_once(',') {
                            Some((m, n)) => (
                                m.trim().parse::<usize>().unwrap(),
                                n.trim().parse::<usize>().unwrap(),
                            ),
                            None => {
                                let m = body.trim().parse::<usize>().unwrap();
                                (m, m)
                            }
                        }
                    }
                    '?' => {
                        i += 1;
                        (0, 1)
                    }
                    '*' => {
                        i += 1;
                        (0, 8)
                    }
                    '+' => {
                        i += 1;
                        (1, 8)
                    }
                    _ => (1, 1),
                }
            } else {
                (1, 1)
            };
            let count = lo + rng.below((hi - lo + 1) as u64) as usize;
            let total: u64 = class.iter().map(|&(a, b)| b as u64 - a as u64 + 1).sum();
            for _ in 0..count {
                let mut pick = rng.below(total);
                for &(a, b) in &class {
                    let span = b as u64 - a as u64 + 1;
                    if pick < span {
                        out.push(char::from_u32(a as u32 + pick as u32).unwrap());
                        break;
                    }
                    pick -= span;
                }
            }
        }
        out
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128 + 1) as u64;
                    (start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    start + (end - start) * rng.unit_f64() as $t
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.gen_value(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Full-domain strategy for primitive types: `any::<T>()`.
    pub struct Any<T>(core::marker::PhantomData<T>);

    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy<Value = T>,
    {
        Any(core::marker::PhantomData)
    }

    impl Strategy for Any<bool> {
        type Value = bool;
        fn gen_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<f64> {
        type Value = f64;
        fn gen_value(&self, rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for [`vec`]: a fixed size or a size range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max_exclusive: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { min: r.start, max_exclusive: r.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max_exclusive: *r.end() + 1 }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// The main harness macro. Matches the real crate's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///     #[test]
///     fn my_property(x in 0u64..100, flag in any::<bool>()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! { cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_each {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let __hash = $crate::test_runner::fnv1a(
                concat!(module_path!(), "::", stringify!($name)).as_bytes(),
            );
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::deterministic(__hash, __case as u64);
                $(let $arg = $crate::strategy::Strategy::gen_value(&($strat), &mut __rng);)+
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || { $body ::std::result::Result::Ok(()) })();
                match __result {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err(__e) => panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name), __case, __cfg.cases, __e
                    ),
                }
            }
        }
        $crate::__proptest_each! { cfg = $cfg; $($rest)* }
    };
}

/// Fail the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fail the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Fail the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)*);
    }};
}

/// Skip the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
