//! Offline stand-in for the `criterion` 0.5 API surface used by this
//! workspace's benches. Measures with `std::time::Instant` and prints a
//! compact `name  time: [median mean max]` line per benchmark — no plotting,
//! no statistics beyond a simple sample summary, no CLI filtering.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation (recorded, echoed in the report line).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    /// Times `sample_count` samples of `f`, batching iterations so very fast
    /// functions still get a resolvable clock reading.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup + batch size estimation.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let batch = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;

        self.samples.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(start.elapsed() / batch);
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.4} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.4} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.4} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn run_and_report(full_id: &str, sample_count: usize, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher { samples: Vec::new(), sample_count };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{full_id:<40} (no samples)");
        return;
    }
    bencher.samples.sort();
    let median = bencher.samples[bencher.samples.len() / 2];
    let max = *bencher.samples.last().unwrap();
    let mean = bencher.samples.iter().sum::<Duration>() / bencher.samples.len() as u32;
    let tp = match throughput {
        Some(Throughput::Elements(n)) => {
            let per_sec = n as f64 / median.as_secs_f64();
            format!("  thrpt: {per_sec:.0} elem/s")
        }
        Some(Throughput::Bytes(n)) | Some(Throughput::BytesDecimal(n)) => {
            let per_sec = n as f64 / median.as_secs_f64();
            format!("  thrpt: {:.2} MiB/s", per_sec / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!(
        "{full_id:<40} time: [{} {} {}]{tp}",
        fmt_duration(median),
        fmt_duration(mean),
        fmt_duration(max),
    );
}

/// A named group of related benchmarks sharing sample-size and throughput
/// configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'c mut (),
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_and_report(&full, self.sample_size, self.throughput, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_and_report(&full, self.sample_size, self.throughput, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Top-level driver constructed by `criterion_main!`.
pub struct Criterion {
    unit: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { unit: () }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            throughput: None,
            _criterion: &mut self.unit,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_and_report(id, 20, None, &mut f);
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn final_summary(&self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}
