/root/repo/target/debug/liblint.rlib: /root/repo/crates/lint/src/lexer.rs /root/repo/crates/lint/src/lib.rs /root/repo/crates/lint/src/report.rs /root/repo/crates/lint/src/rules.rs
