/root/repo/target/debug/examples/quickstart-72713df66c184935.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-72713df66c184935: examples/quickstart.rs

examples/quickstart.rs:
