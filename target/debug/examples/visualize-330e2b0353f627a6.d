/root/repo/target/debug/examples/visualize-330e2b0353f627a6.d: examples/visualize.rs Cargo.toml

/root/repo/target/debug/examples/libvisualize-330e2b0353f627a6.rmeta: examples/visualize.rs Cargo.toml

examples/visualize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::dbg_macro__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::todo__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unimplemented__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
