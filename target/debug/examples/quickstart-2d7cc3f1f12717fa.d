/root/repo/target/debug/examples/quickstart-2d7cc3f1f12717fa.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-2d7cc3f1f12717fa.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::dbg_macro__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::todo__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unimplemented__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
