/root/repo/target/debug/examples/fault_recovery-0726bbce0fe80657.d: examples/fault_recovery.rs

/root/repo/target/debug/examples/fault_recovery-0726bbce0fe80657: examples/fault_recovery.rs

examples/fault_recovery.rs:
