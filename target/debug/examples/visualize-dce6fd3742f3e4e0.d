/root/repo/target/debug/examples/visualize-dce6fd3742f3e4e0.d: examples/visualize.rs

/root/repo/target/debug/examples/visualize-dce6fd3742f3e4e0: examples/visualize.rs

examples/visualize.rs:
