/root/repo/target/debug/examples/scaling_study-e9540f20d85dfd69.d: examples/scaling_study.rs

/root/repo/target/debug/examples/scaling_study-e9540f20d85dfd69: examples/scaling_study.rs

examples/scaling_study.rs:
