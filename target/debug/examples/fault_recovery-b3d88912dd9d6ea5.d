/root/repo/target/debug/examples/fault_recovery-b3d88912dd9d6ea5.d: examples/fault_recovery.rs Cargo.toml

/root/repo/target/debug/examples/libfault_recovery-b3d88912dd9d6ea5.rmeta: examples/fault_recovery.rs Cargo.toml

examples/fault_recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::dbg_macro__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::todo__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unimplemented__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
