/root/repo/target/debug/examples/sensor_network-34feaf3eec2073e3.d: examples/sensor_network.rs

/root/repo/target/debug/examples/sensor_network-34feaf3eec2073e3: examples/sensor_network.rs

examples/sensor_network.rs:
