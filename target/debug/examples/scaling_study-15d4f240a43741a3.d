/root/repo/target/debug/examples/scaling_study-15d4f240a43741a3.d: examples/scaling_study.rs Cargo.toml

/root/repo/target/debug/examples/libscaling_study-15d4f240a43741a3.rmeta: examples/scaling_study.rs Cargo.toml

examples/scaling_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::dbg_macro__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::todo__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unimplemented__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
