/root/repo/target/debug/examples/sensor_network-377e2c4ddcaf3b9b.d: examples/sensor_network.rs Cargo.toml

/root/repo/target/debug/examples/libsensor_network-377e2c4ddcaf3b9b.rmeta: examples/sensor_network.rs Cargo.toml

examples/sensor_network.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::dbg_macro__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::todo__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unimplemented__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
