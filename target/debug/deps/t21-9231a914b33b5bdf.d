/root/repo/target/debug/deps/t21-9231a914b33b5bdf.d: crates/bench/benches/t21.rs Cargo.toml

/root/repo/target/debug/deps/libt21-9231a914b33b5bdf.rmeta: crates/bench/benches/t21.rs Cargo.toml

crates/bench/benches/t21.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::dbg_macro__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::todo__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unimplemented__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
