/root/repo/target/debug/deps/beeping_mis-96b0d222578d321d.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbeeping_mis-96b0d222578d321d.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::dbg_macro__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::todo__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unimplemented__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
