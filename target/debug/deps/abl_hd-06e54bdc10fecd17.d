/root/repo/target/debug/deps/abl_hd-06e54bdc10fecd17.d: crates/bench/benches/abl_hd.rs Cargo.toml

/root/repo/target/debug/deps/libabl_hd-06e54bdc10fecd17.rmeta: crates/bench/benches/abl_hd.rs Cargo.toml

crates/bench/benches/abl_hd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::dbg_macro__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::todo__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unimplemented__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
