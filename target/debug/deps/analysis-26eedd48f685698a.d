/root/repo/target/debug/deps/analysis-26eedd48f685698a.d: crates/analysis/src/lib.rs crates/analysis/src/histogram.rs crates/analysis/src/regression.rs crates/analysis/src/stats.rs crates/analysis/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libanalysis-26eedd48f685698a.rmeta: crates/analysis/src/lib.rs crates/analysis/src/histogram.rs crates/analysis/src/regression.rs crates/analysis/src/stats.rs crates/analysis/src/table.rs Cargo.toml

crates/analysis/src/lib.rs:
crates/analysis/src/histogram.rs:
crates/analysis/src/regression.rs:
crates/analysis/src/stats.rs:
crates/analysis/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::dbg_macro__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::todo__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unimplemented__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
