/root/repo/target/debug/deps/base-ed4750ad6eec4081.d: crates/bench/benches/base.rs Cargo.toml

/root/repo/target/debug/deps/libbase-ed4750ad6eec4081.rmeta: crates/bench/benches/base.rs Cargo.toml

crates/bench/benches/base.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::dbg_macro__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::todo__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unimplemented__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
