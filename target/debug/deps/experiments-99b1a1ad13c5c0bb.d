/root/repo/target/debug/deps/experiments-99b1a1ad13c5c0bb.d: crates/experiments/src/bin/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments-99b1a1ad13c5c0bb.rmeta: crates/experiments/src/bin/experiments.rs Cargo.toml

crates/experiments/src/bin/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::dbg_macro__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::todo__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unimplemented__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
