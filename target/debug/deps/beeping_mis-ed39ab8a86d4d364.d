/root/repo/target/debug/deps/beeping_mis-ed39ab8a86d4d364.d: src/lib.rs

/root/repo/target/debug/deps/libbeeping_mis-ed39ab8a86d4d364.rlib: src/lib.rs

/root/repo/target/debug/deps/libbeeping_mis-ed39ab8a86d4d364.rmeta: src/lib.rs

src/lib.rs:
