/root/repo/target/debug/deps/proptests-8f1c58d9fd8ddb51.d: crates/graphs/tests/proptests.rs

/root/repo/target/debug/deps/proptests-8f1c58d9fd8ddb51: crates/graphs/tests/proptests.rs

crates/graphs/tests/proptests.rs:
