/root/repo/target/debug/deps/graphs-1fff921540c9ce54.d: crates/graphs/src/lib.rs crates/graphs/src/builder.rs crates/graphs/src/dot.rs crates/graphs/src/edgelist.rs crates/graphs/src/generators/mod.rs crates/graphs/src/generators/classic.rs crates/graphs/src/generators/composite.rs crates/graphs/src/generators/expander.rs crates/graphs/src/generators/geometric.rs crates/graphs/src/generators/lattice.rs crates/graphs/src/generators/random.rs crates/graphs/src/generators/scale_free.rs crates/graphs/src/generators/small_world.rs crates/graphs/src/generators/trees.rs crates/graphs/src/graph.rs crates/graphs/src/mis.rs crates/graphs/src/properties.rs Cargo.toml

/root/repo/target/debug/deps/libgraphs-1fff921540c9ce54.rmeta: crates/graphs/src/lib.rs crates/graphs/src/builder.rs crates/graphs/src/dot.rs crates/graphs/src/edgelist.rs crates/graphs/src/generators/mod.rs crates/graphs/src/generators/classic.rs crates/graphs/src/generators/composite.rs crates/graphs/src/generators/expander.rs crates/graphs/src/generators/geometric.rs crates/graphs/src/generators/lattice.rs crates/graphs/src/generators/random.rs crates/graphs/src/generators/scale_free.rs crates/graphs/src/generators/small_world.rs crates/graphs/src/generators/trees.rs crates/graphs/src/graph.rs crates/graphs/src/mis.rs crates/graphs/src/properties.rs Cargo.toml

crates/graphs/src/lib.rs:
crates/graphs/src/builder.rs:
crates/graphs/src/dot.rs:
crates/graphs/src/edgelist.rs:
crates/graphs/src/generators/mod.rs:
crates/graphs/src/generators/classic.rs:
crates/graphs/src/generators/composite.rs:
crates/graphs/src/generators/expander.rs:
crates/graphs/src/generators/geometric.rs:
crates/graphs/src/generators/lattice.rs:
crates/graphs/src/generators/random.rs:
crates/graphs/src/generators/scale_free.rs:
crates/graphs/src/generators/small_world.rs:
crates/graphs/src/generators/trees.rs:
crates/graphs/src/graph.rs:
crates/graphs/src/mis.rs:
crates/graphs/src/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::dbg_macro__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::todo__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unimplemented__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
