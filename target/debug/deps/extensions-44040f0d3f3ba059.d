/root/repo/target/debug/deps/extensions-44040f0d3f3ba059.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-44040f0d3f3ba059: tests/extensions.rs

tests/extensions.rs:
