/root/repo/target/debug/deps/proptests-f851dfa74e9cffbe.d: crates/mis/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-f851dfa74e9cffbe.rmeta: crates/mis/tests/proptests.rs Cargo.toml

crates/mis/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::dbg_macro__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::todo__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unimplemented__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
