/root/repo/target/debug/deps/mis-416ca6af18177fbb.d: crates/mis/src/lib.rs crates/mis/src/adaptive.rs crates/mis/src/adversary.rs crates/mis/src/algorithm1.rs crates/mis/src/algorithm2.rs crates/mis/src/containment.rs crates/mis/src/dynamics.rs crates/mis/src/invariant.rs crates/mis/src/levels.rs crates/mis/src/observer.rs crates/mis/src/policy.rs crates/mis/src/recovery.rs crates/mis/src/runner.rs crates/mis/src/theory.rs

/root/repo/target/debug/deps/libmis-416ca6af18177fbb.rlib: crates/mis/src/lib.rs crates/mis/src/adaptive.rs crates/mis/src/adversary.rs crates/mis/src/algorithm1.rs crates/mis/src/algorithm2.rs crates/mis/src/containment.rs crates/mis/src/dynamics.rs crates/mis/src/invariant.rs crates/mis/src/levels.rs crates/mis/src/observer.rs crates/mis/src/policy.rs crates/mis/src/recovery.rs crates/mis/src/runner.rs crates/mis/src/theory.rs

/root/repo/target/debug/deps/libmis-416ca6af18177fbb.rmeta: crates/mis/src/lib.rs crates/mis/src/adaptive.rs crates/mis/src/adversary.rs crates/mis/src/algorithm1.rs crates/mis/src/algorithm2.rs crates/mis/src/containment.rs crates/mis/src/dynamics.rs crates/mis/src/invariant.rs crates/mis/src/levels.rs crates/mis/src/observer.rs crates/mis/src/policy.rs crates/mis/src/recovery.rs crates/mis/src/runner.rs crates/mis/src/theory.rs

crates/mis/src/lib.rs:
crates/mis/src/adaptive.rs:
crates/mis/src/adversary.rs:
crates/mis/src/algorithm1.rs:
crates/mis/src/algorithm2.rs:
crates/mis/src/containment.rs:
crates/mis/src/dynamics.rs:
crates/mis/src/invariant.rs:
crates/mis/src/levels.rs:
crates/mis/src/observer.rs:
crates/mis/src/policy.rs:
crates/mis/src/recovery.rs:
crates/mis/src/runner.rs:
crates/mis/src/theory.rs:
