/root/repo/target/debug/deps/cli-3c8cf18379a72cc0.d: crates/experiments/tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-3c8cf18379a72cc0.rmeta: crates/experiments/tests/cli.rs Cargo.toml

crates/experiments/tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_experiments=placeholder:experiments
# env-dep:CARGO_BIN_EXE_solve=placeholder:solve
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::dbg_macro__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::todo__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unimplemented__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
