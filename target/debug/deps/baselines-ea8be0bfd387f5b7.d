/root/repo/target/debug/deps/baselines-ea8be0bfd387f5b7.d: crates/baselines/src/lib.rs crates/baselines/src/afek.rs crates/baselines/src/jeavons.rs crates/baselines/src/local.rs crates/baselines/src/luby.rs crates/baselines/src/stone_age.rs crates/baselines/src/two_state.rs Cargo.toml

/root/repo/target/debug/deps/libbaselines-ea8be0bfd387f5b7.rmeta: crates/baselines/src/lib.rs crates/baselines/src/afek.rs crates/baselines/src/jeavons.rs crates/baselines/src/local.rs crates/baselines/src/luby.rs crates/baselines/src/stone_age.rs crates/baselines/src/two_state.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/afek.rs:
crates/baselines/src/jeavons.rs:
crates/baselines/src/local.rs:
crates/baselines/src/luby.rs:
crates/baselines/src/stone_age.rs:
crates/baselines/src/two_state.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::dbg_macro__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::todo__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unimplemented__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
