/root/repo/target/debug/deps/proptests-cd93bbc0711b4092.d: crates/analysis/tests/proptests.rs

/root/repo/target/debug/deps/proptests-cd93bbc0711b4092: crates/analysis/tests/proptests.rs

crates/analysis/tests/proptests.rs:
