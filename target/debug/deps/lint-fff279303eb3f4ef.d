/root/repo/target/debug/deps/lint-fff279303eb3f4ef.d: crates/lint/src/lib.rs crates/lint/src/lexer.rs crates/lint/src/report.rs crates/lint/src/rules.rs Cargo.toml

/root/repo/target/debug/deps/liblint-fff279303eb3f4ef.rmeta: crates/lint/src/lib.rs crates/lint/src/lexer.rs crates/lint/src/report.rs crates/lint/src/rules.rs Cargo.toml

crates/lint/src/lib.rs:
crates/lint/src/lexer.rs:
crates/lint/src/report.rs:
crates/lint/src/rules.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::dbg_macro__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::todo__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unimplemented__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
