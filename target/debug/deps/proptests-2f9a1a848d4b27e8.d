/root/repo/target/debug/deps/proptests-2f9a1a848d4b27e8.d: crates/beeping/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-2f9a1a848d4b27e8.rmeta: crates/beeping/tests/proptests.rs Cargo.toml

crates/beeping/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::dbg_macro__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::todo__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unimplemented__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
