/root/repo/target/debug/deps/ss_r-183fae475da9caef.d: crates/bench/benches/ss_r.rs Cargo.toml

/root/repo/target/debug/deps/libss_r-183fae475da9caef.rmeta: crates/bench/benches/ss_r.rs Cargo.toml

crates/bench/benches/ss_r.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::dbg_macro__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::todo__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unimplemented__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
