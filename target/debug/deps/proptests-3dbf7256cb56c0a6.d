/root/repo/target/debug/deps/proptests-3dbf7256cb56c0a6.d: crates/baselines/tests/proptests.rs

/root/repo/target/debug/deps/proptests-3dbf7256cb56c0a6: crates/baselines/tests/proptests.rs

crates/baselines/tests/proptests.rs:
