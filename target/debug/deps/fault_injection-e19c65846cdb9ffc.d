/root/repo/target/debug/deps/fault_injection-e19c65846cdb9ffc.d: tests/fault_injection.rs Cargo.toml

/root/repo/target/debug/deps/libfault_injection-e19c65846cdb9ffc.rmeta: tests/fault_injection.rs Cargo.toml

tests/fault_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::dbg_macro__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::todo__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unimplemented__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
