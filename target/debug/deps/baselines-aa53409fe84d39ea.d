/root/repo/target/debug/deps/baselines-aa53409fe84d39ea.d: crates/baselines/src/lib.rs crates/baselines/src/afek.rs crates/baselines/src/jeavons.rs crates/baselines/src/local.rs crates/baselines/src/luby.rs crates/baselines/src/stone_age.rs crates/baselines/src/two_state.rs

/root/repo/target/debug/deps/libbaselines-aa53409fe84d39ea.rlib: crates/baselines/src/lib.rs crates/baselines/src/afek.rs crates/baselines/src/jeavons.rs crates/baselines/src/local.rs crates/baselines/src/luby.rs crates/baselines/src/stone_age.rs crates/baselines/src/two_state.rs

/root/repo/target/debug/deps/libbaselines-aa53409fe84d39ea.rmeta: crates/baselines/src/lib.rs crates/baselines/src/afek.rs crates/baselines/src/jeavons.rs crates/baselines/src/local.rs crates/baselines/src/luby.rs crates/baselines/src/stone_age.rs crates/baselines/src/two_state.rs

crates/baselines/src/lib.rs:
crates/baselines/src/afek.rs:
crates/baselines/src/jeavons.rs:
crates/baselines/src/local.rs:
crates/baselines/src/luby.rs:
crates/baselines/src/stone_age.rs:
crates/baselines/src/two_state.rs:
