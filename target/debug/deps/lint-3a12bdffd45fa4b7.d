/root/repo/target/debug/deps/lint-3a12bdffd45fa4b7.d: crates/lint/src/main.rs

/root/repo/target/debug/deps/lint-3a12bdffd45fa4b7: crates/lint/src/main.rs

crates/lint/src/main.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/lint
