/root/repo/target/debug/deps/perf-8ccb68f1068445c5.d: crates/bench/benches/perf.rs Cargo.toml

/root/repo/target/debug/deps/libperf-8ccb68f1068445c5.rmeta: crates/bench/benches/perf.rs Cargo.toml

crates/bench/benches/perf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::dbg_macro__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::todo__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unimplemented__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
