/root/repo/target/debug/deps/analysis-bd954eeb152081b8.d: crates/analysis/src/lib.rs crates/analysis/src/histogram.rs crates/analysis/src/regression.rs crates/analysis/src/stats.rs crates/analysis/src/table.rs

/root/repo/target/debug/deps/analysis-bd954eeb152081b8: crates/analysis/src/lib.rs crates/analysis/src/histogram.rs crates/analysis/src/regression.rs crates/analysis/src/stats.rs crates/analysis/src/table.rs

crates/analysis/src/lib.rs:
crates/analysis/src/histogram.rs:
crates/analysis/src/regression.rs:
crates/analysis/src/stats.rs:
crates/analysis/src/table.rs:
