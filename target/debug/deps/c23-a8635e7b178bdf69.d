/root/repo/target/debug/deps/c23-a8635e7b178bdf69.d: crates/bench/benches/c23.rs Cargo.toml

/root/repo/target/debug/deps/libc23-a8635e7b178bdf69.rmeta: crates/bench/benches/c23.rs Cargo.toml

crates/bench/benches/c23.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::dbg_macro__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::todo__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unimplemented__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
