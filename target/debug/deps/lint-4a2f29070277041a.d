/root/repo/target/debug/deps/lint-4a2f29070277041a.d: crates/lint/src/lib.rs crates/lint/src/lexer.rs crates/lint/src/report.rs crates/lint/src/rules.rs

/root/repo/target/debug/deps/liblint-4a2f29070277041a.rlib: crates/lint/src/lib.rs crates/lint/src/lexer.rs crates/lint/src/report.rs crates/lint/src/rules.rs

/root/repo/target/debug/deps/liblint-4a2f29070277041a.rmeta: crates/lint/src/lib.rs crates/lint/src/lexer.rs crates/lint/src/report.rs crates/lint/src/rules.rs

crates/lint/src/lib.rs:
crates/lint/src/lexer.rs:
crates/lint/src/report.rs:
crates/lint/src/rules.rs:
