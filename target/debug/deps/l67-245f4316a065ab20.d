/root/repo/target/debug/deps/l67-245f4316a065ab20.d: crates/bench/benches/l67.rs Cargo.toml

/root/repo/target/debug/deps/libl67-245f4316a065ab20.rmeta: crates/bench/benches/l67.rs Cargo.toml

crates/bench/benches/l67.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::dbg_macro__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::todo__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unimplemented__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
