/root/repo/target/debug/deps/t22_layers-b6cc9406573d7fdb.d: crates/bench/benches/t22_layers.rs Cargo.toml

/root/repo/target/debug/deps/libt22_layers-b6cc9406573d7fdb.rmeta: crates/bench/benches/t22_layers.rs Cargo.toml

crates/bench/benches/t22_layers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::dbg_macro__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::todo__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unimplemented__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
