/root/repo/target/debug/deps/determinism_props-c9f5fe9f3afbec25.d: tests/determinism_props.rs

/root/repo/target/debug/deps/determinism_props-c9f5fe9f3afbec25: tests/determinism_props.rs

tests/determinism_props.rs:
