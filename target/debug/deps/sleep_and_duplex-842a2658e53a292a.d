/root/repo/target/debug/deps/sleep_and_duplex-842a2658e53a292a.d: crates/beeping/tests/sleep_and_duplex.rs Cargo.toml

/root/repo/target/debug/deps/libsleep_and_duplex-842a2658e53a292a.rmeta: crates/beeping/tests/sleep_and_duplex.rs Cargo.toml

crates/beeping/tests/sleep_and_duplex.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::dbg_macro__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::todo__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unimplemented__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
