/root/repo/target/debug/deps/experiments-6d07dbc75b5e9ffe.d: crates/experiments/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-6d07dbc75b5e9ffe: crates/experiments/src/bin/experiments.rs

crates/experiments/src/bin/experiments.rs:
