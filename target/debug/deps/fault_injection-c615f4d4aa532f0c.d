/root/repo/target/debug/deps/fault_injection-c615f4d4aa532f0c.d: tests/fault_injection.rs

/root/repo/target/debug/deps/fault_injection-c615f4d4aa532f0c: tests/fault_injection.rs

tests/fault_injection.rs:
