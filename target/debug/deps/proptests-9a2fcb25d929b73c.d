/root/repo/target/debug/deps/proptests-9a2fcb25d929b73c.d: crates/mis/tests/proptests.rs

/root/repo/target/debug/deps/proptests-9a2fcb25d929b73c: crates/mis/tests/proptests.rs

crates/mis/tests/proptests.rs:
