/root/repo/target/debug/deps/experiments-af26076bb1b2f8ac.d: crates/experiments/src/bin/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments-af26076bb1b2f8ac.rmeta: crates/experiments/src/bin/experiments.rs Cargo.toml

crates/experiments/src/bin/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::dbg_macro__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::todo__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unimplemented__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
