/root/repo/target/debug/deps/ext_adapt-d252e49e080b5ef9.d: crates/bench/benches/ext_adapt.rs Cargo.toml

/root/repo/target/debug/deps/libext_adapt-d252e49e080b5ef9.rmeta: crates/bench/benches/ext_adapt.rs Cargo.toml

crates/bench/benches/ext_adapt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::dbg_macro__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::todo__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unimplemented__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
