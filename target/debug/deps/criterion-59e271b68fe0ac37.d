/root/repo/target/debug/deps/criterion-59e271b68fe0ac37.d: /tmp/vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-59e271b68fe0ac37.rlib: /tmp/vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-59e271b68fe0ac37.rmeta: /tmp/vendor/criterion/src/lib.rs

/tmp/vendor/criterion/src/lib.rs:
