/root/repo/target/debug/deps/lint-ff90bc7a06990391.d: crates/lint/src/main.rs Cargo.toml

/root/repo/target/debug/deps/liblint-ff90bc7a06990391.rmeta: crates/lint/src/main.rs Cargo.toml

crates/lint/src/main.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/lint
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::dbg_macro__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::todo__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unimplemented__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
