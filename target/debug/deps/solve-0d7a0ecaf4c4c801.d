/root/repo/target/debug/deps/solve-0d7a0ecaf4c4c801.d: crates/experiments/src/bin/solve.rs

/root/repo/target/debug/deps/solve-0d7a0ecaf4c4c801: crates/experiments/src/bin/solve.rs

crates/experiments/src/bin/solve.rs:
