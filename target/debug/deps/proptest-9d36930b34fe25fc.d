/root/repo/target/debug/deps/proptest-9d36930b34fe25fc.d: /tmp/vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-9d36930b34fe25fc.rmeta: /tmp/vendor/proptest/src/lib.rs

/tmp/vendor/proptest/src/lib.rs:
