/root/repo/target/debug/deps/lint-da07b718b508539c.d: crates/lint/src/main.rs

/root/repo/target/debug/deps/lint-da07b718b508539c: crates/lint/src/main.rs

crates/lint/src/main.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/lint
