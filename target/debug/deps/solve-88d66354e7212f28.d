/root/repo/target/debug/deps/solve-88d66354e7212f28.d: crates/experiments/src/bin/solve.rs Cargo.toml

/root/repo/target/debug/deps/libsolve-88d66354e7212f28.rmeta: crates/experiments/src/bin/solve.rs Cargo.toml

crates/experiments/src/bin/solve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::dbg_macro__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::todo__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unimplemented__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
