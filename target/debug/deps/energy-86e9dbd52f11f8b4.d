/root/repo/target/debug/deps/energy-86e9dbd52f11f8b4.d: crates/bench/benches/energy.rs Cargo.toml

/root/repo/target/debug/deps/libenergy-86e9dbd52f11f8b4.rmeta: crates/bench/benches/energy.rs Cargo.toml

crates/bench/benches/energy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::dbg_macro__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::todo__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unimplemented__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
