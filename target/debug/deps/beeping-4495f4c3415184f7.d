/root/repo/target/debug/deps/beeping-4495f4c3415184f7.d: crates/beeping/src/lib.rs crates/beeping/src/byzantine.rs crates/beeping/src/channel.rs crates/beeping/src/churn.rs crates/beeping/src/faults.rs crates/beeping/src/protocol.rs crates/beeping/src/rng.rs crates/beeping/src/sim.rs crates/beeping/src/sleep.rs crates/beeping/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libbeeping-4495f4c3415184f7.rmeta: crates/beeping/src/lib.rs crates/beeping/src/byzantine.rs crates/beeping/src/channel.rs crates/beeping/src/churn.rs crates/beeping/src/faults.rs crates/beeping/src/protocol.rs crates/beeping/src/rng.rs crates/beeping/src/sim.rs crates/beeping/src/sleep.rs crates/beeping/src/trace.rs Cargo.toml

crates/beeping/src/lib.rs:
crates/beeping/src/byzantine.rs:
crates/beeping/src/channel.rs:
crates/beeping/src/churn.rs:
crates/beeping/src/faults.rs:
crates/beeping/src/protocol.rs:
crates/beeping/src/rng.rs:
crates/beeping/src/sim.rs:
crates/beeping/src/sleep.rs:
crates/beeping/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::dbg_macro__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::todo__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unimplemented__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
