/root/repo/target/debug/deps/bench-8af89babcdb033ae.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-8af89babcdb033ae.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-8af89babcdb033ae.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
