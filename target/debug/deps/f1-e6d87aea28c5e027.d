/root/repo/target/debug/deps/f1-e6d87aea28c5e027.d: crates/bench/benches/f1.rs Cargo.toml

/root/repo/target/debug/deps/libf1-e6d87aea28c5e027.rmeta: crates/bench/benches/f1.rs Cargo.toml

crates/bench/benches/f1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::dbg_macro__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::todo__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unimplemented__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
