/root/repo/target/debug/deps/engine_differential-1f48f65caf82f67e.d: crates/beeping/tests/engine_differential.rs

/root/repo/target/debug/deps/engine_differential-1f48f65caf82f67e: crates/beeping/tests/engine_differential.rs

crates/beeping/tests/engine_differential.rs:
