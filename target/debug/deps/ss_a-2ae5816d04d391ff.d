/root/repo/target/debug/deps/ss_a-2ae5816d04d391ff.d: crates/bench/benches/ss_a.rs Cargo.toml

/root/repo/target/debug/deps/libss_a-2ae5816d04d391ff.rmeta: crates/bench/benches/ss_a.rs Cargo.toml

crates/bench/benches/ss_a.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::dbg_macro__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::todo__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unimplemented__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
