/root/repo/target/debug/deps/l36-7c2d3d1599dd9dae.d: crates/bench/benches/l36.rs Cargo.toml

/root/repo/target/debug/deps/libl36-7c2d3d1599dd9dae.rmeta: crates/bench/benches/l36.rs Cargo.toml

crates/bench/benches/l36.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::dbg_macro__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::todo__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unimplemented__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
