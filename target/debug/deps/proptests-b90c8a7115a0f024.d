/root/repo/target/debug/deps/proptests-b90c8a7115a0f024.d: crates/beeping/tests/proptests.rs

/root/repo/target/debug/deps/proptests-b90c8a7115a0f024: crates/beeping/tests/proptests.rs

crates/beeping/tests/proptests.rs:
