/root/repo/target/debug/deps/experiments-5e945f7df2b823d6.d: crates/experiments/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-5e945f7df2b823d6: crates/experiments/src/bin/experiments.rs

crates/experiments/src/bin/experiments.rs:
