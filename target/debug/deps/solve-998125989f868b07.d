/root/repo/target/debug/deps/solve-998125989f868b07.d: crates/experiments/src/bin/solve.rs

/root/repo/target/debug/deps/solve-998125989f868b07: crates/experiments/src/bin/solve.rs

crates/experiments/src/bin/solve.rs:
