/root/repo/target/debug/deps/engine_differential-cd16bf019fc6be4b.d: crates/beeping/tests/engine_differential.rs Cargo.toml

/root/repo/target/debug/deps/libengine_differential-cd16bf019fc6be4b.rmeta: crates/beeping/tests/engine_differential.rs Cargo.toml

crates/beeping/tests/engine_differential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::dbg_macro__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::todo__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unimplemented__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
