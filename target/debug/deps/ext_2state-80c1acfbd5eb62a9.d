/root/repo/target/debug/deps/ext_2state-80c1acfbd5eb62a9.d: crates/bench/benches/ext_2state.rs Cargo.toml

/root/repo/target/debug/deps/libext_2state-80c1acfbd5eb62a9.rmeta: crates/bench/benches/ext_2state.rs Cargo.toml

crates/bench/benches/ext_2state.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::dbg_macro__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::todo__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unimplemented__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
