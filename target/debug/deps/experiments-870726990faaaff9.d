/root/repo/target/debug/deps/experiments-870726990faaaff9.d: crates/experiments/src/lib.rs crates/experiments/src/ablation_c1.rs crates/experiments/src/ablation_duplex.rs crates/experiments/src/ablation_lmax.rs crates/experiments/src/adversarial.rs crates/experiments/src/baseline_cmp.rs crates/experiments/src/byz.rs crates/experiments/src/common.rs crates/experiments/src/cor23.rs crates/experiments/src/dyn_trajectory.rs crates/experiments/src/energy.rs crates/experiments/src/ext_adaptive.rs crates/experiments/src/ext_two_state.rs crates/experiments/src/ext_wakeup.rs crates/experiments/src/fig1.rs crates/experiments/src/lemma35.rs crates/experiments/src/lemma36.rs crates/experiments/src/lemma67.rs crates/experiments/src/noise.rs crates/experiments/src/perf.rs crates/experiments/src/recovery.rs crates/experiments/src/scale.rs crates/experiments/src/thm21.rs crates/experiments/src/thm22.rs crates/experiments/src/thm22_layers.rs

/root/repo/target/debug/deps/experiments-870726990faaaff9: crates/experiments/src/lib.rs crates/experiments/src/ablation_c1.rs crates/experiments/src/ablation_duplex.rs crates/experiments/src/ablation_lmax.rs crates/experiments/src/adversarial.rs crates/experiments/src/baseline_cmp.rs crates/experiments/src/byz.rs crates/experiments/src/common.rs crates/experiments/src/cor23.rs crates/experiments/src/dyn_trajectory.rs crates/experiments/src/energy.rs crates/experiments/src/ext_adaptive.rs crates/experiments/src/ext_two_state.rs crates/experiments/src/ext_wakeup.rs crates/experiments/src/fig1.rs crates/experiments/src/lemma35.rs crates/experiments/src/lemma36.rs crates/experiments/src/lemma67.rs crates/experiments/src/noise.rs crates/experiments/src/perf.rs crates/experiments/src/recovery.rs crates/experiments/src/scale.rs crates/experiments/src/thm21.rs crates/experiments/src/thm22.rs crates/experiments/src/thm22_layers.rs

crates/experiments/src/lib.rs:
crates/experiments/src/ablation_c1.rs:
crates/experiments/src/ablation_duplex.rs:
crates/experiments/src/ablation_lmax.rs:
crates/experiments/src/adversarial.rs:
crates/experiments/src/baseline_cmp.rs:
crates/experiments/src/byz.rs:
crates/experiments/src/common.rs:
crates/experiments/src/cor23.rs:
crates/experiments/src/dyn_trajectory.rs:
crates/experiments/src/energy.rs:
crates/experiments/src/ext_adaptive.rs:
crates/experiments/src/ext_two_state.rs:
crates/experiments/src/ext_wakeup.rs:
crates/experiments/src/fig1.rs:
crates/experiments/src/lemma35.rs:
crates/experiments/src/lemma36.rs:
crates/experiments/src/lemma67.rs:
crates/experiments/src/noise.rs:
crates/experiments/src/perf.rs:
crates/experiments/src/recovery.rs:
crates/experiments/src/scale.rs:
crates/experiments/src/thm21.rs:
crates/experiments/src/thm22.rs:
crates/experiments/src/thm22_layers.rs:
