/root/repo/target/debug/deps/end_to_end-b8fbf901268cc460.d: tests/end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end-b8fbf901268cc460.rmeta: tests/end_to_end.rs Cargo.toml

tests/end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::dbg_macro__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::todo__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unimplemented__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
