/root/repo/target/debug/deps/micro_scenarios-0f962559d1de1be1.d: crates/mis/tests/micro_scenarios.rs Cargo.toml

/root/repo/target/debug/deps/libmicro_scenarios-0f962559d1de1be1.rmeta: crates/mis/tests/micro_scenarios.rs Cargo.toml

crates/mis/tests/micro_scenarios.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::dbg_macro__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::todo__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unimplemented__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
