/root/repo/target/debug/deps/composition-a1852d87109a57dc.d: crates/beeping/tests/composition.rs

/root/repo/target/debug/deps/composition-a1852d87109a57dc: crates/beeping/tests/composition.rs

crates/beeping/tests/composition.rs:
