/root/repo/target/debug/deps/rand-c27fd6a4c117fc5b.d: /tmp/vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-c27fd6a4c117fc5b.rlib: /tmp/vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-c27fd6a4c117fc5b.rmeta: /tmp/vendor/rand/src/lib.rs

/tmp/vendor/rand/src/lib.rs:
