/root/repo/target/debug/deps/abl-5a91fc102aa5f232.d: crates/bench/benches/abl.rs Cargo.toml

/root/repo/target/debug/deps/libabl-5a91fc102aa5f232.rmeta: crates/bench/benches/abl.rs Cargo.toml

crates/bench/benches/abl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::dbg_macro__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::todo__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unimplemented__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
