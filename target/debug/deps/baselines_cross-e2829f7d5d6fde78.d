/root/repo/target/debug/deps/baselines_cross-e2829f7d5d6fde78.d: tests/baselines_cross.rs Cargo.toml

/root/repo/target/debug/deps/libbaselines_cross-e2829f7d5d6fde78.rmeta: tests/baselines_cross.rs Cargo.toml

tests/baselines_cross.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::dbg_macro__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::todo__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unimplemented__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
