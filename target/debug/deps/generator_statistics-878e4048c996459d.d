/root/repo/target/debug/deps/generator_statistics-878e4048c996459d.d: crates/graphs/tests/generator_statistics.rs Cargo.toml

/root/repo/target/debug/deps/libgenerator_statistics-878e4048c996459d.rmeta: crates/graphs/tests/generator_statistics.rs Cargo.toml

crates/graphs/tests/generator_statistics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::dbg_macro__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::todo__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unimplemented__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
