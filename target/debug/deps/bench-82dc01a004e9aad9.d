/root/repo/target/debug/deps/bench-82dc01a004e9aad9.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbench-82dc01a004e9aad9.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::dbg_macro__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::todo__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unimplemented__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
