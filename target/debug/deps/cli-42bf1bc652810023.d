/root/repo/target/debug/deps/cli-42bf1bc652810023.d: crates/experiments/tests/cli.rs

/root/repo/target/debug/deps/cli-42bf1bc652810023: crates/experiments/tests/cli.rs

crates/experiments/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_experiments=/root/repo/target/debug/experiments
# env-dep:CARGO_BIN_EXE_solve=/root/repo/target/debug/solve
