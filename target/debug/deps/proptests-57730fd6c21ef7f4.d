/root/repo/target/debug/deps/proptests-57730fd6c21ef7f4.d: crates/analysis/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-57730fd6c21ef7f4.rmeta: crates/analysis/tests/proptests.rs Cargo.toml

crates/analysis/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::dbg_macro__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::todo__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unimplemented__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
