/root/repo/target/debug/deps/byzantine_containment-87dc93e119cb3497.d: tests/byzantine_containment.rs Cargo.toml

/root/repo/target/debug/deps/libbyzantine_containment-87dc93e119cb3497.rmeta: tests/byzantine_containment.rs Cargo.toml

tests/byzantine_containment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::dbg_macro__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::todo__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unimplemented__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
