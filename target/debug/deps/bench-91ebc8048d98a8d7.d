/root/repo/target/debug/deps/bench-91ebc8048d98a8d7.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/bench-91ebc8048d98a8d7: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
