/root/repo/target/debug/deps/determinism_props-18c6c4f5c61cbd6d.d: tests/determinism_props.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism_props-18c6c4f5c61cbd6d.rmeta: tests/determinism_props.rs Cargo.toml

tests/determinism_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::dbg_macro__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::todo__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unimplemented__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
