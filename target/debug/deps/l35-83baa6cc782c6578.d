/root/repo/target/debug/deps/l35-83baa6cc782c6578.d: crates/bench/benches/l35.rs Cargo.toml

/root/repo/target/debug/deps/libl35-83baa6cc782c6578.rmeta: crates/bench/benches/l35.rs Cargo.toml

crates/bench/benches/l35.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::dbg_macro__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::todo__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unimplemented__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
