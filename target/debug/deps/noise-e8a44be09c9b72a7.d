/root/repo/target/debug/deps/noise-e8a44be09c9b72a7.d: crates/bench/benches/noise.rs Cargo.toml

/root/repo/target/debug/deps/libnoise-e8a44be09c9b72a7.rmeta: crates/bench/benches/noise.rs Cargo.toml

crates/bench/benches/noise.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::dbg_macro__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::todo__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unimplemented__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
