/root/repo/target/debug/deps/dyn-9b59b00cd9db17c1.d: crates/bench/benches/dyn.rs Cargo.toml

/root/repo/target/debug/deps/libdyn-9b59b00cd9db17c1.rmeta: crates/bench/benches/dyn.rs Cargo.toml

crates/bench/benches/dyn.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::dbg_macro__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::todo__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unimplemented__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
