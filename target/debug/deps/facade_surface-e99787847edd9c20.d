/root/repo/target/debug/deps/facade_surface-e99787847edd9c20.d: tests/facade_surface.rs Cargo.toml

/root/repo/target/debug/deps/libfacade_surface-e99787847edd9c20.rmeta: tests/facade_surface.rs Cargo.toml

tests/facade_surface.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::dbg_macro__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::todo__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unimplemented__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
