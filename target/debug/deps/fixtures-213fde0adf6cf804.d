/root/repo/target/debug/deps/fixtures-213fde0adf6cf804.d: crates/lint/tests/fixtures.rs Cargo.toml

/root/repo/target/debug/deps/libfixtures-213fde0adf6cf804.rmeta: crates/lint/tests/fixtures.rs Cargo.toml

crates/lint/tests/fixtures.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/lint
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::dbg_macro__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::todo__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unimplemented__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
