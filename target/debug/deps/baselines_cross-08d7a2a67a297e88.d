/root/repo/target/debug/deps/baselines_cross-08d7a2a67a297e88.d: tests/baselines_cross.rs

/root/repo/target/debug/deps/baselines_cross-08d7a2a67a297e88: tests/baselines_cross.rs

tests/baselines_cross.rs:
