/root/repo/target/debug/deps/self_stabilization_props-0cec7dc214bbca24.d: tests/self_stabilization_props.rs Cargo.toml

/root/repo/target/debug/deps/libself_stabilization_props-0cec7dc214bbca24.rmeta: tests/self_stabilization_props.rs Cargo.toml

tests/self_stabilization_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::dbg_macro__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::todo__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unimplemented__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
