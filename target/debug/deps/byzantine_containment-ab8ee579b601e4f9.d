/root/repo/target/debug/deps/byzantine_containment-ab8ee579b601e4f9.d: tests/byzantine_containment.rs

/root/repo/target/debug/deps/byzantine_containment-ab8ee579b601e4f9: tests/byzantine_containment.rs

tests/byzantine_containment.rs:
