/root/repo/target/debug/deps/micro_scenarios-8435c562eca341ef.d: crates/mis/tests/micro_scenarios.rs

/root/repo/target/debug/deps/micro_scenarios-8435c562eca341ef: crates/mis/tests/micro_scenarios.rs

crates/mis/tests/micro_scenarios.rs:
