/root/repo/target/debug/deps/rand_pcg-09de6431d8ea4b67.d: /tmp/vendor/rand_pcg/src/lib.rs

/root/repo/target/debug/deps/librand_pcg-09de6431d8ea4b67.rmeta: /tmp/vendor/rand_pcg/src/lib.rs

/tmp/vendor/rand_pcg/src/lib.rs:
