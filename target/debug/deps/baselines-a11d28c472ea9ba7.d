/root/repo/target/debug/deps/baselines-a11d28c472ea9ba7.d: crates/baselines/src/lib.rs crates/baselines/src/afek.rs crates/baselines/src/jeavons.rs crates/baselines/src/local.rs crates/baselines/src/luby.rs crates/baselines/src/stone_age.rs crates/baselines/src/two_state.rs

/root/repo/target/debug/deps/baselines-a11d28c472ea9ba7: crates/baselines/src/lib.rs crates/baselines/src/afek.rs crates/baselines/src/jeavons.rs crates/baselines/src/local.rs crates/baselines/src/luby.rs crates/baselines/src/stone_age.rs crates/baselines/src/two_state.rs

crates/baselines/src/lib.rs:
crates/baselines/src/afek.rs:
crates/baselines/src/jeavons.rs:
crates/baselines/src/local.rs:
crates/baselines/src/luby.rs:
crates/baselines/src/stone_age.rs:
crates/baselines/src/two_state.rs:
