/root/repo/target/debug/deps/extensions-3e623bc26699e1c2.d: tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-3e623bc26699e1c2.rmeta: tests/extensions.rs Cargo.toml

tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::dbg_macro__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::todo__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unimplemented__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
