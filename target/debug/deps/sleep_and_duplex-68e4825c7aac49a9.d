/root/repo/target/debug/deps/sleep_and_duplex-68e4825c7aac49a9.d: crates/beeping/tests/sleep_and_duplex.rs

/root/repo/target/debug/deps/sleep_and_duplex-68e4825c7aac49a9: crates/beeping/tests/sleep_and_duplex.rs

crates/beeping/tests/sleep_and_duplex.rs:
