/root/repo/target/debug/deps/bench-5165bbd99ed02824.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbench-5165bbd99ed02824.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::dbg_macro__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::todo__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unimplemented__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
