/root/repo/target/debug/deps/fixtures-a121f9ff07faf749.d: crates/lint/tests/fixtures.rs

/root/repo/target/debug/deps/fixtures-a121f9ff07faf749: crates/lint/tests/fixtures.rs

crates/lint/tests/fixtures.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/lint
