/root/repo/target/debug/deps/rand-8189d56211752c05.d: /tmp/vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-8189d56211752c05.rmeta: /tmp/vendor/rand/src/lib.rs

/tmp/vendor/rand/src/lib.rs:
