/root/repo/target/debug/deps/lint-c2c911d0aa7be9ca.d: crates/lint/src/lib.rs crates/lint/src/lexer.rs crates/lint/src/report.rs crates/lint/src/rules.rs

/root/repo/target/debug/deps/lint-c2c911d0aa7be9ca: crates/lint/src/lib.rs crates/lint/src/lexer.rs crates/lint/src/report.rs crates/lint/src/rules.rs

crates/lint/src/lib.rs:
crates/lint/src/lexer.rs:
crates/lint/src/report.rs:
crates/lint/src/rules.rs:
