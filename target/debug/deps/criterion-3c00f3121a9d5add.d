/root/repo/target/debug/deps/criterion-3c00f3121a9d5add.d: /tmp/vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-3c00f3121a9d5add.rmeta: /tmp/vendor/criterion/src/lib.rs

/tmp/vendor/criterion/src/lib.rs:
