/root/repo/target/debug/deps/facade_surface-f58e791e69297e40.d: tests/facade_surface.rs

/root/repo/target/debug/deps/facade_surface-f58e791e69297e40: tests/facade_surface.rs

tests/facade_surface.rs:
