/root/repo/target/debug/deps/self_stabilization_props-7c862cc5f42580ec.d: tests/self_stabilization_props.rs

/root/repo/target/debug/deps/self_stabilization_props-7c862cc5f42580ec: tests/self_stabilization_props.rs

tests/self_stabilization_props.rs:
