/root/repo/target/debug/deps/experiments-b730e711ffb5460a.d: crates/experiments/src/lib.rs crates/experiments/src/ablation_c1.rs crates/experiments/src/ablation_duplex.rs crates/experiments/src/ablation_lmax.rs crates/experiments/src/adversarial.rs crates/experiments/src/baseline_cmp.rs crates/experiments/src/byz.rs crates/experiments/src/common.rs crates/experiments/src/cor23.rs crates/experiments/src/dyn_trajectory.rs crates/experiments/src/energy.rs crates/experiments/src/ext_adaptive.rs crates/experiments/src/ext_two_state.rs crates/experiments/src/ext_wakeup.rs crates/experiments/src/fig1.rs crates/experiments/src/lemma35.rs crates/experiments/src/lemma36.rs crates/experiments/src/lemma67.rs crates/experiments/src/noise.rs crates/experiments/src/perf.rs crates/experiments/src/recovery.rs crates/experiments/src/scale.rs crates/experiments/src/thm21.rs crates/experiments/src/thm22.rs crates/experiments/src/thm22_layers.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments-b730e711ffb5460a.rmeta: crates/experiments/src/lib.rs crates/experiments/src/ablation_c1.rs crates/experiments/src/ablation_duplex.rs crates/experiments/src/ablation_lmax.rs crates/experiments/src/adversarial.rs crates/experiments/src/baseline_cmp.rs crates/experiments/src/byz.rs crates/experiments/src/common.rs crates/experiments/src/cor23.rs crates/experiments/src/dyn_trajectory.rs crates/experiments/src/energy.rs crates/experiments/src/ext_adaptive.rs crates/experiments/src/ext_two_state.rs crates/experiments/src/ext_wakeup.rs crates/experiments/src/fig1.rs crates/experiments/src/lemma35.rs crates/experiments/src/lemma36.rs crates/experiments/src/lemma67.rs crates/experiments/src/noise.rs crates/experiments/src/perf.rs crates/experiments/src/recovery.rs crates/experiments/src/scale.rs crates/experiments/src/thm21.rs crates/experiments/src/thm22.rs crates/experiments/src/thm22_layers.rs Cargo.toml

crates/experiments/src/lib.rs:
crates/experiments/src/ablation_c1.rs:
crates/experiments/src/ablation_duplex.rs:
crates/experiments/src/ablation_lmax.rs:
crates/experiments/src/adversarial.rs:
crates/experiments/src/baseline_cmp.rs:
crates/experiments/src/byz.rs:
crates/experiments/src/common.rs:
crates/experiments/src/cor23.rs:
crates/experiments/src/dyn_trajectory.rs:
crates/experiments/src/energy.rs:
crates/experiments/src/ext_adaptive.rs:
crates/experiments/src/ext_two_state.rs:
crates/experiments/src/ext_wakeup.rs:
crates/experiments/src/fig1.rs:
crates/experiments/src/lemma35.rs:
crates/experiments/src/lemma36.rs:
crates/experiments/src/lemma67.rs:
crates/experiments/src/noise.rs:
crates/experiments/src/perf.rs:
crates/experiments/src/recovery.rs:
crates/experiments/src/scale.rs:
crates/experiments/src/thm21.rs:
crates/experiments/src/thm22.rs:
crates/experiments/src/thm22_layers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::dbg_macro__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::todo__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unimplemented__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
