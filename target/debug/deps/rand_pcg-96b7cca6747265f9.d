/root/repo/target/debug/deps/rand_pcg-96b7cca6747265f9.d: /tmp/vendor/rand_pcg/src/lib.rs

/root/repo/target/debug/deps/librand_pcg-96b7cca6747265f9.rlib: /tmp/vendor/rand_pcg/src/lib.rs

/root/repo/target/debug/deps/librand_pcg-96b7cca6747265f9.rmeta: /tmp/vendor/rand_pcg/src/lib.rs

/tmp/vendor/rand_pcg/src/lib.rs:
