/root/repo/target/debug/deps/scale-98a0a556cc564440.d: crates/bench/benches/scale.rs Cargo.toml

/root/repo/target/debug/deps/libscale-98a0a556cc564440.rmeta: crates/bench/benches/scale.rs Cargo.toml

crates/bench/benches/scale.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::dbg_macro__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::todo__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unimplemented__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
