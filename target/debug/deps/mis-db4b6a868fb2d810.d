/root/repo/target/debug/deps/mis-db4b6a868fb2d810.d: crates/mis/src/lib.rs crates/mis/src/adaptive.rs crates/mis/src/adversary.rs crates/mis/src/algorithm1.rs crates/mis/src/algorithm2.rs crates/mis/src/containment.rs crates/mis/src/dynamics.rs crates/mis/src/invariant.rs crates/mis/src/levels.rs crates/mis/src/observer.rs crates/mis/src/policy.rs crates/mis/src/recovery.rs crates/mis/src/runner.rs crates/mis/src/theory.rs Cargo.toml

/root/repo/target/debug/deps/libmis-db4b6a868fb2d810.rmeta: crates/mis/src/lib.rs crates/mis/src/adaptive.rs crates/mis/src/adversary.rs crates/mis/src/algorithm1.rs crates/mis/src/algorithm2.rs crates/mis/src/containment.rs crates/mis/src/dynamics.rs crates/mis/src/invariant.rs crates/mis/src/levels.rs crates/mis/src/observer.rs crates/mis/src/policy.rs crates/mis/src/recovery.rs crates/mis/src/runner.rs crates/mis/src/theory.rs Cargo.toml

crates/mis/src/lib.rs:
crates/mis/src/adaptive.rs:
crates/mis/src/adversary.rs:
crates/mis/src/algorithm1.rs:
crates/mis/src/algorithm2.rs:
crates/mis/src/containment.rs:
crates/mis/src/dynamics.rs:
crates/mis/src/invariant.rs:
crates/mis/src/levels.rs:
crates/mis/src/observer.rs:
crates/mis/src/policy.rs:
crates/mis/src/recovery.rs:
crates/mis/src/runner.rs:
crates/mis/src/theory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::dbg_macro__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::todo__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unimplemented__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
