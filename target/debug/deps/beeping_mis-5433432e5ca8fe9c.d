/root/repo/target/debug/deps/beeping_mis-5433432e5ca8fe9c.d: src/lib.rs

/root/repo/target/debug/deps/beeping_mis-5433432e5ca8fe9c: src/lib.rs

src/lib.rs:
