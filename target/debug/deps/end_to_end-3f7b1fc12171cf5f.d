/root/repo/target/debug/deps/end_to_end-3f7b1fc12171cf5f.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-3f7b1fc12171cf5f: tests/end_to_end.rs

tests/end_to_end.rs:
