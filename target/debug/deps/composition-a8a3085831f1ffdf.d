/root/repo/target/debug/deps/composition-a8a3085831f1ffdf.d: crates/beeping/tests/composition.rs Cargo.toml

/root/repo/target/debug/deps/libcomposition-a8a3085831f1ffdf.rmeta: crates/beeping/tests/composition.rs Cargo.toml

crates/beeping/tests/composition.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::dbg_macro__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::todo__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unimplemented__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
