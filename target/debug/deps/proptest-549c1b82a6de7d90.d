/root/repo/target/debug/deps/proptest-549c1b82a6de7d90.d: /tmp/vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-549c1b82a6de7d90.rlib: /tmp/vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-549c1b82a6de7d90.rmeta: /tmp/vendor/proptest/src/lib.rs

/tmp/vendor/proptest/src/lib.rs:
