/root/repo/target/debug/deps/generator_statistics-080429bc7f0184e8.d: crates/graphs/tests/generator_statistics.rs

/root/repo/target/debug/deps/generator_statistics-080429bc7f0184e8: crates/graphs/tests/generator_statistics.rs

crates/graphs/tests/generator_statistics.rs:
