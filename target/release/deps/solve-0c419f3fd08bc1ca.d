/root/repo/target/release/deps/solve-0c419f3fd08bc1ca.d: crates/experiments/src/bin/solve.rs

/root/repo/target/release/deps/solve-0c419f3fd08bc1ca: crates/experiments/src/bin/solve.rs

crates/experiments/src/bin/solve.rs:
