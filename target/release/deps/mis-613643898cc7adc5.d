/root/repo/target/release/deps/mis-613643898cc7adc5.d: crates/mis/src/lib.rs crates/mis/src/adaptive.rs crates/mis/src/adversary.rs crates/mis/src/algorithm1.rs crates/mis/src/algorithm2.rs crates/mis/src/containment.rs crates/mis/src/dynamics.rs crates/mis/src/invariant.rs crates/mis/src/levels.rs crates/mis/src/observer.rs crates/mis/src/policy.rs crates/mis/src/recovery.rs crates/mis/src/runner.rs crates/mis/src/theory.rs

/root/repo/target/release/deps/libmis-613643898cc7adc5.rlib: crates/mis/src/lib.rs crates/mis/src/adaptive.rs crates/mis/src/adversary.rs crates/mis/src/algorithm1.rs crates/mis/src/algorithm2.rs crates/mis/src/containment.rs crates/mis/src/dynamics.rs crates/mis/src/invariant.rs crates/mis/src/levels.rs crates/mis/src/observer.rs crates/mis/src/policy.rs crates/mis/src/recovery.rs crates/mis/src/runner.rs crates/mis/src/theory.rs

/root/repo/target/release/deps/libmis-613643898cc7adc5.rmeta: crates/mis/src/lib.rs crates/mis/src/adaptive.rs crates/mis/src/adversary.rs crates/mis/src/algorithm1.rs crates/mis/src/algorithm2.rs crates/mis/src/containment.rs crates/mis/src/dynamics.rs crates/mis/src/invariant.rs crates/mis/src/levels.rs crates/mis/src/observer.rs crates/mis/src/policy.rs crates/mis/src/recovery.rs crates/mis/src/runner.rs crates/mis/src/theory.rs

crates/mis/src/lib.rs:
crates/mis/src/adaptive.rs:
crates/mis/src/adversary.rs:
crates/mis/src/algorithm1.rs:
crates/mis/src/algorithm2.rs:
crates/mis/src/containment.rs:
crates/mis/src/dynamics.rs:
crates/mis/src/invariant.rs:
crates/mis/src/levels.rs:
crates/mis/src/observer.rs:
crates/mis/src/policy.rs:
crates/mis/src/recovery.rs:
crates/mis/src/runner.rs:
crates/mis/src/theory.rs:
