/root/repo/target/release/deps/perf-59c0051debb948c4.d: crates/bench/benches/perf.rs

/root/repo/target/release/deps/perf-59c0051debb948c4: crates/bench/benches/perf.rs

crates/bench/benches/perf.rs:
