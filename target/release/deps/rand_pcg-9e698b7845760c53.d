/root/repo/target/release/deps/rand_pcg-9e698b7845760c53.d: /tmp/vendor/rand_pcg/src/lib.rs

/root/repo/target/release/deps/librand_pcg-9e698b7845760c53.rlib: /tmp/vendor/rand_pcg/src/lib.rs

/root/repo/target/release/deps/librand_pcg-9e698b7845760c53.rmeta: /tmp/vendor/rand_pcg/src/lib.rs

/tmp/vendor/rand_pcg/src/lib.rs:
