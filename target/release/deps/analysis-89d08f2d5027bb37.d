/root/repo/target/release/deps/analysis-89d08f2d5027bb37.d: crates/analysis/src/lib.rs crates/analysis/src/histogram.rs crates/analysis/src/regression.rs crates/analysis/src/stats.rs crates/analysis/src/table.rs

/root/repo/target/release/deps/libanalysis-89d08f2d5027bb37.rlib: crates/analysis/src/lib.rs crates/analysis/src/histogram.rs crates/analysis/src/regression.rs crates/analysis/src/stats.rs crates/analysis/src/table.rs

/root/repo/target/release/deps/libanalysis-89d08f2d5027bb37.rmeta: crates/analysis/src/lib.rs crates/analysis/src/histogram.rs crates/analysis/src/regression.rs crates/analysis/src/stats.rs crates/analysis/src/table.rs

crates/analysis/src/lib.rs:
crates/analysis/src/histogram.rs:
crates/analysis/src/regression.rs:
crates/analysis/src/stats.rs:
crates/analysis/src/table.rs:
