/root/repo/target/release/deps/beeping_mis-f97ec6a1c11ee74a.d: src/lib.rs

/root/repo/target/release/deps/libbeeping_mis-f97ec6a1c11ee74a.rlib: src/lib.rs

/root/repo/target/release/deps/libbeeping_mis-f97ec6a1c11ee74a.rmeta: src/lib.rs

src/lib.rs:
