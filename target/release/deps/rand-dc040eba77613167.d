/root/repo/target/release/deps/rand-dc040eba77613167.d: /tmp/vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-dc040eba77613167.rlib: /tmp/vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-dc040eba77613167.rmeta: /tmp/vendor/rand/src/lib.rs

/tmp/vendor/rand/src/lib.rs:
