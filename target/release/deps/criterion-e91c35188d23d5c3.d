/root/repo/target/release/deps/criterion-e91c35188d23d5c3.d: /tmp/vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-e91c35188d23d5c3.rlib: /tmp/vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-e91c35188d23d5c3.rmeta: /tmp/vendor/criterion/src/lib.rs

/tmp/vendor/criterion/src/lib.rs:
