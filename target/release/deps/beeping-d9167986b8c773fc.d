/root/repo/target/release/deps/beeping-d9167986b8c773fc.d: crates/beeping/src/lib.rs crates/beeping/src/byzantine.rs crates/beeping/src/channel.rs crates/beeping/src/churn.rs crates/beeping/src/faults.rs crates/beeping/src/protocol.rs crates/beeping/src/rng.rs crates/beeping/src/sim.rs crates/beeping/src/sleep.rs crates/beeping/src/trace.rs

/root/repo/target/release/deps/libbeeping-d9167986b8c773fc.rlib: crates/beeping/src/lib.rs crates/beeping/src/byzantine.rs crates/beeping/src/channel.rs crates/beeping/src/churn.rs crates/beeping/src/faults.rs crates/beeping/src/protocol.rs crates/beeping/src/rng.rs crates/beeping/src/sim.rs crates/beeping/src/sleep.rs crates/beeping/src/trace.rs

/root/repo/target/release/deps/libbeeping-d9167986b8c773fc.rmeta: crates/beeping/src/lib.rs crates/beeping/src/byzantine.rs crates/beeping/src/channel.rs crates/beeping/src/churn.rs crates/beeping/src/faults.rs crates/beeping/src/protocol.rs crates/beeping/src/rng.rs crates/beeping/src/sim.rs crates/beeping/src/sleep.rs crates/beeping/src/trace.rs

crates/beeping/src/lib.rs:
crates/beeping/src/byzantine.rs:
crates/beeping/src/channel.rs:
crates/beeping/src/churn.rs:
crates/beeping/src/faults.rs:
crates/beeping/src/protocol.rs:
crates/beeping/src/rng.rs:
crates/beeping/src/sim.rs:
crates/beeping/src/sleep.rs:
crates/beeping/src/trace.rs:
