/root/repo/target/release/deps/experiments-85e33328e1b4768d.d: crates/experiments/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-85e33328e1b4768d: crates/experiments/src/bin/experiments.rs

crates/experiments/src/bin/experiments.rs:
