/root/repo/target/release/deps/bench-e194f819bbc223b4.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-e194f819bbc223b4.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-e194f819bbc223b4.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
