/root/repo/target/release/deps/graphs-038602d31e5ad690.d: crates/graphs/src/lib.rs crates/graphs/src/builder.rs crates/graphs/src/dot.rs crates/graphs/src/edgelist.rs crates/graphs/src/generators/mod.rs crates/graphs/src/generators/classic.rs crates/graphs/src/generators/composite.rs crates/graphs/src/generators/expander.rs crates/graphs/src/generators/geometric.rs crates/graphs/src/generators/lattice.rs crates/graphs/src/generators/random.rs crates/graphs/src/generators/scale_free.rs crates/graphs/src/generators/small_world.rs crates/graphs/src/generators/trees.rs crates/graphs/src/graph.rs crates/graphs/src/mis.rs crates/graphs/src/properties.rs

/root/repo/target/release/deps/libgraphs-038602d31e5ad690.rlib: crates/graphs/src/lib.rs crates/graphs/src/builder.rs crates/graphs/src/dot.rs crates/graphs/src/edgelist.rs crates/graphs/src/generators/mod.rs crates/graphs/src/generators/classic.rs crates/graphs/src/generators/composite.rs crates/graphs/src/generators/expander.rs crates/graphs/src/generators/geometric.rs crates/graphs/src/generators/lattice.rs crates/graphs/src/generators/random.rs crates/graphs/src/generators/scale_free.rs crates/graphs/src/generators/small_world.rs crates/graphs/src/generators/trees.rs crates/graphs/src/graph.rs crates/graphs/src/mis.rs crates/graphs/src/properties.rs

/root/repo/target/release/deps/libgraphs-038602d31e5ad690.rmeta: crates/graphs/src/lib.rs crates/graphs/src/builder.rs crates/graphs/src/dot.rs crates/graphs/src/edgelist.rs crates/graphs/src/generators/mod.rs crates/graphs/src/generators/classic.rs crates/graphs/src/generators/composite.rs crates/graphs/src/generators/expander.rs crates/graphs/src/generators/geometric.rs crates/graphs/src/generators/lattice.rs crates/graphs/src/generators/random.rs crates/graphs/src/generators/scale_free.rs crates/graphs/src/generators/small_world.rs crates/graphs/src/generators/trees.rs crates/graphs/src/graph.rs crates/graphs/src/mis.rs crates/graphs/src/properties.rs

crates/graphs/src/lib.rs:
crates/graphs/src/builder.rs:
crates/graphs/src/dot.rs:
crates/graphs/src/edgelist.rs:
crates/graphs/src/generators/mod.rs:
crates/graphs/src/generators/classic.rs:
crates/graphs/src/generators/composite.rs:
crates/graphs/src/generators/expander.rs:
crates/graphs/src/generators/geometric.rs:
crates/graphs/src/generators/lattice.rs:
crates/graphs/src/generators/random.rs:
crates/graphs/src/generators/scale_free.rs:
crates/graphs/src/generators/small_world.rs:
crates/graphs/src/generators/trees.rs:
crates/graphs/src/graph.rs:
crates/graphs/src/mis.rs:
crates/graphs/src/properties.rs:
