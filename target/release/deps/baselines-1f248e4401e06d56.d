/root/repo/target/release/deps/baselines-1f248e4401e06d56.d: crates/baselines/src/lib.rs crates/baselines/src/afek.rs crates/baselines/src/jeavons.rs crates/baselines/src/local.rs crates/baselines/src/luby.rs crates/baselines/src/stone_age.rs crates/baselines/src/two_state.rs

/root/repo/target/release/deps/libbaselines-1f248e4401e06d56.rlib: crates/baselines/src/lib.rs crates/baselines/src/afek.rs crates/baselines/src/jeavons.rs crates/baselines/src/local.rs crates/baselines/src/luby.rs crates/baselines/src/stone_age.rs crates/baselines/src/two_state.rs

/root/repo/target/release/deps/libbaselines-1f248e4401e06d56.rmeta: crates/baselines/src/lib.rs crates/baselines/src/afek.rs crates/baselines/src/jeavons.rs crates/baselines/src/local.rs crates/baselines/src/luby.rs crates/baselines/src/stone_age.rs crates/baselines/src/two_state.rs

crates/baselines/src/lib.rs:
crates/baselines/src/afek.rs:
crates/baselines/src/jeavons.rs:
crates/baselines/src/local.rs:
crates/baselines/src/luby.rs:
crates/baselines/src/stone_age.rs:
crates/baselines/src/two_state.rs:
