//! Quickstart: compute a self-stabilizing MIS on a random graph.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use beeping_mis::prelude::*;

fn main() {
    // 1. A workload graph: Erdős–Rényi with average degree 8.
    let n = 500;
    let g = graphs::generators::random::gnp(n, 8.0 / (n as f64 - 1.0), 42);
    println!("graph: n = {}, m = {}, Δ = {}", g.len(), g.num_edges(), g.max_degree());

    // 2. The paper's Algorithm 1 under Theorem 2.1's knowledge model:
    //    every vertex knows (an upper bound on) the maximum degree.
    let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
    println!("policy: {}, ℓmax = {}", algo.policy().name(), algo.policy().max_lmax());

    // 3. Run from an arbitrary (adversarial) initial configuration — the
    //    defining test of self-stabilization.
    let outcome = algo
        .run(&g, RunConfig::new(7).with_init(InitialLevels::Random))
        .expect("stabilizes well within the default budget");

    // 4. The result is a verified maximal independent set.
    assert!(graphs::mis::is_maximal_independent_set(&g, &outcome.mis));
    let size = outcome.mis.iter().filter(|&&m| m).count();
    println!(
        "stabilized after {} rounds; |MIS| = {size}; total beeps = {}",
        outcome.stabilization_round,
        outcome.trace.total_beeps_channel1()
    );

    // 5. Compare with the two-channel variant (Corollary 2.3).
    let algo2 = Algorithm2::new(&g, LmaxPolicy::two_hop_degree(&g));
    let outcome2 =
        algo2.run(&g, RunConfig::new(7).with_init(InitialLevels::Random)).expect("stabilizes");
    assert!(graphs::mis::is_maximal_independent_set(&g, &outcome2.mis));
    println!("two-channel variant stabilized after {} rounds", outcome2.stabilization_round);
}
