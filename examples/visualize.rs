//! Visualize a stabilized configuration: export Graphviz DOT files showing
//! the computed MIS and the final levels.
//!
//! ```text
//! cargo run --release --example visualize
//! dot -Tpng /tmp/beeping_mis.dot -o mis.png   # if graphviz is installed
//! ```

use beeping_mis::prelude::*;
use graphs::dot::{level_labels, to_dot, DotStyle};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small geometric graph so the drawing stays readable.
    let g = graphs::generators::geometric::random_geometric_expected_degree(40, 5.0, 11);
    let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
    let outcome =
        algo.run(&g, RunConfig::new(3).with_init(InitialLevels::Random)).expect("stabilizes");
    assert!(graphs::mis::is_maximal_independent_set(&g, &outcome.mis));

    // 1. MIS membership: members filled black.
    let mis_dot = graphs::dot::mis_to_dot(&g, &outcome.mis);
    let mis_path = std::env::temp_dir().join("beeping_mis.dot");
    std::fs::write(&mis_path, &mis_dot)?;

    // 2. The final levels as labels — MIS members show ℓ = -ℓmax, their
    //    silenced neighbors show ℓ = ℓmax.
    let labeled = to_dot(
        &g,
        &DotStyle::plain()
            .with_highlight(outcome.mis.clone())
            .with_labels(level_labels(&outcome.levels)),
    );
    let levels_path = std::env::temp_dir().join("beeping_levels.dot");
    std::fs::write(&levels_path, &labeled)?;

    println!(
        "stabilized in {} rounds; |MIS| = {}",
        outcome.stabilization_round,
        outcome.mis.iter().filter(|&&m| m).count()
    );
    println!("wrote {}", mis_path.display());
    println!("wrote {}", levels_path.display());
    println!("render with: dot -Tpng {} -o mis.png", mis_path.display());
    Ok(())
}
