//! Scaling study: measure stabilization rounds across sizes and knowledge
//! models, and print the fitted growth laws — a self-contained miniature
//! of experiments T2.1/T2.2/C2.3.
//!
//! ```text
//! cargo run --release --example scaling_study
//! ```

use analysis::{FitReport, Summary};
use beeping_mis::prelude::*;
use mis::runner::SelfStabilizingMis;

fn measure<A: SelfStabilizingMis>(g: &graphs::Graph, algo: &A, seeds: u64) -> Summary {
    let rounds: Vec<u64> = (0..seeds)
        .map(|seed| {
            let outcome =
                mis::runner::run(g, algo, RunConfig::new(seed).with_init(InitialLevels::Random))
                    .expect("stabilizes");
            assert!(graphs::mis::is_maximal_independent_set(g, &outcome.mis));
            outcome.stabilization_round
        })
        .collect();
    Summary::of_counts(rounds)
}

fn main() {
    let sizes = [256usize, 512, 1024, 2048, 4096];
    let seeds = 15;
    println!("workload: G(n, 8/(n-1)); {seeds} seeds per point\n");
    println!(
        "{:>6}  {:>22}  {:>22}  {:>22}",
        "n", "Alg1 global-Δ (T2.1)", "Alg1 own-deg (T2.2)", "Alg2 deg₂ (C2.3)"
    );

    let mut means: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for (i, &n) in sizes.iter().enumerate() {
        let g = graphs::generators::random::gnp(n, 8.0 / (n as f64 - 1.0), 0x5CA1E + i as u64);
        let s1 = measure(&g, &Algorithm1::new(&g, LmaxPolicy::global_delta(&g)), seeds);
        let s2 = measure(&g, &Algorithm1::new(&g, LmaxPolicy::own_degree(&g)), seeds);
        let s3 = measure(&g, &Algorithm2::new(&g, LmaxPolicy::two_hop_degree(&g)), seeds);
        println!(
            "{n:>6}  {:>15.1} ±{:>4.1}  {:>15.1} ±{:>4.1}  {:>15.1} ±{:>4.1}",
            s1.mean,
            s1.ci95_halfwidth(),
            s2.mean,
            s2.ci95_halfwidth(),
            s3.mean,
            s3.ci95_halfwidth()
        );
        means[0].push(s1.mean);
        means[1].push(s2.mean);
        means[2].push(s3.mean);
    }

    println!("\nbest-fitting growth models:");
    for (label, series) in ["Alg1 global-Δ", "Alg1 own-deg", "Alg2 deg₂"].iter().zip(&means) {
        let best = &FitReport::compare_all(&sizes, series)[0];
        println!("  {label:<15} {best}");
    }
    println!(
        "\npaper predictions: T2.1 and C2.3 are O(log n); T2.2 is O(log n·loglog n) —\n\
         all three curves should grow logarithmically, never polynomially."
    );
}
