//! Fault recovery under a *continuous* fault process — beyond the paper's
//! single-burst model.
//!
//! The paper guarantees re-stabilization within O(log n) rounds after the
//! *last* fault. This example stresses the guarantee with a periodic fault
//! schedule (a transient corruption burst every F rounds) and tracks how
//! the stable fraction of the network evolves: the system converges between
//! bursts whenever F comfortably exceeds the stabilization time.
//!
//! ```text
//! cargo run --release --example fault_recovery
//! ```

use beeping_mis::prelude::*;
use mis::observer::Snapshot;
use mis::runner::initial_levels;

fn main() {
    let n = 1_000;
    let g = graphs::generators::random::gnp(n, 8.0 / (n as f64 - 1.0), 3);
    let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
    let lmax = algo.policy().lmax_values().to_vec();

    println!(
        "graph: n = {n}, Δ = {}; faults: corrupt 20% of nodes every 120 rounds",
        g.max_degree()
    );
    println!("{:>6}  {:>8}  {:>10}", "round", "stable%", "event");

    let config = RunConfig::new(5).with_init(InitialLevels::Random);
    let init = initial_levels(&algo, &config);
    let mut sim = beeping::Simulator::new(&g, algo.clone(), init, 5);
    let mut fault_rng = beeping::rng::aux_rng(5, 0xFA);

    let fault_period = 120u64;
    let bursts = 5u64;
    let mut stable_durations = Vec::new();
    let mut stabilized_at: Option<u64> = None;

    for round in 1..=(fault_period * (bursts + 2)) {
        sim.step();
        let snap = Snapshot::new(&g, &lmax, sim.states());
        let stable_pct = 100.0 * snap.stable_count() as f64 / n as f64;

        let mut event = String::new();
        if snap.is_stabilized() && stabilized_at.is_none() {
            stabilized_at = Some(round);
            event = "STABILIZED".into();
        }
        if round % fault_period == 0 && round / fault_period <= bursts {
            // Burst: corrupt a random 20% with arbitrary levels.
            let victims =
                beeping::faults::FaultTarget::RandomFraction(0.2).select(n, &mut fault_rng);
            for v in victims {
                let lm = algo.policy().lmax(v);
                let corrupted =
                    rand::Rng::gen_range(&mut fault_rng, -(lm as i64)..=lm as i64) as i32;
                sim.corrupt_state(v, corrupted);
            }
            if let Some(t) = stabilized_at.take() {
                stable_durations.push(round - t);
            }
            event = "FAULT BURST (20% corrupted)".into();
        }
        if round % 30 == 0 || !event.is_empty() {
            println!("{round:>6}  {stable_pct:>7.1}%  {event}");
        }
    }

    // The run must end stabilized (last burst long past).
    let snap = Snapshot::new(&g, &lmax, sim.states());
    assert!(snap.is_stabilized(), "must re-stabilize after the last burst");
    assert!(graphs::mis::is_maximal_independent_set(&g, snap.mis()));
    println!(
        "\nsurvived {bursts} fault bursts; the network was in a legal stabilized state \
         {:.0}% of the time between bursts and always recovered before the next one.",
        100.0 * stable_durations.iter().sum::<u64>() as f64 / (fault_period * bursts) as f64
    );
    assert_eq!(
        stable_durations.len() as u64,
        bursts,
        "every burst must have been preceded by a full recovery"
    );
}
