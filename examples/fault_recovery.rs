//! Fault recovery under a *continuous* fault process — beyond the paper's
//! single-burst model — with one permanently Byzantine radio in the mix.
//!
//! The paper guarantees re-stabilization within O(log n) rounds after the
//! *last* transient fault. This example stresses the guarantee with a
//! periodic fault schedule (a transient corruption burst every F rounds)
//! plus a stuck-beep Byzantine node that never stops transmitting, and
//! tracks two quantities per round: the stable fraction of the network, and
//! the *disruption radius* — how far from the Byzantine site instability
//! reaches (see `DESIGN.md` "Byzantine faults and containment"). The system
//! re-contains between bursts whenever F comfortably exceeds the
//! stabilization time; the stuck beeper itself simply integrates into the
//! MIS and silences its neighborhood.
//!
//! ```text
//! cargo run --release --example fault_recovery
//! ```

use beeping_mis::prelude::*;
use mis::containment::{byz_distances, correct_claimed_mis, disruption_radius_with};
use mis::observer::Snapshot;
use mis::runner::initial_levels;

fn main() {
    let n = 1_000;
    let g = graphs::generators::random::gnp(n, 8.0 / (n as f64 - 1.0), 3);
    let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
    let lmax = algo.policy().lmax_values().to_vec();

    // One permanently faulty radio, stuck transmitting every round.
    let byz_site = 0usize;
    let plan = ByzantinePlan::new().with_behavior(byz_site, ByzantineBehavior::StuckBeep);
    let dist = byz_distances(&g, &[byz_site]);
    let contained_radius = 2usize;

    println!(
        "graph: n = {n}, Δ = {}; faults: corrupt 20% of nodes every 120 rounds; \
         node {byz_site} is Byzantine (stuck-beep)",
        g.max_degree()
    );
    println!("{:>6}  {:>8}  {:>7}  {:>10}", "round", "stable%", "radius", "event");

    let config = RunConfig::new(5).with_init(InitialLevels::Random);
    let init = initial_levels(&algo, &config);
    let mut sim = beeping::Simulator::new(&g, algo.clone(), init, 5).with_byzantine(plan);
    let mut fault_rng = beeping::rng::aux_rng(5, 0xFA);

    let fault_period = 120u64;
    let bursts = 5u64;
    let mut contained_durations = Vec::new();
    let mut contained_at: Option<u64> = None;

    for round in 1..=(fault_period * (bursts + 2)) {
        sim.step();
        let snap = Snapshot::new(&g, &lmax, sim.states());
        let stable_pct = 100.0 * snap.stable_count() as f64 / n as f64;
        let radius = disruption_radius_with(&algo, &g, sim.states(), sim.active(), &dist);

        let mut event = String::new();
        if radius <= contained_radius && contained_at.is_none() {
            contained_at = Some(round);
            event = format!("CONTAINED (radius ≤ {contained_radius})");
        }
        if round % fault_period == 0 && round / fault_period <= bursts {
            // Burst: corrupt a random 20% with arbitrary levels.
            let victims =
                beeping::faults::FaultTarget::RandomFraction(0.2).select(n, &mut fault_rng);
            for v in victims {
                let lm = algo.policy().lmax(v);
                let corrupted =
                    rand::Rng::gen_range(&mut fault_rng, -(lm as i64)..=lm as i64) as i32;
                sim.corrupt_state(v, corrupted);
            }
            if let Some(t) = contained_at.take() {
                contained_durations.push(round - t);
            }
            event = "FAULT BURST (20% corrupted)".into();
        }
        if round % 30 == 0 || !event.is_empty() {
            println!("{round:>6}  {stable_pct:>7.1}%  {radius:>7}  {event}");
        }
    }

    // The run must end contained (last burst long past): every correct node
    // more than `contained_radius` hops from the Byzantine site is stable,
    // and the certificate on the correct subgraph is an independent set
    // that never credits the Byzantine node.
    let radius = disruption_radius_with(&algo, &g, sim.states(), sim.active(), &dist);
    assert!(
        radius <= contained_radius,
        "disruption radius {radius} escaped the Byzantine neighborhood"
    );
    let mis = correct_claimed_mis(&algo, &g, sim.states(), sim.active(), &[byz_site]);
    assert!(!mis[byz_site]);
    for (u, v) in g.edges() {
        assert!(!(mis[u] && mis[v]), "certified set not independent at ({u},{v})");
    }
    println!(
        "\nsurvived {bursts} fault bursts with a stuck-beep Byzantine node; disruption was \
         contained to radius ≤ {contained_radius} {:.0}% of the time between bursts and \
         final radius is {radius}.",
        100.0 * contained_durations.iter().sum::<u64>() as f64 / (fault_period * bursts) as f64
    );
    assert_eq!(
        contained_durations.len() as u64,
        bursts,
        "every burst must have been preceded by full re-containment"
    );
}
