//! Wireless sensor network scenario — the deployment the beeping model
//! abstracts (paper §1).
//!
//! A few thousand sensors are scattered over a field; each can only emit a
//! radio "beep" heard by everyone in range, and detect whether ≥1 neighbor
//! beeped. The MIS election picks a set of *cluster heads*: no two heads in
//! radio range of each other, every other sensor adjacent to a head — the
//! classic clustering/backbone primitive.
//!
//! ```text
//! cargo run --release --example sensor_network
//! ```

use beeping_mis::prelude::*;
use rand::Rng;
use rand::SeedableRng;

fn main() {
    // Deploy 2,000 sensors uniformly over the unit square with a radio
    // range chosen for ≈ 10 neighbors each.
    let n = 2_000;
    let mut rng = rand_pcg::Pcg64Mcg::seed_from_u64(2024);
    let positions: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen(), rng.gen())).collect();
    let radius = (10.0 / (std::f64::consts::PI * (n as f64 - 1.0))).sqrt();
    let g = graphs::generators::geometric::geometric_from_points(&positions, radius);
    let summary = graphs::properties::DegreeSummary::of(&g);
    println!("deployment: {summary}, radio range {radius:.4}");

    // Sensors know only a loose bound on how crowded a neighborhood can be
    // (say, the hardware spec guarantees at most 64 sensors in range) —
    // Theorem 2.1's knowledge model with an untight bound.
    let policy = LmaxPolicy::global_delta_from_bound(g.len(), 64, 15);
    let algo = Algorithm1::new(&g, policy);

    // Sensors boot with arbitrary RAM contents.
    let outcome = algo
        .run(&g, RunConfig::new(1).with_init(InitialLevels::Random))
        .expect("cluster-head election stabilizes");
    assert!(graphs::mis::is_maximal_independent_set(&g, &outcome.mis));

    let heads: Vec<usize> =
        outcome.mis.iter().enumerate().filter_map(|(v, &m)| m.then_some(v)).collect();
    println!(
        "cluster-head election stabilized in {} rounds: {} heads for {} sensors",
        outcome.stabilization_round,
        heads.len(),
        g.len()
    );

    // Energy accounting: beeps are the dominant radio cost.
    println!(
        "energy: {:.1} beeps per sensor over the whole election",
        outcome.trace.total_beeps_channel1() as f64 / g.len() as f64
    );

    // Every sensor is a head or hears one — verify coverage explicitly.
    let covered = g
        .nodes()
        .filter(|&v| outcome.mis[v] || g.neighbors(v).iter().any(|&u| outcome.mis[u as usize]))
        .count();
    println!("coverage: {covered}/{} sensors within range of a head", g.len());
    assert_eq!(covered, g.len());

    // A lightning strike wipes the RAM of every sensor in the north-east
    // quadrant; the election self-heals.
    let victims: Vec<usize> =
        g.nodes().filter(|&v| positions[v].0 > 0.5 && positions[v].1 > 0.5).collect();
    println!("\ntransient fault: corrupting {} sensors in the NE quadrant…", victims.len());
    let recovery = mis::runner::run_recovery(
        &g,
        &algo,
        99,
        beeping::faults::FaultTarget::Nodes(victims),
        1_000_000,
    )
    .expect("recovers");
    println!(
        "initial election took {} rounds; post-fault recovery took {} rounds",
        recovery.initial_stabilization, recovery.recovery_rounds
    );
    assert!(graphs::mis::is_maximal_independent_set(&g, &recovery.mis));
    println!("recovered to a valid cluster-head set — no reboot, no coordinator.");
}
