//! Bench for experiments ABL-C1 and ABL-LMAX: stabilization under
//! different ℓmax regimes on a fixed graph.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mis::runner::{InitialLevels, RunConfig};
use mis::{Algorithm1, LmaxPolicy};

fn bench(c: &mut Criterion) {
    let g = graphs::generators::scale_free::barabasi_albert(256, 3, 0xAB1).unwrap();
    let mut group = c.benchmark_group("ABL-lmax-regimes-n256");
    group.sample_size(10);
    let policies = [
        LmaxPolicy::global_delta_with(&g, 2),
        LmaxPolicy::global_delta_with(&g, 15),
        LmaxPolicy::global_delta_with(&g, 30),
        LmaxPolicy::own_degree(&g),
        LmaxPolicy::fixed(g.len(), 40),
    ];
    for policy in policies {
        let algo = Algorithm1::new(&g, policy);
        let name = algo.policy().name().to_string();
        let mut seed = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, _| {
            b.iter(|| {
                seed += 1;
                let cfg = RunConfig::new(seed)
                    .with_init(InitialLevels::Random)
                    .with_max_rounds(2_000_000);
                std::hint::black_box(algo.run(&g, cfg).unwrap().stabilization_round)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
