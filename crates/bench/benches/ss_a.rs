//! Bench for experiment SS-A: adversarial-initialization cells for JSX
//! and Algorithm 1.

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::adversarial::{measure_alg1, measure_jsx, JsxInit};
use mis::runner::InitialLevels;

fn bench(c: &mut Criterion) {
    let g = graphs::generators::random::gnp(128, 8.0 / 127.0, 0x5A);
    let mut group = c.benchmark_group("SS-A-adversarial");
    group.sample_size(10);
    group.bench_function("jsx-random-states", |b| {
        b.iter(|| std::hint::black_box(measure_jsx(&g, JsxInit::RandomStates, 3, 50_000)))
    });
    group.bench_function("alg1-all-claiming", |b| {
        b.iter(|| std::hint::black_box(measure_alg1(&g, InitialLevels::AllClaiming, 3, 1_000_000)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
