//! Bench for experiment ABL-HD: a run under each duplex mode.

use beeping::sim::DuplexMode;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use experiments::ablation_duplex::run_once;

fn bench(c: &mut Criterion) {
    let g = graphs::generators::random::gnp(256, 8.0 / 255.0, 0xD0);
    let mut group = c.benchmark_group("ABL-HD-duplex");
    group.sample_size(10);
    for (label, mode, budget) in
        [("full", DuplexMode::Full, 1_000_000u64), ("half", DuplexMode::Half, 2_000u64)]
    {
        let mut seed = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(label), &mode, |b, &m| {
            b.iter(|| {
                seed += 1;
                std::hint::black_box(run_once(&g, m, seed, budget))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
