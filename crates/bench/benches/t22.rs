//! Bench for experiment T2.2: stabilization of Algorithm 1 with the
//! own-degree policy on Barabási–Albert graphs (heterogeneous ℓmax).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mis::runner::{InitialLevels, RunConfig};
use mis::{Algorithm1, LmaxPolicy};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("T2.2-stabilize-own-degree");
    group.sample_size(10);
    for n in [128usize, 256, 512, 1024] {
        let g = graphs::generators::scale_free::barabasi_albert(n, 3, 0xB2).unwrap();
        let algo = Algorithm1::new(&g, LmaxPolicy::own_degree(&g));
        let mut seed = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                seed += 1;
                let config = RunConfig::new(seed).with_init(InitialLevels::Random);
                let outcome = algo.run(&g, config).expect("stabilizes");
                std::hint::black_box(outcome.stabilization_round)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
