//! Bench for experiment EXT-WAKE: stabilization under wake-up schedules.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use experiments::ext_wakeup::{measure_wakeup, WakeSchedule};

fn bench(c: &mut Criterion) {
    let g = graphs::generators::random::gnp(256, 8.0 / 255.0, 0x3A);
    let mut group = c.benchmark_group("EXT-WAKE-n256");
    group.sample_size(10);
    for schedule in
        [WakeSchedule::AllAwake, WakeSchedule::RandomWindow(512), WakeSchedule::Wave(512)]
    {
        let mut seed = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(schedule.label()), &schedule, |b, s| {
            b.iter(|| {
                seed += 1;
                std::hint::black_box(measure_wakeup(&g, *s, seed, 10_000_000).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
