//! Bench for experiment C2.3: stabilization of the two-channel
//! Algorithm 2 with the deg₂ policy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mis::runner::{InitialLevels, RunConfig};
use mis::{Algorithm2, LmaxPolicy};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("C2.3-stabilize-two-channel");
    group.sample_size(10);
    for n in [128usize, 256, 512, 1024] {
        let g = graphs::generators::random::gnp(n, 8.0 / (n as f64 - 1.0), 0xC3);
        let algo = Algorithm2::new(&g, LmaxPolicy::two_hop_degree(&g));
        let mut seed = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                seed += 1;
                let config = RunConfig::new(seed).with_init(InitialLevels::Random);
                let outcome = algo.run(&g, config).expect("stabilizes");
                std::hint::black_box(outcome.stabilization_round)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
