//! Bench for experiment L3.6: prominence-episode collection.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("L3.6-prominence-episodes");
    group.sample_size(10);
    group.bench_function("collect-n128-1seed", |b| {
        b.iter(|| {
            std::hint::black_box(
                experiments::lemma36::collect_episodes(128, 1, 20_000).expect("valid BA"),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
