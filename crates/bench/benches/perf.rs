//! Bench for experiment PERF: scalar vs scatter round-engine throughput
//! on the steady-state Algorithm 1 workload (the BENCH_PERF.json claim,
//! measured under criterion's statistics instead of one wall-clock run).

use beeping::{EngineMode, Simulator};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use experiments::perf::families;
use mis::{Algorithm1, LmaxPolicy};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("PERF-engine-throughput");
    group.sample_size(10);
    for family in families() {
        for n in [1usize << 12, 1 << 14] {
            let g = family.generate(n, 0x5C);
            let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
            let levels = mis::runner::run(&g, &algo, mis::runner::RunConfig::new(0x9E2F))
                .expect("workload stabilizes")
                .levels;
            group.throughput(Throughput::Elements(n as u64));
            for engine in [EngineMode::Scalar, EngineMode::Scatter] {
                let id = BenchmarkId::new(format!("{family}/{engine:?}"), n);
                group.bench_with_input(id, &n, |b, _| {
                    let mut sim = Simulator::new(&g, algo.clone(), levels.clone(), 0x9E2F)
                        .with_engine(engine);
                    b.iter(|| std::hint::black_box(sim.step()))
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
