//! Bench for experiment L6.7: golden-round classification over an
//! execution.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("L6.7-golden-classification");
    group.sample_size(10);
    group.bench_function("collect-n128-2seeds", |b| {
        b.iter(|| std::hint::black_box(experiments::lemma67::collect(128, 2, 5_000)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
