//! Bench for experiment ENERGY: one full stabilization with beep
//! accounting, per algorithm.

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::energy::measure_energy;

fn bench(c: &mut Criterion) {
    let g = graphs::generators::geometric::random_geometric_expected_degree(512, 8.0, 0xE0);
    let mut group = c.benchmark_group("ENERGY-n512");
    group.sample_size(10);
    group.bench_function("alg1", |b| b.iter(|| std::hint::black_box(measure_energy(&g, false, 2))));
    group.bench_function("alg2", |b| b.iter(|| std::hint::black_box(measure_energy(&g, true, 2))));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
