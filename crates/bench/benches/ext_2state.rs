//! Bench for experiment EXT-2STATE: the constant-state baseline vs
//! Algorithm 1 on one graph.

use baselines::TwoStateMis;
use criterion::{criterion_group, criterion_main, Criterion};
use mis::runner::{InitialLevels, RunConfig};
use mis::{Algorithm1, LmaxPolicy};

fn bench(c: &mut Criterion) {
    let g = graphs::generators::random::gnp(512, 8.0 / 511.0, 0x25);
    let mut group = c.benchmark_group("EXT-2STATE-n512");
    group.sample_size(10);
    let two_state = TwoStateMis::new();
    let mut seed = 0u64;
    group.bench_function("two-state", |b| {
        b.iter(|| {
            seed += 1;
            std::hint::black_box(two_state.run_random_init(&g, seed, 1_000_000).unwrap().1)
        })
    });
    let alg1 = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
    group.bench_function("alg1", |b| {
        b.iter(|| {
            seed += 1;
            let cfg = RunConfig::new(seed).with_init(InitialLevels::Random);
            std::hint::black_box(alg1.run(&g, cfg).unwrap().stabilization_round)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
