//! Bench for experiment L3.5: the platinum-round waiting-time
//! collection loop (simulation + per-round Snapshot computation).

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("L3.5-platinum-waits");
    group.sample_size(10);
    group.bench_function("collect-n128-1seed", |b| {
        b.iter(|| std::hint::black_box(experiments::lemma35::collect_waits(128, 1, 10_000)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
