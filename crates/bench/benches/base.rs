//! Bench for experiment BASE: one run of each comparator on the same
//! graph.

use baselines::{luby_mis, AfekStyleMis, JsxMis};
use criterion::{criterion_group, criterion_main, Criterion};
use mis::runner::{InitialLevels, RunConfig};
use mis::{Algorithm1, Algorithm2, LmaxPolicy};

fn bench(c: &mut Criterion) {
    let n = 512usize;
    let g = graphs::generators::random::gnp(n, 8.0 / (n as f64 - 1.0), 0xBA);
    let alg1 = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
    let alg2 = Algorithm2::new(&g, LmaxPolicy::two_hop_degree(&g));
    let afek = AfekStyleMis::new(n);
    let jsx = JsxMis::new();
    let mut group = c.benchmark_group("BASE-comparators-n512");
    group.sample_size(10);
    let mut seed = 0u64;
    group.bench_function("alg1", |b| {
        b.iter(|| {
            seed += 1;
            let cfg = RunConfig::new(seed).with_init(InitialLevels::Random);
            std::hint::black_box(alg1.run(&g, cfg).unwrap().stabilization_round)
        })
    });
    group.bench_function("alg2", |b| {
        b.iter(|| {
            seed += 1;
            let cfg = RunConfig::new(seed).with_init(InitialLevels::Random);
            std::hint::black_box(alg2.run(&g, cfg).unwrap().stabilization_round)
        })
    });
    group.bench_function("jsx-clean", |b| {
        b.iter(|| {
            seed += 1;
            std::hint::black_box(jsx.run_clean(&g, seed, 1_000_000).unwrap().1)
        })
    });
    group.bench_function("afek-style", |b| {
        b.iter(|| {
            seed += 1;
            std::hint::black_box(afek.run(&g, seed, 1_000_000).unwrap().1)
        })
    });
    group.bench_function("luby", |b| {
        b.iter(|| {
            seed += 1;
            std::hint::black_box(luby_mis(&g, seed, 1_000_000).unwrap().1)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
