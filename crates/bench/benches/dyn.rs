//! Bench for experiment DYN: trajectory computation over a recorded
//! execution (Snapshot per round).

use criterion::{criterion_group, criterion_main, Criterion};
use mis::dynamics::trajectory;
use mis::runner::RunConfig;
use mis::{Algorithm1, LmaxPolicy};

fn bench(c: &mut Criterion) {
    let g = graphs::generators::random::gnp(256, 8.0 / 255.0, 0xD1);
    let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
    let outcome = algo.run(&g, RunConfig::new(1).with_level_recording()).expect("stabilizes");
    let history = outcome.level_history.unwrap();
    let mut group = c.benchmark_group("DYN-trajectory");
    group.sample_size(10);
    group.bench_function("n256-full-history", |b| {
        b.iter(|| std::hint::black_box(trajectory(&g, algo.policy().lmax_values(), &history)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
