//! Bench for experiment T2.2-L: per-class stabilization measurement.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("T2.2-L-layering");
    group.sample_size(10);
    group.bench_function("measure-n256-2seeds", |b| {
        b.iter(|| std::hint::black_box(experiments::thm22_layers::measure_layers(256, 2)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
