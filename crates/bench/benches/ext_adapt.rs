//! Bench for experiment EXT-ADAPT: stabilization of the knowledge-free
//! adaptive variant vs the Theorem 2.1 reference.

use criterion::{criterion_group, criterion_main, Criterion};
use mis::adaptive::AdaptiveMis;
use mis::runner::{InitialLevels, RunConfig};
use mis::{Algorithm1, LmaxPolicy};

fn bench(c: &mut Criterion) {
    let g = graphs::generators::random::gnp(512, 8.0 / 511.0, 0xEA);
    let mut group = c.benchmark_group("EXT-ADAPT-n512");
    group.sample_size(10);
    let adaptive = AdaptiveMis::new();
    let mut seed = 0u64;
    group.bench_function("adaptive", |b| {
        b.iter(|| {
            seed += 1;
            std::hint::black_box(adaptive.run_random_init(&g, seed, 2_000_000).unwrap().1)
        })
    });
    let reference = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
    group.bench_function("thm2.1-reference", |b| {
        b.iter(|| {
            seed += 1;
            let cfg = RunConfig::new(seed).with_init(InitialLevels::Random);
            std::hint::black_box(reference.run(&g, cfg).unwrap().stabilization_round)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
