//! Bench for experiment F1: raw transmit sampling across the level
//! activation function (Figure 1) — the per-node per-round cost.

use beeping::protocol::BeepingProtocol;
use beeping::rng::node_rng;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mis::{Algorithm1, LmaxPolicy};

fn bench(c: &mut Criterion) {
    let g = graphs::Graph::empty(1);
    let algo = Algorithm1::new(&g, LmaxPolicy::fixed(1, 20));
    let mut group = c.benchmark_group("F1-transmit-sampling");
    for level in [-20i32, 1, 10, 20] {
        group.bench_with_input(BenchmarkId::from_parameter(level), &level, |b, &l| {
            let mut rng = node_rng(1, 0);
            b.iter(|| std::hint::black_box(algo.transmit(0, &l, &mut rng)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
