//! Bench for experiment NOISE: stabilization on an unreliable channel
//! (beep loss at several rates, plus the churn-under-noise composite).

use beeping::channel::ChannelFault;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use experiments::noise::churn_plan;
use mis::recovery::{run_noisy, NoisyRunConfig};
use mis::{Algorithm1, LmaxPolicy};

fn bench(c: &mut Criterion) {
    let g = graphs::generators::geometric::random_geometric_expected_degree(512, 8.0, 0x55);
    let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));

    let mut group = c.benchmark_group("NOISE-drop");
    group.sample_size(10);
    for p in [0.0f64, 0.02, 0.05] {
        let mut seed = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| {
                seed += 1;
                let config = NoisyRunConfig::new(seed)
                    .with_max_rounds(1_000_000)
                    .with_channel(ChannelFault::reliable().with_drop(p));
                let outcome = run_noisy(&g, &algo, &config);
                assert!(outcome.stabilized);
                std::hint::black_box(outcome.total_rounds)
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("NOISE-churn");
    group.sample_size(10);
    let plan = churn_plan(&g).expect("workload graph supports the churn schedule");
    let mut seed = 0u64;
    group.bench_function("leave-join-edge-flip@0.02", |b| {
        b.iter(|| {
            seed += 1;
            let config = NoisyRunConfig::new(seed)
                .with_max_rounds(1_000_000)
                .with_churn(plan.clone())
                .with_channel(ChannelFault::reliable().with_drop(0.02));
            let outcome = run_noisy(&g, &algo, &config);
            std::hint::black_box(outcome.events.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
