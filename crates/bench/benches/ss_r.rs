//! Bench for experiment SS-R: fault recovery (stabilize, corrupt,
//! re-stabilize) across corruption scales.

use beeping::faults::FaultTarget;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mis::runner::run_recovery;
use mis::{Algorithm1, LmaxPolicy};

fn bench(c: &mut Criterion) {
    let g = graphs::generators::geometric::random_geometric_expected_degree(512, 8.0, 0x55);
    let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
    let mut group = c.benchmark_group("SS-R-recovery");
    group.sample_size(10);
    for (label, target) in [
        ("one-node", FaultTarget::RandomCount(1)),
        ("half", FaultTarget::RandomFraction(0.5)),
        ("all", FaultTarget::All),
    ] {
        let mut seed = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(label), &target, |b, t| {
            b.iter(|| {
                seed += 1;
                let rec = run_recovery(&g, &algo, seed, t.clone(), 1_000_000).unwrap();
                std::hint::black_box(rec.recovery_rounds)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
