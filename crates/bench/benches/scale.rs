//! Bench for experiment SCALE: raw simulator round throughput at large
//! n (the cost driver of every other experiment).

use beeping::Simulator;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mis::runner::{initial_levels, RunConfig};
use mis::{Algorithm1, LmaxPolicy};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("SCALE-round-throughput");
    group.sample_size(10);
    for n in [10_000usize, 50_000] {
        let g = graphs::generators::geometric::random_geometric_expected_degree(n, 8.0, 0x5C);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let init = initial_levels(&algo, &RunConfig::new(1));
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut sim = Simulator::new(&g, algo.clone(), init.clone(), 1);
            b.iter(|| std::hint::black_box(sim.step()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
