//! Criterion benchmark crate; see `benches/`. The library target is empty.
