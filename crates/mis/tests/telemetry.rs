//! Telemetry determinism and round-trip tests for the runner layer.
//!
//! The contract under test (DESIGN.md §9): telemetry is strictly
//! observational. Attaching an enabled handle with recording sinks must not
//! change a single bit of any run — same MIS, same final levels, same
//! stabilization round, same per-round trace — across graph families,
//! channel counts (Algorithm 1 vs 2) and fault plans. The serialized JSONL
//! stream must round-trip: parse back and reproduce the in-memory `Trace`
//! totals exactly.

use beeping::faults::{FaultPlan, FaultTarget};
use graphs::generators::GraphFamily;
use graphs::Graph;
use mis::runner::{self, InitialLevels, Outcome, RunConfig, SelfStabilizingMis};
use mis::{Algorithm1, Algorithm2, LmaxPolicy};
use telemetry::jsonl::{parse_jsonl, Value};
use telemetry::{Config, Event, JsonlSink, MemorySink, Telemetry};

fn families() -> Vec<GraphFamily> {
    vec![GraphFamily::Cycle, GraphFamily::Gnp { avg_degree: 8.0 }, GraphFamily::Regular { d: 4 }]
}

fn fault_plans() -> Vec<FaultPlan> {
    vec![
        FaultPlan::new(),
        FaultPlan::new().with_fault(10, FaultTarget::RandomFraction(0.3)),
        FaultPlan::new()
            .with_fault(5, FaultTarget::RandomCount(4))
            .with_fault(15, FaultTarget::RandomFraction(0.5)),
    ]
}

fn assert_same_outcome(plain: &Outcome, observed: &Outcome, context: &str) {
    assert_eq!(plain.mis, observed.mis, "MIS diverged: {context}");
    assert_eq!(plain.levels, observed.levels, "levels diverged: {context}");
    assert_eq!(
        plain.stabilization_round, observed.stabilization_round,
        "stabilization round diverged: {context}"
    );
    assert_eq!(plain.rounds_run, observed.rounds_run, "rounds diverged: {context}");
    assert_eq!(
        plain.trace.reports(),
        observed.trace.reports(),
        "per-round trace diverged: {context}"
    );
}

fn run_pair<A: SelfStabilizingMis>(
    g: &Graph,
    algo: &A,
    seed: u64,
    faults: &FaultPlan,
) -> (Outcome, Outcome, telemetry::MemoryHandle) {
    let base = RunConfig::new(seed).with_max_rounds(100_000).with_faults(faults.clone());
    let plain = runner::run(g, algo, base.clone()).expect("plain run stabilizes");
    let tele = Telemetry::enabled(Config { level_stride: 4 });
    let (sink, handle) = MemorySink::new();
    tele.add_sink(Box::new(sink));
    let observed =
        runner::run(g, algo, base.with_telemetry(tele.clone())).expect("observed run stabilizes");
    (plain, observed, handle)
}

#[test]
fn bit_identity_across_families_channels_and_fault_plans() {
    for (i, family) in families().iter().enumerate() {
        let g = family.generate(48, 0x6000 + i as u64);
        for (j, faults) in fault_plans().iter().enumerate() {
            for seed in 0..2u64 {
                let context = format!("{family}, plan {j}, seed {seed}");
                // Algorithm 1: single channel.
                let algo1 = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
                let (plain, observed, handle) = run_pair(&g, &algo1, seed, faults);
                assert_same_outcome(&plain, &observed, &format!("Alg1, {context}"));
                assert_eq!(handle.rounds().len() as u64, observed.rounds_run);
                // Algorithm 2: two channels.
                let algo2 = Algorithm2::new(&g, LmaxPolicy::two_hop_degree(&g));
                let (plain, observed, _) = run_pair(&g, &algo2, seed, faults);
                assert_same_outcome(&plain, &observed, &format!("Alg2, {context}"));
            }
        }
    }
}

#[test]
fn round_events_mirror_the_trace() {
    let g = GraphFamily::Gnp { avg_degree: 8.0 }.generate(64, 0x6001);
    let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
    let faults = FaultPlan::new().with_fault(8, FaultTarget::RandomFraction(0.4));
    let (_, outcome, handle) = run_pair(&g, &algo, 3, &faults);
    let rounds = handle.rounds();
    assert_eq!(rounds.len(), outcome.trace.len());
    for (e, r) in rounds.iter().zip(outcome.trace.reports()) {
        assert_eq!(e.round, r.round);
        assert_eq!(e.beeps_channel1, r.beeps_channel1 as u64);
        assert_eq!(e.beeps_channel2, r.beeps_channel2 as u64);
        assert_eq!(e.hearers_channel1, r.hearers_channel1 as u64);
        assert_eq!(e.hearers_channel2, r.hearers_channel2 as u64);
        assert_eq!(e.lone_beepers, r.lone_beepers as u64);
        assert_eq!(e.lone_beepers_channel2, r.lone_beepers_channel2 as u64);
        assert_eq!(e.n, g.len() as u64);
        assert!(e.in_mis.is_some() && e.stable.is_some());
        // Stride-4 histogram sampling.
        assert_eq!(e.levels.is_some(), e.round % 4 == 0, "round {}", e.round);
    }
    // One fault marker for the scheduled corruption.
    let markers: Vec<_> =
        handle.events().into_iter().filter(|e| matches!(e, Event::Marker(_))).collect();
    assert_eq!(markers.len(), 1);
}

#[test]
fn jsonl_round_trip_reproduces_trace_totals() {
    let g = GraphFamily::Regular { d: 4 }.generate(48, 0x6002);
    let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
    let path = std::env::temp_dir().join(format!("mis_telemetry_{}.jsonl", std::process::id()));
    let tele = Telemetry::enabled(Config { level_stride: 0 })
        .with_sink(Box::new(JsonlSink::create(&path).expect("temp file")));
    let outcome = runner::run(
        &g,
        &algo,
        RunConfig::new(9).with_max_rounds(100_000).with_telemetry(tele.clone()),
    )
    .expect("stabilizes");
    let text = std::fs::read_to_string(&path).expect("stream written");
    let _ = std::fs::remove_file(&path);
    let docs = parse_jsonl(&text).expect("stream parses");
    let ty = |d: &Value| d.get("type").and_then(Value::as_str).unwrap_or_default().to_string();
    assert_eq!(ty(&docs[0]), "run_start");
    assert_eq!(ty(docs.last().unwrap()), "metrics");
    let rounds: Vec<&Value> = docs.iter().filter(|d| ty(d) == "round").collect();
    assert_eq!(rounds.len() as u64, outcome.rounds_run);
    let sum = |field: &str| -> usize {
        rounds.iter().map(|d| d.get(field).and_then(Value::as_u64).unwrap_or(0) as usize).sum()
    };
    // Parsed stream totals equal the in-memory Trace totals.
    assert_eq!(sum("beeps_c1"), outcome.trace.total_beeps_channel1());
    assert_eq!(sum("lone_c1"), outcome.trace.total_lone_beepers());
    assert_eq!(sum("lone_c2"), outcome.trace.total_lone_beepers_channel2());
    // ... and equal the accumulated metrics counters.
    let metrics = tele.metrics();
    assert_eq!(metrics.counter("trace.rounds"), outcome.rounds_run);
    assert_eq!(metrics.counter("trace.beeps_c1") as usize, outcome.trace.total_beeps_channel1());
    let end = docs.iter().find(|d| ty(d) == "run_end").expect("run_end present");
    assert_eq!(end.get("stabilized").unwrap().as_bool(), Some(true));
    assert_eq!(end.get("stabilization_round").unwrap().as_u64(), Some(outcome.stabilization_round));
}

#[test]
fn zero_round_run_streams_lifecycle_only() {
    // An already-stabilized initial configuration: the runner detects
    // stabilization before stepping, so the stream carries RunStart,
    // RunEnd, and the metrics snapshot — no round events, zero counters.
    let g = GraphFamily::Cycle.generate(24, 0x6003);
    let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
    let stabilized = runner::run(&g, &algo, RunConfig::new(1).with_max_rounds(100_000))
        .expect("seed run stabilizes");
    let init = InitialLevels::Custom(stabilized.levels.iter().map(|&l| i64::from(l)).collect());
    let tele = Telemetry::enabled(Config { level_stride: 1 });
    let (sink, handle) = MemorySink::new();
    tele.add_sink(Box::new(sink));
    let outcome =
        runner::run(&g, &algo, RunConfig::new(2).with_init(init).with_telemetry(tele.clone()))
            .expect("already stabilized");
    assert_eq!(outcome.rounds_run, 0);
    assert_eq!(outcome.stabilization_round, 0);
    assert!(handle.rounds().is_empty());
    let events = handle.events();
    assert!(matches!(events.first(), Some(Event::RunStart { .. })));
    assert!(events.iter().any(|e| matches!(
        e,
        Event::RunEnd { rounds: 0, stabilized: true, stabilization_round: Some(0) }
    )));
    assert!(matches!(events.last(), Some(Event::Metrics(_))));
    assert_eq!(tele.metrics().counter("trace.rounds"), 0);
}
