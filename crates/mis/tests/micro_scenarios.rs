//! Deterministic micro-scenarios: hand-checkable executions on tiny graphs
//! exercising every corner of the update rules.

use beeping::protocol::BeepSignal;
use beeping::rng::node_rng;
use beeping::{BeepingProtocol, Simulator};
use graphs::generators::classic;
use graphs::Graph;
use mis::levels::Level;
use mis::{Algorithm1, Algorithm2, LmaxPolicy};

/// Exhaustive single-step check of Algorithm 1's `receive` against the
/// pseudocode, over the full state space of a small ℓmax.
#[test]
fn algorithm1_receive_matches_pseudocode_exhaustively() {
    let g = classic::path(2);
    let lmax = 4;
    let algo = Algorithm1::new(&g, LmaxPolicy::fixed(2, lmax));
    let mut rng = node_rng(0, 0);
    for level in -lmax..=lmax {
        for beeped in [false, true] {
            for heard in [false, true] {
                let mut l = level;
                algo.receive(
                    0,
                    &mut l,
                    if beeped { BeepSignal::channel1() } else { BeepSignal::silent() },
                    if heard { BeepSignal::channel1() } else { BeepSignal::silent() },
                    &mut rng,
                );
                let expected = if heard {
                    (level + 1).min(lmax)
                } else if beeped {
                    -lmax
                } else {
                    (level - 1).max(1)
                };
                assert_eq!(l, expected, "ℓ={level} beeped={beeped} heard={heard}");
            }
        }
    }
}

/// Exhaustive single-step check of Algorithm 2's `receive`.
#[test]
fn algorithm2_receive_matches_pseudocode_exhaustively() {
    let g = classic::path(2);
    let lmax = 4;
    let algo = Algorithm2::new(&g, LmaxPolicy::fixed(2, lmax));
    let mut rng = node_rng(0, 0);
    for level in 0..=lmax {
        for s1 in [false, true] {
            for s2 in [false, true] {
                for h1 in [false, true] {
                    for h2 in [false, true] {
                        let mut l = level;
                        algo.receive(
                            0,
                            &mut l,
                            BeepSignal::new(s1, s2),
                            BeepSignal::new(h1, h2),
                            &mut rng,
                        );
                        let expected = if h2 {
                            lmax
                        } else if h1 {
                            (level + 1).min(lmax)
                        } else if s1 {
                            0
                        } else if !s2 {
                            (level - 1).max(1)
                        } else {
                            level
                        };
                        assert_eq!(l, expected, "ℓ={level} s1={s1} s2={s2} h1={h1} h2={h2}");
                    }
                }
            }
        }
    }
}

/// On an isolated vertex, Algorithm 1 deterministically decays from ℓmax
/// to 1, then joins the MIS on its first (certain at ℓ ≤ 0 … but at ℓ = 1
/// it is a coin flip) lone beep, and never leaves.
#[test]
fn isolated_vertex_lifecycle() {
    let g = Graph::empty(1);
    let lmax = 5;
    let algo = Algorithm1::new(&g, LmaxPolicy::fixed(1, lmax));
    let mut sim = Simulator::new(&g, algo.clone(), vec![lmax], 7);
    // Decay phase: ℓmax → 1 takes ℓmax - 1 silent rounds, deterministically
    // (beep probability en route is < 1 but a beep just accelerates the
    // join; check levels stay in the corridor).
    let joined = sim.run_until(1_000, |s| s.states()[0] == -lmax).expect("joins");
    assert!(joined >= 1);
    // Fixpoint: beeps forever, stays at -ℓmax.
    for _ in 0..20 {
        let report = sim.step();
        assert_eq!(report.beeps_channel1, 1);
        assert_eq!(*sim.state(0), -lmax);
    }
    assert!(algo.is_stabilized(&g, sim.states()));
}

/// Two isolated vertices stabilize independently and both join.
#[test]
fn disconnected_components_stabilize_independently() {
    let g = Graph::empty(2);
    let algo = Algorithm1::new(&g, LmaxPolicy::fixed(2, 4));
    let mut sim = Simulator::new(&g, algo.clone(), vec![4, -4], 3);
    sim.run_until(10_000, |s| algo.is_stabilized(s.graph(), s.states())).expect("stabilizes");
    assert_eq!(algo.mis_members(&g, sim.states()), vec![true, true]);
}

/// A star's stable states: either the hub alone, or all leaves.
#[test]
fn star_stable_states_are_the_two_valid_patterns() {
    let g = classic::star(5);
    let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
    let lmax = algo.policy().max_lmax();
    // Hub-in-MIS pattern.
    let hub_in: Vec<Level> = std::iter::once(-lmax).chain(std::iter::repeat_n(lmax, 4)).collect();
    assert!(algo.is_stabilized(&g, &hub_in));
    assert_eq!(algo.mis_members(&g, &hub_in), vec![true, false, false, false, false]);
    // Leaves-in-MIS pattern.
    let leaves_in: Vec<Level> =
        std::iter::once(lmax).chain(std::iter::repeat_n(-lmax, 4)).collect();
    assert!(algo.is_stabilized(&g, &leaves_in));
    // Mixed invalid pattern: hub and one leaf claiming.
    let both: Vec<Level> = vec![-lmax, -lmax, lmax, lmax, lmax];
    assert!(!algo.is_stabilized(&g, &both));
}

/// The level trajectory of a silenced vertex next to a stable MIS member
/// never moves: it hears the member every round.
#[test]
fn silenced_neighbor_is_pinned_by_health_beeps() {
    let g = classic::path(2);
    let algo = Algorithm1::new(&g, LmaxPolicy::fixed(2, 6));
    let mut sim = Simulator::new(&g, algo.clone(), vec![-6, 6], 5);
    for round in 0..50 {
        sim.step();
        assert_eq!(sim.states(), &[-6, 6], "round {round}");
        // The MIS member beeped; the neighbor heard.
        assert!(sim.last_sent()[0].on_channel1());
        assert!(sim.last_heard()[1].on_channel1());
        assert!(!sim.last_heard()[0].on_channel1());
    }
}

/// Triangle: exactly one vertex ends in the MIS, whichever seed.
#[test]
fn triangle_elects_exactly_one() {
    let g = Graph::from_edges(3, [(0, 1), (1, 2), (0, 2)]).unwrap();
    let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
    for seed in 0..10 {
        let outcome = algo.run(&g, mis::RunConfig::new(seed)).expect("stabilizes");
        assert_eq!(outcome.mis.iter().filter(|&&m| m).count(), 1, "seed {seed}");
    }
}

/// Algorithm 2 on a triangle also elects exactly one, and the election is
/// visible on channel 2 forever after.
#[test]
fn triangle_two_channel_election_announces_forever() {
    let g = Graph::from_edges(3, [(0, 1), (1, 2), (0, 2)]).unwrap();
    let algo = Algorithm2::new(&g, LmaxPolicy::two_hop_degree(&g));
    let outcome = algo.run(&g, mis::RunConfig::new(4)).expect("stabilizes");
    let mut sim = Simulator::new(&g, algo.clone(), outcome.levels.clone(), 99);
    for _ in 0..20 {
        let report = sim.step();
        assert_eq!(report.beeps_channel2, 1, "the member announces every round");
        assert_eq!(report.beeps_channel1, 0, "everyone else is silent");
    }
}

/// Complete bipartite graphs stabilize to one full side.
#[test]
fn complete_bipartite_stabilizes_to_one_side() {
    let g = classic::complete_bipartite(4, 6);
    let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
    for seed in 0..5 {
        let outcome = algo.run(&g, mis::RunConfig::new(seed)).expect("stabilizes");
        let left = outcome.mis[..4].iter().filter(|&&m| m).count();
        let right = outcome.mis[4..].iter().filter(|&&m| m).count();
        assert!(
            (left == 4 && right == 0) || (left == 0 && right == 6),
            "seed {seed}: {left}/{right}"
        );
    }
}

/// The minimal admissible ℓmax = 2 still stabilizes (slowly) on tiny
/// sparse graphs — and the policy floor rejects the deadlocking ℓmax = 1.
#[test]
fn minimal_lmax_two_still_works_on_paths() {
    let g = classic::path(6);
    let algo = Algorithm1::new(&g, LmaxPolicy::fixed(6, 2));
    for seed in 0..3 {
        let outcome =
            algo.run(&g, mis::RunConfig::new(seed).with_max_rounds(5_000_000)).expect("stabilizes");
        assert!(graphs::mis::is_maximal_independent_set(&g, &outcome.mis));
    }
}
