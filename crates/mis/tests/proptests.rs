//! Property-based tests of the MIS crate's invariants: level arithmetic,
//! policies, observer definitions, and the update rules' state machine.

use graphs::{Graph, GraphBuilder};
use mis::levels::{
    beep_probability, clamp_level, clamp_level_two_channel, log2_ceil, update_level,
    update_level_two_channel, Level,
};
use mis::observer::{stable_mis, Snapshot};
use mis::policy::LmaxPolicy;
use mis::recovery::{claimed_mis, independence_violations, stabilized_active};
use mis::{Algorithm1, Algorithm2};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (1usize..24).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..60).prop_map(move |pairs| {
            let mut b = GraphBuilder::new(n);
            for (u, v) in pairs {
                if u != v {
                    b.add_edge(u, v).unwrap();
                }
            }
            b.build()
        })
    })
}

proptest! {
    #[test]
    fn log2_ceil_is_correct(x in 1usize..1_000_000) {
        let k = log2_ceil(x);
        prop_assert!(1usize << k >= x);
        if k > 0 {
            prop_assert!(1usize << (k - 1) < x);
        }
    }

    #[test]
    fn beep_probability_in_unit_interval(lmax in 1i32..64, offset in 0i32..128) {
        let level = (-lmax + offset % (2 * lmax + 1)).clamp(-lmax, lmax);
        let p = beep_probability(level, lmax);
        prop_assert!((0.0..=1.0).contains(&p));
        // The three regions of Figure 1.
        if level <= 0 {
            prop_assert_eq!(p, 1.0);
        } else if level == lmax {
            prop_assert_eq!(p, 0.0);
        } else {
            prop_assert_eq!(p, 2f64.powi(-level));
        }
    }

    /// Update rule closure: from any in-range level, any observation leads
    /// to an in-range level, and the rule matches the pseudocode cases.
    #[test]
    fn update_rule_cases(lmax in 1i32..40, level in -40i32..40, beeped in any::<bool>(), heard in any::<bool>()) {
        let level = level.clamp(-lmax, lmax);
        let next = update_level(level, lmax, beeped, heard);
        prop_assert!((-lmax..=lmax).contains(&next));
        if heard {
            prop_assert_eq!(next, (level + 1).min(lmax));
        } else if beeped {
            prop_assert_eq!(next, -lmax);
        } else {
            prop_assert_eq!(next, (level - 1).max(1));
        }
    }

    /// Two-channel update closure over {0..ℓmax}.
    #[test]
    fn two_channel_update_closure(
        lmax in 1i32..40,
        level in 0i32..40,
        s1 in any::<bool>(),
        s2 in any::<bool>(),
        h1 in any::<bool>(),
        h2 in any::<bool>(),
    ) {
        let level = level.min(lmax);
        let next = update_level_two_channel(level, lmax, s1, s2, h1, h2);
        prop_assert!((0..=lmax).contains(&next));
        if h2 {
            prop_assert_eq!(next, lmax);
        }
    }

    #[test]
    fn clamping_is_idempotent(raw in any::<i64>(), lmax in 1i32..60) {
        let once = clamp_level(raw, lmax);
        prop_assert_eq!(clamp_level(once as i64, lmax), once);
        prop_assert!((-lmax..=lmax).contains(&once));
        let once2 = clamp_level_two_channel(raw, lmax);
        prop_assert!((0..=lmax).contains(&once2));
    }

    /// Policies satisfy their theorem preconditions on arbitrary graphs.
    #[test]
    fn policies_satisfy_preconditions(g in arb_graph()) {
        let global = LmaxPolicy::global_delta(&g);
        let own = LmaxPolicy::own_degree(&g);
        let two_hop = LmaxPolicy::two_hop_degree(&g);
        for v in g.nodes() {
            // Thm 2.1: ℓmax ≥ log Δ + 15 ≥ log deg(v) + 15.
            prop_assert!(global.lmax(v) as f64 >= (g.degree(v).max(1) as f64).log2() + 15.0 - 1e-9);
            // Thm 2.2: ℓmax(v) ≥ 2 log deg(v) + 30.
            prop_assert!(own.lmax(v) as f64 >= 2.0 * (g.degree(v).max(1) as f64).log2() + 30.0 - 1e-9);
            // Cor 2.3: ℓmax(v) ≥ 2 log deg₂(v) + 15.
            prop_assert!(
                two_hop.lmax(v) as f64 >= 2.0 * (g.deg2(v).max(1) as f64).log2() + 15.0 - 1e-9
            );
            // Lemma 3.5/3.6 precondition: ℓmax(w) ≥ log deg(w) + 4.
            for p in [&global, &own, &two_hop] {
                prop_assert!(p.lmax(v) as f64 >= (g.degree(v).max(1) as f64).log2() + 4.0 - 1e-9);
            }
        }
        // Global policy is uniform.
        prop_assert!(global.lmax_values().iter().all(|&l| l == global.max_lmax()));
    }

    /// Observer definitions are mutually consistent on arbitrary snapshots.
    #[test]
    fn observer_consistency(g in arb_graph(), raw in proptest::collection::vec(-50i64..50, 24)) {
        let policy = LmaxPolicy::own_degree(&g);
        let lmax = policy.lmax_values().to_vec();
        let levels: Vec<Level> = g
            .nodes()
            .map(|v| clamp_level(raw[v], lmax[v]))
            .collect();
        let snap = Snapshot::new(&g, &lmax, &levels);
        let mis = stable_mis(&g, &lmax, &levels);
        for v in g.nodes() {
            // MIS membership matches the formal definition via μ.
            let in_mis_def = levels[v] == -lmax[v] && snap.mu(v) == 1.0;
            prop_assert_eq!(mis[v], in_mis_def, "vertex {}", v);
            prop_assert_eq!(snap.in_mis(v), mis[v]);
            // Stable = in MIS or neighbor in MIS.
            let stable_def = mis[v] || g.neighbors(v).iter().any(|&u| mis[u as usize]);
            prop_assert_eq!(snap.is_stable(v), stable_def);
            // Prominence matches ℓ ≤ 0.
            prop_assert_eq!(snap.is_prominent(v), levels[v] <= 0);
            // d is the sum of neighbor probabilities.
            let d: f64 = g
                .neighbors(v)
                .iter()
                .map(|&u| beep_probability(levels[u as usize], lmax[u as usize]))
                .sum();
            prop_assert!((snap.d(v) - d).abs() < 1e-12);
            // d_light ≤ d; η and η′ are non-negative and bounded.
            prop_assert!(snap.d_light(v) <= snap.d(v) + 1e-12);
            prop_assert!(snap.eta(v) >= 0.0);
            prop_assert!(snap.eta_prime(v) >= 0.0);
            prop_assert!(snap.eta(v) <= g.degree(v) as f64);
            // μ ∈ [-1, 1].
            prop_assert!((-1.0..=1.0).contains(&snap.mu(v)));
        }
        // The stable MIS is always independent (never dominating-violating
        // *as a set*: independence is structural).
        let independent = g
            .edges()
            .all(|(u, v)| !(mis[u] && mis[v]));
        prop_assert!(independent);
    }

    /// The recovery observer never reports a stable MIS while an
    /// MIS-validity violation is live: for *any* graph, level assignment
    /// and participation mask, `stabilized_active` and a positive
    /// `independence_violations` count are mutually exclusive, and the
    /// claimed MIS is independent on the active subgraph.
    #[test]
    fn no_stable_mis_while_violation_live(
        g in arb_graph(),
        raw in proptest::collection::vec(-50i64..50, 24),
        active_bits in proptest::collection::vec(any::<bool>(), 24),
    ) {
        let active: Vec<bool> = (0..g.len()).map(|v| active_bits[v]).collect();
        let policy = LmaxPolicy::own_degree(&g);
        let algo1 = Algorithm1::new(&g, policy.clone());
        let levels1: Vec<Level> =
            g.nodes().map(|v| clamp_level(raw[v], policy.lmax(v))).collect();
        let algo2 = Algorithm2::new(&g, policy.clone());
        let levels2: Vec<Level> =
            g.nodes().map(|v| clamp_level_two_channel(raw[v], policy.lmax(v))).collect();

        let violations1 = independence_violations(&algo1, &g, &levels1, &active);
        if stabilized_active(&algo1, &g, &levels1, &active) {
            prop_assert_eq!(violations1, 0, "stable MIS reported with live violation");
        }
        let violations2 = independence_violations(&algo2, &g, &levels2, &active);
        if stabilized_active(&algo2, &g, &levels2, &active) {
            prop_assert_eq!(violations2, 0, "stable MIS reported with live violation");
        }

        // The claimed set itself is always independent over active nodes.
        let mis1 = claimed_mis(&algo1, &g, &levels1, &active);
        let mis2 = claimed_mis(&algo2, &g, &levels2, &active);
        for (u, v) in g.edges() {
            prop_assert!(!(mis1[u] && mis1[v]));
            prop_assert!(!(mis2[u] && mis2[v]));
        }
        // Inactive nodes are never claimed members.
        for v in g.nodes() {
            if !active[v] {
                prop_assert!(!mis1[v] && !mis2[v]);
            }
        }
    }

    /// Two-channel stability is consistent with its definition.
    #[test]
    fn two_channel_observer_consistency(g in arb_graph(), raw in proptest::collection::vec(0i64..50, 24)) {
        let policy = LmaxPolicy::two_hop_degree(&g);
        let lmax = policy.lmax_values().to_vec();
        let levels: Vec<Level> = g
            .nodes()
            .map(|v| clamp_level_two_channel(raw[v], lmax[v]))
            .collect();
        let snap = Snapshot::new_two_channel(&g, &lmax, &levels);
        for v in g.nodes() {
            let in_mis_def = levels[v] == 0
                && g.neighbors(v).iter().all(|&u| levels[u as usize] == lmax[u as usize]);
            prop_assert_eq!(snap.in_mis(v), in_mis_def);
        }
    }
}
