//! Level arithmetic shared by both algorithms: the beep-probability
//! activation function of Figure 1 and the level update rules of the
//! pseudocode.

/// A node level. Algorithm 1 uses `ℓ ∈ {-ℓmax, …, ℓmax}`; Algorithm 2 uses
/// `ℓ ∈ {0, …, ℓmax}`.
pub type Level = i32;

/// Ceiling of `log₂(x)` for `x ≥ 1`; by convention 0 for `x ∈ {0, 1}`.
///
/// The paper's `ℓmax` formulas use `log deg` / `log Δ`; we instantiate the
/// logarithm as `⌈log₂⌉`, which satisfies every "≥ log(·) + c" requirement.
///
/// # Example
///
/// ```
/// use mis::levels::log2_ceil;
/// assert_eq!(log2_ceil(0), 0);
/// assert_eq!(log2_ceil(1), 0);
/// assert_eq!(log2_ceil(2), 1);
/// assert_eq!(log2_ceil(3), 2);
/// assert_eq!(log2_ceil(8), 3);
/// assert_eq!(log2_ceil(9), 4);
/// ```
pub fn log2_ceil(x: usize) -> u32 {
    if x <= 1 {
        0
    } else {
        usize::BITS - (x - 1).leading_zeros()
    }
}

/// The beeping probability `p_t(v)` implied by level `ℓ` (paper §3 and
/// Figure 1):
///
/// ```text
/// p = 1        if ℓ ≤ 0
/// p = 2^(-ℓ)   if 0 < ℓ < ℓmax
/// p = 0        if ℓ = ℓmax
/// ```
///
/// # Panics
///
/// Panics if `ℓ > ℓmax` or `ℓ < -ℓmax` (levels outside the state space are a
/// programming error; transient faults must corrupt *within* the state
/// space, as in the paper's fault model where RAM holds a value of the state
/// type).
pub fn beep_probability(level: Level, lmax: Level) -> f64 {
    assert!((-lmax..=lmax).contains(&level), "level {level} outside state space [-{lmax}, {lmax}]");
    if level <= 0 {
        1.0
    } else if level == lmax {
        0.0
    } else {
        2f64.powi(-level)
    }
}

/// Algorithm 2's *channel-1* beeping probability: `2^(-ℓ)` in the geometric
/// region `0 < ℓ < ℓmax`, and `0` at both boundaries (an MIS node at `ℓ = 0`
/// beeps on channel 2 instead; a node at `ℓmax` is silent).
///
/// # Panics
///
/// Panics if `ℓ` is outside Algorithm 2's state space `{0, …, ℓmax}`.
pub fn beep1_probability(level: Level, lmax: Level) -> f64 {
    assert!((0..=lmax).contains(&level), "level {level} outside state space [0, {lmax}]");
    if level > 0 && level < lmax {
        2f64.powi(-level)
    } else {
        0.0
    }
}

/// The *claiming* level of Algorithm 1's state space: `-ℓmax`, the level a
/// node jumps to after a lone beep and holds while it believes it is in the
/// MIS. Centralized here so protocol code never negates `ℓmax` directly.
pub fn claiming_level(lmax: Level) -> Level {
    -lmax
}

/// Inclusive bounds of the level state space as `i64`, for sampling
/// arbitrary RAM contents: `[-ℓmax, ℓmax]` when the space is signed
/// (Algorithm 1), `[0, ℓmax]` otherwise (Algorithm 2). Centralized here so
/// sampling code never widens or negates `ℓmax` directly.
pub fn state_space_bounds(lmax: Level, signed: bool) -> (i64, i64) {
    let hi = i64::from(lmax);
    (if signed { -hi } else { 0 }, hi)
}

/// Algorithm 1's level update (paper Algorithm 1, second half of the round):
///
/// ```text
/// if any signal received:  ℓ ← min(ℓ + 1, ℓmax)
/// else if beeped:          ℓ ← -ℓmax
/// else:                    ℓ ← max(ℓ - 1, 1)
/// ```
pub fn update_level(level: Level, lmax: Level, beeped: bool, heard: bool) -> Level {
    if heard {
        (level + 1).min(lmax)
    } else if beeped {
        -lmax
    } else {
        (level - 1).max(1)
    }
}

/// Algorithm 2's level update (paper Algorithm 2):
///
/// ```text
/// if beep2 signal received:      ℓ ← ℓmax
/// else if beep1 signal received: ℓ ← min(ℓ + 1, ℓmax)
/// else if beeped on channel 1:   ℓ ← 0
/// else if not beeping channel 2: ℓ ← max(ℓ - 1, 1)
/// ```
///
/// (A node beeping on channel 2 that hears nothing keeps `ℓ = 0`.)
pub fn update_level_two_channel(
    level: Level,
    lmax: Level,
    sent_beep1: bool,
    sent_beep2: bool,
    heard_beep1: bool,
    heard_beep2: bool,
) -> Level {
    if heard_beep2 {
        lmax
    } else if heard_beep1 {
        (level + 1).min(lmax)
    } else if sent_beep1 {
        0
    } else if !sent_beep2 {
        (level - 1).max(1)
    } else {
        level
    }
}

/// Clamps an arbitrary (possibly corrupted) integer into Algorithm 1's state
/// space `{-ℓmax, …, ℓmax}` — what a node's RAM can physically hold.
pub fn clamp_level(raw: i64, lmax: Level) -> Level {
    raw.clamp(-(lmax as i64), lmax as i64) as Level
}

/// Clamps into Algorithm 2's state space `{0, …, ℓmax}`.
pub fn clamp_level_two_channel(raw: i64, lmax: Level) -> Level {
    raw.clamp(0, lmax as i64) as Level
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_ceil_powers() {
        for k in 0..20u32 {
            assert_eq!(log2_ceil(1 << k), k);
            if k > 0 {
                assert_eq!(log2_ceil((1 << k) + 1), k + 1);
            }
        }
    }

    #[test]
    fn probability_regions() {
        let lmax = 10;
        // Prominent region: p = 1 for every ℓ ≤ 0.
        for l in -lmax..=0 {
            assert_eq!(beep_probability(l, lmax), 1.0);
        }
        // Geometric region.
        assert_eq!(beep_probability(1, lmax), 0.5);
        assert_eq!(beep_probability(2, lmax), 0.25);
        assert_eq!(beep_probability(9, lmax), 2f64.powi(-9));
        // Silent at the cap.
        assert_eq!(beep_probability(lmax, lmax), 0.0);
    }

    #[test]
    fn probability_is_monotone_decreasing() {
        let lmax = 20;
        let mut prev = f64::INFINITY;
        for l in -lmax..=lmax {
            let p = beep_probability(l, lmax);
            assert!(p <= prev);
            prev = p;
        }
    }

    #[test]
    #[should_panic(expected = "outside state space")]
    fn probability_rejects_out_of_range() {
        beep_probability(11, 10);
    }

    #[test]
    fn update_rules_match_pseudocode() {
        let lmax = 5;
        // Heard → increment, capped.
        assert_eq!(update_level(2, lmax, false, true), 3);
        assert_eq!(update_level(5, lmax, true, true), 5);
        assert_eq!(update_level(-5, lmax, true, true), -4);
        // Lone beep → jump to -ℓmax.
        assert_eq!(update_level(1, lmax, true, false), -5);
        assert_eq!(update_level(-5, lmax, true, false), -5);
        // Silence all around → decay toward 1, never below.
        assert_eq!(update_level(4, lmax, false, false), 3);
        assert_eq!(update_level(1, lmax, false, false), 1);
        assert_eq!(update_level(5, lmax, false, false), 4);
    }

    #[test]
    fn update_stays_in_state_space() {
        let lmax = 7;
        for l in -lmax..=lmax {
            for beeped in [false, true] {
                for heard in [false, true] {
                    let next = update_level(l, lmax, beeped, heard);
                    assert!((-lmax..=lmax).contains(&next), "ℓ={l} b={beeped} h={heard}");
                }
            }
        }
    }

    #[test]
    fn two_channel_update_rules() {
        let lmax = 6;
        // beep2 received dominates: go to ℓmax (become non-MIS).
        assert_eq!(update_level_two_channel(3, lmax, true, false, true, true), lmax);
        // beep1 received: increment.
        assert_eq!(update_level_two_channel(3, lmax, false, false, true, false), 4);
        assert_eq!(update_level_two_channel(lmax, lmax, false, false, true, false), lmax);
        // Lone beep1: join the MIS (ℓ = 0).
        assert_eq!(update_level_two_channel(3, lmax, true, false, false, false), 0);
        // Silent non-MIS node: decay toward 1.
        assert_eq!(update_level_two_channel(4, lmax, false, false, false, false), 3);
        assert_eq!(update_level_two_channel(1, lmax, false, false, false, false), 1);
        // MIS node (beeping channel 2) hearing nothing keeps ℓ = 0.
        assert_eq!(update_level_two_channel(0, lmax, false, true, false, false), 0);
    }

    #[test]
    fn two_channel_update_stays_in_state_space() {
        let lmax = 5;
        for l in 0..=lmax {
            for s1 in [false, true] {
                for s2 in [false, true] {
                    for h1 in [false, true] {
                        for h2 in [false, true] {
                            let next = update_level_two_channel(l, lmax, s1, s2, h1, h2);
                            assert!((0..=lmax).contains(&next));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn beep1_probability_regions() {
        let lmax = 8;
        // Silent at both boundaries: ℓ = 0 beeps on channel 2, ℓmax not at all.
        assert_eq!(beep1_probability(0, lmax), 0.0);
        assert_eq!(beep1_probability(lmax, lmax), 0.0);
        // Geometric in between.
        assert_eq!(beep1_probability(1, lmax), 0.5);
        assert_eq!(beep1_probability(7, lmax), 2f64.powi(-7));
    }

    #[test]
    #[should_panic(expected = "outside state space")]
    fn beep1_probability_rejects_negative() {
        beep1_probability(-1, 8);
    }

    #[test]
    fn claiming_and_bounds() {
        assert_eq!(claiming_level(7), -7);
        assert_eq!(state_space_bounds(7, true), (-7, 7));
        assert_eq!(state_space_bounds(7, false), (0, 7));
        // The bounds agree with the clamps.
        assert_eq!(clamp_level(i64::MIN, 7), claiming_level(7));
        assert_eq!(clamp_level_two_channel(i64::MIN, 7), 0);
    }

    #[test]
    fn clamping() {
        assert_eq!(clamp_level(100, 7), 7);
        assert_eq!(clamp_level(-100, 7), -7);
        assert_eq!(clamp_level(3, 7), 3);
        assert_eq!(clamp_level_two_channel(-5, 7), 0);
        assert_eq!(clamp_level_two_channel(100, 7), 7);
        assert_eq!(clamp_level_two_channel(4, 7), 4);
    }
}
