//! Joint worst-case search over the *dynamic-topology* scenario space.
//!
//! [`crate::adversary`] hill-climbs over Byzantine placement and initial
//! levels on a **static** graph. This module generalizes that search to the
//! moving deployments of [`beeping::dynamic`]: a scenario is a point in
//!
//! 1. **motion speed** — an index into a caller-supplied grid of
//!    random-waypoint speeds,
//! 2. **churn rate** — an index into a grid of leave/rejoin periods (a
//!    smaller period churns more often), and
//! 3. **Byzantine placement** — where the permanently deviating nodes sit
//!    in the initial deployment,
//!
//! scored by the first round at which the configuration is a valid MIS *on
//! the current graph* outside a fixed containment radius around the
//! adversary ([`crate::containment::stabilized_except`], recomputed against
//! the moved topology), after the last scheduled churn event. Higher is
//! worse for the protocol; budget exhaustion scores `max_rounds + 1`.
//!
//! The search is the same fixed-budget, strict-improvement local search as
//! the static one, under a dedicated [`SCEN_RNG_PURPOSE`] stream: the same
//! seed, grids and budget always select the same [`WorstScenario`]. The
//! `SCEN` experiment serializes the result as `results/SCEN-certificate.json`
//! and anyone can replay the certified scenario with [`evaluate_scenario`]
//! to reproduce the certified score exactly.

use beeping::byzantine::ByzantinePlan;
use beeping::churn::{ChurnAction, ChurnPlan};
use beeping::dynamic::MotionSpec;
use beeping::rng::aux_rng;
use graphs::motion::MotionModel;
use graphs::{Graph, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::adversary::SearchBehavior;
use crate::containment::{byz_distances, stabilized_except};
use crate::resumable::{ResumableConfig, ResumableRun, RunStatus};
use crate::runner::SelfStabilizingMis;

/// Purpose tag separating the scenario-search RNG stream from the node,
/// channel, fault, Byzantine, motion and static-adversary streams.
pub const SCEN_RNG_PURPOSE: u64 = 0x5CE7_A210;

/// Budget and shape of a [`worst_scenario_search`].
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Master seed: drives the search RNG *and* every candidate evaluation
    /// (all candidates are scored under the same simulation seed, so score
    /// differences come from the scenario's choices alone).
    pub seed: u64,
    /// Number of nodes in the deployment.
    pub n: usize,
    /// Seed of the initial uniform deployment (see
    /// [`MotionSpec::initial_graph`]); fixed across the whole search so
    /// every scenario starts from the same graph.
    pub points_seed: u64,
    /// Communication radius of the deployment.
    pub comm_radius: f64,
    /// Random-waypoint pause (rounds spent at a reached waypoint).
    pub pause: u64,
    /// Number of Byzantine nodes to place (`0` searches motion × churn
    /// only, scored by plain stabilization).
    pub byz_count: usize,
    /// Behavior assigned to every placed node.
    pub behavior: SearchBehavior,
    /// Hill-climbing iterations (candidate evaluations beyond the initial
    /// one).
    pub iterations: usize,
    /// Round budget per candidate evaluation.
    pub max_rounds: u64,
    /// Leave/rejoin pairs the churn schedule executes.
    pub churn_events: usize,
    /// Containment radius the score quantifies over (nodes within this hop
    /// distance of a Byzantine site are exempt, distances recomputed on the
    /// moved graph each round).
    pub containment_radius: usize,
    /// Candidate motion speeds (the search moves along this grid).
    pub speeds: Vec<f64>,
    /// Candidate churn periods in rounds (the search moves along this
    /// grid). Every entry must satisfy
    /// `2 * churn_events * period < max_rounds`, so the whole schedule —
    /// and therefore the score — fits inside the budget.
    pub churn_periods: Vec<u64>,
}

impl ScenarioConfig {
    /// Defaults: one stuck beeper, 24 iterations, 3,000-round budget, two
    /// leave/rejoin pairs, radius-2 exemption, a three-point speed grid and
    /// a three-point churn-period grid.
    pub fn new(seed: u64, n: usize, points_seed: u64, comm_radius: f64) -> ScenarioConfig {
        ScenarioConfig {
            seed,
            n,
            points_seed,
            comm_radius,
            pause: 2,
            byz_count: 1,
            behavior: SearchBehavior::StuckBeep,
            iterations: 24,
            max_rounds: 3_000,
            churn_events: 2,
            containment_radius: 2,
            speeds: vec![0.0, 0.01, 0.05],
            churn_periods: vec![25, 50, 100],
        }
    }

    /// Sets the number of Byzantine nodes.
    pub fn with_byz_count(mut self, byz_count: usize) -> ScenarioConfig {
        self.byz_count = byz_count;
        self
    }

    /// Sets the behavior assigned to every placed node.
    pub fn with_behavior(mut self, behavior: SearchBehavior) -> ScenarioConfig {
        self.behavior = behavior;
        self
    }

    /// Sets the iteration budget.
    pub fn with_iterations(mut self, iterations: usize) -> ScenarioConfig {
        self.iterations = iterations;
        self
    }

    /// Sets the per-candidate round budget.
    pub fn with_max_rounds(mut self, max_rounds: u64) -> ScenarioConfig {
        self.max_rounds = max_rounds;
        self
    }

    /// Sets the number of leave/rejoin pairs.
    pub fn with_churn_events(mut self, churn_events: usize) -> ScenarioConfig {
        self.churn_events = churn_events;
        self
    }

    /// Sets the containment radius.
    pub fn with_containment_radius(mut self, containment_radius: usize) -> ScenarioConfig {
        self.containment_radius = containment_radius;
        self
    }

    /// Sets the motion-speed grid.
    pub fn with_speeds(mut self, speeds: Vec<f64>) -> ScenarioConfig {
        self.speeds = speeds;
        self
    }

    /// Sets the churn-period grid.
    pub fn with_churn_periods(mut self, churn_periods: Vec<u64>) -> ScenarioConfig {
        self.churn_periods = churn_periods;
        self
    }

    /// The initial deployment every scenario of this search starts from.
    /// Callers construct their algorithm instance against this graph.
    pub fn initial_graph(&self) -> Graph {
        self.motion_spec(0.0).initial_graph(self.n)
    }

    /// The motion spec of a scenario with the given speed.
    pub fn motion_spec(&self, speed: f64) -> MotionSpec {
        MotionSpec::new(
            self.points_seed,
            self.comm_radius,
            MotionModel::RandomWaypoint { speed, pause: self.pause },
        )
    }

    fn validate(&self) {
        assert!(self.n >= 2, "scenario search needs at least two nodes");
        assert!(!self.speeds.is_empty(), "scenario search needs a non-empty speed grid");
        assert!(!self.churn_periods.is_empty(), "scenario search needs a non-empty period grid");
        assert!(
            self.byz_count < self.n,
            "cannot place {} byzantine nodes on {} vertices and still churn",
            self.byz_count,
            self.n
        );
        for &p in &self.churn_periods {
            assert!(p >= 1, "churn periods must be at least one round");
            assert!(
                2 * self.churn_events as u64 * p < self.max_rounds,
                "churn schedule (2*{} events x period {p}) must fit the {}-round budget",
                self.churn_events,
                self.max_rounds
            );
        }
    }
}

/// One point of the scenario space: concrete grid indices plus a placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// Index into [`ScenarioConfig::speeds`].
    pub speed_idx: usize,
    /// Index into [`ScenarioConfig::churn_periods`].
    pub period_idx: usize,
    /// Byzantine placement in the initial deployment (sorted,
    /// deduplicated; empty when `byz_count == 0`).
    pub placement: Vec<NodeId>,
}

/// What one scenario evaluation observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioScore {
    /// First round (after the last scheduled churn event) at which the
    /// configuration was a valid MIS on the current graph outside the
    /// containment radius, or `max_rounds + 1` if the budget ran out first.
    pub score: u64,
    /// Whether that round was reached within the budget.
    pub stabilized: bool,
}

/// The strongest dynamic-topology adversary found by
/// [`worst_scenario_search`].
#[derive(Debug, Clone)]
pub struct WorstScenario {
    /// The scenario itself (replayable via [`evaluate_scenario`]).
    pub scenario: Scenario,
    /// The motion speed `scenario.speed_idx` selects.
    pub speed: f64,
    /// The churn period `scenario.period_idx` selects.
    pub churn_period: u64,
    /// The score of the worst scenario (see [`ScenarioScore::score`]).
    pub score: u64,
    /// `true` if even the worst scenario found eventually stabilized.
    pub stabilized: bool,
    /// Candidate evaluations performed (initial + iterations).
    pub evaluations: usize,
    /// Accepted strict improvements during the climb.
    pub improvements: usize,
}

/// The deterministic churn schedule of a scenario: `churn_events`
/// leave/rejoin pairs at multiples of the selected period, victims cycling
/// round-robin through the non-Byzantine nodes (pair `k` leaves at
/// `(2k+1) * period` and rejoins at `(2k+2) * period` with no explicit
/// edges — the motion layer restores its radius edges at the same
/// boundary). Pure function of config and scenario, so a certificate
/// replay rebuilds the identical plan.
pub fn churn_plan_for(config: &ScenarioConfig, scenario: &Scenario) -> ChurnPlan {
    let period = config.churn_periods[scenario.period_idx];
    let eligible: Vec<NodeId> = (0..config.n).filter(|v| !scenario.placement.contains(v)).collect();
    let mut plan = ChurnPlan::new();
    for k in 0..config.churn_events as u64 {
        let victim = eligible[(k as usize) % eligible.len()];
        plan = plan
            .with_event((2 * k + 1) * period, ChurnAction::NodeLeave(victim))
            .with_event((2 * k + 2) * period, ChurnAction::NodeJoin(victim, vec![]));
    }
    plan
}

/// Scores one scenario: runs the moving deployment with its churn schedule
/// and Byzantine plan under `config.seed`, checking after every round —
/// once the last churn event has applied — whether every active node
/// outside `containment_radius` hops of the adversary (distances on the
/// *current* graph) is stable. Deterministic: same inputs, same score.
///
/// # Panics
///
/// Panics if `graph` is not the deployment of
/// [`ScenarioConfig::initial_graph`], if a grid index is out of range, or
/// if the placement/behavior is invalid for the protocol.
pub fn evaluate_scenario<A: SelfStabilizingMis>(
    graph: &Graph,
    algo: &A,
    config: &ScenarioConfig,
    scenario: &Scenario,
) -> ScenarioScore {
    let speed = config.speeds[scenario.speed_idx];
    let period = config.churn_periods[scenario.period_idx];
    let mut byz = ByzantinePlan::new();
    for &v in &scenario.placement {
        byz.set_behavior(v, config.behavior.to_behavior());
    }
    let run_config = ResumableConfig::new(config.seed)
        .with_max_rounds(config.max_rounds)
        .with_motion(config.motion_spec(speed))
        .with_churn(churn_plan_for(config, scenario))
        .with_byzantine(byz);
    let last_event = 2 * config.churn_events as u64 * period;
    let mut run = ResumableRun::new(graph, algo, run_config)
        .expect("scenario plans are valid by construction");
    loop {
        let status = run.tick();
        let r = run.round();
        if r >= last_event {
            let current = run.graph();
            let dist = byz_distances(current, &scenario.placement);
            if stabilized_except(
                algo,
                current,
                run.levels(),
                run.active(),
                &dist,
                config.containment_radius,
            ) {
                return ScenarioScore { score: r, stabilized: true };
            }
        }
        if status != RunStatus::Running {
            return ScenarioScore { score: config.max_rounds + 1, stabilized: false };
        }
    }
}

/// Deterministic hill-climbing search for the motion speed, churn period
/// and Byzantine placement that jointly maximize the time to a certified
/// configuration.
///
/// Each iteration mutates one dimension of the incumbent uniformly at
/// random — the speed index, the period index, or (when there are
/// Byzantine nodes) one placement site — and keeps the mutant only on a
/// *strict* score improvement. Same graph, algorithm and config always
/// produce the same result.
///
/// # Panics
///
/// Panics if a grid is empty, the churn schedule overflows the budget,
/// `byz_count >= n`, or `graph` is not the config's initial deployment.
pub fn worst_scenario_search<A: SelfStabilizingMis>(
    graph: &Graph,
    algo: &A,
    config: &ScenarioConfig,
) -> WorstScenario {
    config.validate();
    let mut rng = aux_rng(config.seed, SCEN_RNG_PURPOSE);

    let mut pool: Vec<NodeId> = (0..config.n).collect();
    pool.shuffle(&mut rng);
    let mut placement: Vec<NodeId> = pool[..config.byz_count].to_vec();
    placement.sort_unstable();
    let mut best = Scenario {
        speed_idx: rng.gen_range(0..config.speeds.len()),
        period_idx: rng.gen_range(0..config.churn_periods.len()),
        placement,
    };
    let mut best_score = evaluate_scenario(graph, algo, config, &best);
    let mut improvements = 0;

    // Which dimensions can move at all: a one-point grid or an empty
    // placement is frozen, and mutating it would burn an iteration on a
    // guaranteed-equal candidate.
    let mut dims: Vec<u8> = Vec::new();
    if config.speeds.len() > 1 {
        dims.push(0);
    }
    if config.churn_periods.len() > 1 {
        dims.push(1);
    }
    if config.byz_count >= 1 && config.byz_count < config.n {
        dims.push(2);
    }

    for _ in 0..config.iterations {
        if dims.is_empty() {
            break;
        }
        let mut candidate = best.clone();
        match dims[rng.gen_range(0..dims.len())] {
            0 => {
                // Resample the speed index away from the incumbent.
                loop {
                    let idx = rng.gen_range(0..config.speeds.len());
                    if idx != candidate.speed_idx {
                        candidate.speed_idx = idx;
                        break;
                    }
                }
            }
            1 => loop {
                let idx = rng.gen_range(0..config.churn_periods.len());
                if idx != candidate.period_idx {
                    candidate.period_idx = idx;
                    break;
                }
            },
            _ => {
                // Relocate one Byzantine node to a random non-Byzantine
                // site (exactly the static search's placement move).
                let slot = rng.gen_range(0..candidate.placement.len());
                loop {
                    let target = rng.gen_range(0..config.n);
                    if !candidate.placement.contains(&target) {
                        candidate.placement[slot] = target;
                        break;
                    }
                }
                candidate.placement.sort_unstable();
            }
        }
        let score = evaluate_scenario(graph, algo, config, &candidate);
        if score.score > best_score.score {
            best = candidate;
            best_score = score;
            improvements += 1;
        }
    }

    WorstScenario {
        speed: config.speeds[best.speed_idx],
        churn_period: config.churn_periods[best.period_idx],
        scenario: best,
        score: best_score.score,
        stabilized: best_score.stabilized,
        evaluations: config.iterations + 1,
        improvements,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm1::Algorithm1;
    use crate::policy::LmaxPolicy;
    use graphs::generators::geometric::radius_for_expected_degree;

    fn small_config(seed: u64) -> ScenarioConfig {
        ScenarioConfig::new(seed, 20, 0xF00D, radius_for_expected_degree(20, 5.0))
            .with_iterations(4)
            .with_max_rounds(400)
            .with_churn_events(1)
            .with_speeds(vec![0.0, 0.02])
            .with_churn_periods(vec![15, 30])
    }

    #[test]
    fn search_is_deterministic_and_replayable() {
        let config = small_config(11);
        let g = config.initial_graph();
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let a = worst_scenario_search(&g, &algo, &config);
        let b = worst_scenario_search(&g, &algo, &config);
        assert_eq!(a.scenario, b.scenario);
        assert_eq!(a.score, b.score);
        assert_eq!(a.improvements, b.improvements);
        // The certificate contract: replaying the worst scenario
        // reproduces the certified score exactly.
        let replay = evaluate_scenario(&g, &algo, &config, &a.scenario);
        assert_eq!(replay.score, a.score);
        assert_eq!(replay.stabilized, a.stabilized);
    }

    #[test]
    fn zero_byzantine_searches_motion_and_churn_only() {
        // A generous budget: the search *maximizes* time-to-stabilization,
        // so the worst motion x churn combination needs the headroom.
        let config = small_config(3).with_byz_count(0).with_max_rounds(4_000);
        let g = config.initial_graph();
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let worst = worst_scenario_search(&g, &algo, &config);
        assert!(worst.scenario.placement.is_empty());
        // With no adversary the radius exemption is vacuous, so the score
        // is a plain time-to-valid-MIS on the moving graph.
        assert!(worst.stabilized, "score {}", worst.score);
        assert!(worst.score <= 4_000);
    }

    #[test]
    fn churn_plan_is_a_pure_function_of_the_scenario() {
        let config = small_config(5);
        let scenario = Scenario { speed_idx: 1, period_idx: 0, placement: vec![0] };
        let a = churn_plan_for(&config, &scenario);
        let b = churn_plan_for(&config, &scenario);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        // Victims avoid the placement, and the pair lands at (p, 2p).
        let rendered = format!("{a:?}");
        assert!(rendered.contains("15"), "{rendered}");
        assert!(rendered.contains("30"), "{rendered}");
    }

    #[test]
    #[should_panic(expected = "must fit")]
    fn overlong_churn_schedule_is_rejected() {
        let config = small_config(1).with_churn_periods(vec![500]);
        let g = config.initial_graph();
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        worst_scenario_search(&g, &algo, &config);
    }

    #[test]
    #[should_panic(expected = "non-empty speed grid")]
    fn empty_speed_grid_is_rejected() {
        let config = small_config(1).with_speeds(vec![]);
        let g = config.initial_graph();
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        worst_scenario_search(&g, &algo, &config);
    }

    #[test]
    fn higher_speed_grid_changes_outcomes() {
        // Sanity that the motion dimension actually reaches the simulator:
        // two configs differing only in their (single-point) speed grids
        // must evaluate the same scenario indices to different traces in
        // general. We assert on the weaker, deterministic property that
        // both evaluate successfully and produce in-budget or
        // budget-exhausted scores.
        let base = small_config(7).with_speeds(vec![0.0]).with_iterations(0);
        let fast = small_config(7).with_speeds(vec![0.08]).with_iterations(0);
        let g = base.initial_graph();
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let a = worst_scenario_search(&g, &algo, &base);
        let b = worst_scenario_search(&g, &algo, &fast);
        assert!(a.score <= 401 && b.score <= 401);
        assert_eq!(a.speed, 0.0);
        assert_eq!(b.speed, 0.08);
    }
}
