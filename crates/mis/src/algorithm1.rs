//! Algorithm 1 of the paper: the single-channel self-stabilizing MIS
//! algorithm.
//!
//! Pseudocode (paper, Algorithm 1), executed by every vertex `v` in every
//! round:
//!
//! ```text
//! state: ℓ ∈ {-ℓmax(v), …, ℓmax(v)}
//! if ℓ < ℓmax(v):  beep ← true with probability min(2^-ℓ, 1)
//! else:            beep ← false
//! if beep: send signal to all neighbors
//! receive any signals sent by neighbors
//! if any signal received:  ℓ ← min(ℓ + 1, ℓmax(v))
//! else if beep:            ℓ ← -ℓmax(v)
//! else:                    ℓ ← max(ℓ - 1, 1)
//! ```
//!
//! A vertex is stable **in the MIS** once `ℓ(v) = -ℓmax(v)` while every
//! neighbor `u` sits at `ℓ(u) = ℓmax(u)`; it then beeps forever and its
//! neighbors stay silenced — which is also how every vertex continuously
//! *signals* its status, making faults detectable (unlike the original
//! Jeavons–Scott–Xu algorithm, where stabilized vertices go silent).

use beeping::protocol::{BeepSignal, BeepingProtocol, Channels, SettledRound};
use graphs::{Graph, NodeId};
use rand::{Rng, RngCore};

use crate::invariant::{debug_assert_level_in_range, LevelSpace};
use crate::levels::{beep_probability, claiming_level, update_level, Level};
use crate::observer;
use crate::policy::LmaxPolicy;
use crate::runner::{self, Outcome, RunConfig, StabilizationError};

/// The single-channel self-stabilizing MIS protocol (paper Algorithm 1).
///
/// One value drives all nodes; per-node knowledge (`ℓmax`) lives inside the
/// embedded [`LmaxPolicy`].
///
/// # Example
///
/// ```
/// use graphs::generators::classic;
/// use mis::{Algorithm1, LmaxPolicy, RunConfig};
///
/// let g = classic::cycle(32);
/// let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
/// let outcome = algo.run(&g, RunConfig::new(1)).unwrap();
/// assert!(graphs::mis::is_maximal_independent_set(&g, &outcome.mis));
/// ```
#[derive(Debug, Clone)]
pub struct Algorithm1 {
    policy: LmaxPolicy,
}

impl Algorithm1 {
    /// Creates the protocol for `graph` under `policy`.
    ///
    /// # Panics
    ///
    /// Panics if the policy does not cover exactly `graph.len()` vertices.
    pub fn new(graph: &Graph, policy: LmaxPolicy) -> Algorithm1 {
        assert_eq!(policy.len(), graph.len(), "policy must assign ℓmax to every vertex");
        Algorithm1 { policy }
    }

    /// The knowledge policy in use.
    pub fn policy(&self) -> &LmaxPolicy {
        &self.policy
    }

    /// `ℓmax(v)`.
    pub fn lmax(&self, v: NodeId) -> Level {
        self.policy.lmax(v)
    }

    /// The set `I_t` for a level snapshot: vertices stable in the MIS
    /// (`ℓ(v) = -ℓmax(v)` and every neighbor at its `ℓmax`). See
    /// [`observer`] for the full analysis machinery.
    pub fn mis_members(&self, graph: &Graph, levels: &[Level]) -> Vec<bool> {
        observer::stable_mis(graph, self.policy.lmax_values(), levels)
    }

    /// `true` if every vertex is stable (`S_t = V`): the stabilization
    /// criterion of the experiments. Once this holds, the configuration is a
    /// fixpoint in the absence of faults.
    pub fn is_stabilized(&self, graph: &Graph, levels: &[Level]) -> bool {
        observer::is_stabilized(graph, self.policy.lmax_values(), levels)
    }

    /// Runs the algorithm to stabilization under `config` (see
    /// [`runner::RunConfig`] for initial-state, fault and budget options).
    ///
    /// # Errors
    ///
    /// Returns [`StabilizationError`] if the round budget is exhausted
    /// before `S_t = V`.
    pub fn run(&self, graph: &Graph, config: RunConfig) -> Result<Outcome, StabilizationError> {
        runner::run_algorithm1(graph, self, config)
    }
}

impl BeepingProtocol for Algorithm1 {
    type State = Level;

    fn channels(&self) -> Channels {
        Channels::One
    }

    fn transmit(&self, node: NodeId, state: &Level, rng: &mut dyn RngCore) -> BeepSignal {
        let lmax = self.policy.lmax(node);
        debug_assert_level_in_range(*state, lmax, LevelSpace::Signed);
        let p = beep_probability(*state, lmax);
        // Draw even when p is 0 or 1 would be avoidable, but gen_bool(0.0)
        // and gen_bool(1.0) are exact, and drawing unconditionally keeps the
        // per-node stream consumption identical across configurations.
        if p > 0.0 && rng.gen_bool(p) {
            BeepSignal::channel1()
        } else {
            BeepSignal::silent()
        }
    }

    fn receive(
        &self,
        node: NodeId,
        state: &mut Level,
        sent: BeepSignal,
        heard: BeepSignal,
        _rng: &mut dyn RngCore,
    ) {
        let lmax = self.policy.lmax(node);
        *state = update_level(*state, lmax, sent.on_channel1(), heard.on_channel1());
    }

    /// Algorithm 1's absorbing configurations, certified for the frontier
    /// engine (`EngineMode::Frontier`):
    ///
    /// - a stable MIS member (`ℓ = -ℓmax`, silent neighborhood) beeps with
    ///   probability 1 — one value-independent coin per round — and a lone
    ///   beep re-confirms `ℓ = -ℓmax`;
    /// - a silenced non-member (`ℓ = ℓmax > 0`, beeping neighborhood) never
    ///   draws (`p = 0`) and hearing keeps it pinned at `ℓmax`.
    ///
    /// Post-stabilization (`S_t = V`), every vertex is in one of the two,
    /// so fault-free rounds cost O(|frontier|) instead of O(m). The
    /// claiming arm is checked first: for `ℓmax = 0` the two levels
    /// coincide and the node beeps (`p(0) = 1`).
    fn settled_round(
        &self,
        node: NodeId,
        state: &Level,
        heard: BeepSignal,
    ) -> Option<SettledRound> {
        let lmax = self.policy.lmax(node);
        let heard1 = heard.on_channel1();
        if *state == claiming_level(lmax) && !heard1 {
            Some(SettledRound { signal: BeepSignal::channel1(), draws: 1 })
        } else if *state == lmax && lmax > 0 && heard1 {
            Some(SettledRound { signal: BeepSignal::silent(), draws: 0 })
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beeping::rng::node_rng;
    use beeping::Simulator;
    use graphs::generators::{classic, random};

    fn count_beeps(algo: &Algorithm1, node: NodeId, level: Level, trials: u32) -> u32 {
        let mut rng = node_rng(12345, node);
        (0..trials).filter(|_| !algo.transmit(node, &level, &mut rng).is_silent()).count() as u32
    }

    #[test]
    fn transmit_matches_activation_function() {
        let g = classic::cycle(4);
        let algo = Algorithm1::new(&g, LmaxPolicy::fixed(4, 8));
        // ℓ ≤ 0 → always beeps.
        assert_eq!(count_beeps(&algo, 0, 0, 100), 100);
        assert_eq!(count_beeps(&algo, 0, -8, 100), 100);
        // ℓ = ℓmax → never beeps.
        assert_eq!(count_beeps(&algo, 0, 8, 100), 0);
        // ℓ = 1 → about half.
        let half = count_beeps(&algo, 0, 1, 10_000);
        assert!((4_500..5_500).contains(&half), "got {half}");
        // ℓ = 3 → about 1/8.
        let eighth = count_beeps(&algo, 0, 3, 10_000);
        assert!((1_000..1_600).contains(&eighth), "got {eighth}");
    }

    #[test]
    fn receive_applies_update_rule() {
        let g = classic::cycle(4);
        let algo = Algorithm1::new(&g, LmaxPolicy::fixed(4, 5));
        let mut rng = node_rng(0, 0);
        let mut l = 2;
        algo.receive(0, &mut l, BeepSignal::silent(), BeepSignal::channel1(), &mut rng);
        assert_eq!(l, 3);
        algo.receive(0, &mut l, BeepSignal::channel1(), BeepSignal::silent(), &mut rng);
        assert_eq!(l, -5);
        let mut l = 3;
        algo.receive(0, &mut l, BeepSignal::silent(), BeepSignal::silent(), &mut rng);
        assert_eq!(l, 2);
    }

    #[test]
    fn stable_configuration_is_fixpoint() {
        // Path of 3: middle node in MIS, ends at ℓmax.
        let g = classic::path(3);
        let policy = LmaxPolicy::fixed(3, 6);
        let algo = Algorithm1::new(&g, policy);
        let levels = vec![6, -6, 6];
        assert!(algo.is_stabilized(&g, &levels));
        let mut sim = Simulator::new(&g, algo.clone(), levels.clone(), 3);
        sim.run(50);
        assert_eq!(sim.states(), levels.as_slice());
        assert_eq!(algo.mis_members(&g, sim.states()), vec![false, true, false]);
    }

    #[test]
    fn single_node_stabilizes_into_mis() {
        let g = graphs::Graph::empty(1);
        let algo = Algorithm1::new(&g, LmaxPolicy::fixed(1, 4));
        // Start at ℓmax (silent); decay then lone-beep must occur.
        let mut sim = Simulator::new(&g, algo.clone(), vec![4], 9);
        let r = sim.run_until(200, |s| algo.is_stabilized(s.graph(), s.states()));
        assert!(r.is_some());
        assert_eq!(algo.mis_members(&g, sim.states()), vec![true]);
    }

    #[test]
    fn converges_on_random_graph_from_all_initial_regimes() {
        let g = random::gnp(60, 0.1, 5);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let lmax = algo.policy().max_lmax();
        for (name, init) in
            [("all zero", vec![0; 60]), ("all max", vec![lmax; 60]), ("all -max", vec![-lmax; 60])]
        {
            let mut sim = Simulator::new(&g, algo.clone(), init, 11);
            let r = sim.run_until(20_000, |s| algo.is_stabilized(s.graph(), s.states()));
            assert!(r.is_some(), "did not stabilize from {name}");
            let mis = algo.mis_members(&g, sim.states());
            assert!(graphs::mis::is_maximal_independent_set(&g, &mis), "from {name}");
        }
    }

    #[test]
    #[should_panic(expected = "ℓmax to every vertex")]
    fn policy_size_mismatch_panics() {
        let g = classic::path(3);
        Algorithm1::new(&g, LmaxPolicy::fixed(2, 5));
    }

    #[test]
    fn settled_round_certifies_exactly_the_stable_configurations() {
        let g = classic::path(3);
        let algo = Algorithm1::new(&g, LmaxPolicy::fixed(3, 6));
        // Stable MIS member: lone beeper at the claiming level.
        let sr = algo.settled_round(1, &-6, BeepSignal::silent()).unwrap();
        assert_eq!(sr.signal, BeepSignal::channel1());
        assert_eq!(sr.draws, 1);
        // Silenced non-member at ℓmax hearing its dominator.
        let sr = algo.settled_round(0, &6, BeepSignal::channel1()).unwrap();
        assert_eq!(sr.signal, BeepSignal::silent());
        assert_eq!(sr.draws, 0);
        // Everything else is live: a claimer hearing a beep must re-run
        // (conflict), a capped node hearing silence decays, interior
        // levels are never settled.
        assert!(algo.settled_round(1, &-6, BeepSignal::channel1()).is_none());
        assert!(algo.settled_round(0, &6, BeepSignal::silent()).is_none());
        assert!(algo.settled_round(0, &2, BeepSignal::silent()).is_none());
        assert!(algo.settled_round(0, &2, BeepSignal::channel1()).is_none());
    }

    #[test]
    fn frontier_engine_bit_identical_through_and_past_stabilization() {
        use beeping::EngineMode;
        // Stabilize under both engines in lockstep, coast 200 rounds on the
        // settled frontier (debug builds re-verify the certificate whenever
        // a node settles), then inject a post-stabilization point fault and
        // track the recovery — the paper's event-driven regime.
        let g = random::gnp(48, 0.12, 3);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let lmax = algo.policy().max_lmax();
        let mk = |engine| Simulator::new(&g, algo.clone(), vec![lmax; 48], 19).with_engine(engine);
        let mut scalar = mk(EngineMode::Scalar);
        let mut frontier = mk(EngineMode::Frontier);
        let mut stabilized_at = None;
        for round in 1..=20_000u64 {
            let a = scalar.step();
            let b = frontier.step();
            assert_eq!(a, b, "report diverged at round {round}");
            assert_eq!(scalar.states(), frontier.states(), "states diverged at round {round}");
            if algo.is_stabilized(scalar.graph(), scalar.states()) {
                stabilized_at = Some(round);
                break;
            }
        }
        let stabilized_at = stabilized_at.expect("fixture: must stabilize within budget");
        for round in 0..200u64 {
            let a = scalar.step();
            let b = frontier.step();
            assert_eq!(a, b, "post-stabilization report diverged at +{round}");
            assert_eq!(scalar.states(), frontier.states());
        }
        // The configuration is a fixpoint: still stabilized after coasting.
        assert!(algo.is_stabilized(&g, frontier.states()), "after {stabilized_at}+200 rounds");
        // Point fault: knock one MIS member out and watch both engines
        // repair the neighborhood identically.
        let member = frontier.states().iter().position(|&l| l == -lmax).unwrap();
        scalar.corrupt_state(member, lmax);
        frontier.corrupt_state(member, lmax);
        let mut recovered = false;
        for round in 0..5_000u64 {
            let a = scalar.step();
            let b = frontier.step();
            assert_eq!(a, b, "recovery report diverged at +{round}");
            assert_eq!(scalar.states(), frontier.states(), "recovery states diverged at +{round}");
            if algo.is_stabilized(scalar.graph(), scalar.states()) {
                recovered = true;
                break;
            }
        }
        assert!(recovered, "fixture: must re-stabilize after the point fault");
        let mis = algo.mis_members(&g, frontier.states());
        assert!(graphs::mis::is_maximal_independent_set(&g, &mis));
    }
}
