//! Adaptive worst-case search over Byzantine adversaries.
//!
//! The containment guarantees measured by [`crate::containment`] are only as
//! convincing as the adversary they are measured against. Random Byzantine
//! placements are weak adversaries: on most graphs a random site sits in a
//! low-degree, well-separated spot. This module hill-climbs — under a seeded,
//! fully deterministic RNG — over two adversary choices at once:
//!
//! 1. **where** the Byzantine nodes sit (placements mutate one node at a
//!    time), and
//! 2. **what** the initial level configuration is (the transient part of the
//!    adversary; mutated in small batches),
//!
//! maximizing the round at which [`crate::containment::run_contained`] first
//! certifies containment. The search is a fixed-budget local search with
//! strict-improvement acceptance, so the same seed and budget always yield
//! the same [`WorstCase`] — the basis for the certificate JSON emitted by the
//! `BYZ` experiment.

use beeping::byzantine::{ByzantineBehavior, ByzantinePlan};
use beeping::rng::aux_rng;
use graphs::{Graph, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::containment::{run_contained, ContainmentConfig};
use crate::levels::{state_space_bounds, Level};
use crate::runner::{InitialLevels, SelfStabilizingMis};

/// Purpose tag separating the adversary-search RNG stream from node,
/// channel, fault and Byzantine streams.
pub const ADV_RNG_PURPOSE: u64 = 0xAD7E_2541;

/// The Byzantine behavior the search assigns to every placed node.
///
/// A plain-data mirror of [`ByzantineBehavior`] (which is not `Copy` because
/// of crash-restart closures) restricted to the behaviors a placement search
/// can move around freely.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SearchBehavior {
    /// Beeps on every available channel every round.
    StuckBeep,
    /// Never beeps.
    StuckSilent,
    /// Beeps on channel 1 with this probability each round.
    Babbler(f64),
    /// Follows the protocol but always asserts channel-2 MIS membership
    /// (Algorithm 2 only).
    Channel2Liar,
}

impl SearchBehavior {
    /// The simulator behavior this search variant stands for.
    pub fn to_behavior(self) -> ByzantineBehavior<Level> {
        match self {
            SearchBehavior::StuckBeep => ByzantineBehavior::StuckBeep,
            SearchBehavior::StuckSilent => ByzantineBehavior::StuckSilent,
            SearchBehavior::Babbler(p) => ByzantineBehavior::Babbler(p),
            SearchBehavior::Channel2Liar => ByzantineBehavior::Channel2Liar,
        }
    }

    /// Stable human-readable label (matches [`ByzantineBehavior::label`]).
    pub fn label(self) -> String {
        self.to_behavior().label()
    }
}

/// Budget and shape of a [`worst_case_search`].
#[derive(Debug, Clone)]
pub struct AdversaryConfig {
    /// Master seed: drives the search RNG *and* every candidate evaluation
    /// (all candidates are scored under the same simulation seed, so score
    /// differences come from the adversary's choices alone).
    pub seed: u64,
    /// Number of Byzantine nodes to place.
    pub byz_count: usize,
    /// Behavior assigned to every placed node.
    pub behavior: SearchBehavior,
    /// Hill-climbing iterations (candidate evaluations beyond the initial
    /// one).
    pub iterations: usize,
    /// Round budget per candidate evaluation.
    pub max_rounds: u64,
    /// Containment radius to certify (see [`ContainmentConfig::radius`]).
    pub radius: usize,
    /// Burn-in horizon passed through to the containment run.
    pub burn_in: u64,
}

impl AdversaryConfig {
    /// Defaults: one stuck beeper, 32 iterations, 5,000-round budget,
    /// radius-2 certificate, no burn-in.
    pub fn new(seed: u64) -> AdversaryConfig {
        AdversaryConfig {
            seed,
            byz_count: 1,
            behavior: SearchBehavior::StuckBeep,
            iterations: 32,
            max_rounds: 5_000,
            radius: 2,
            burn_in: 0,
        }
    }

    /// Sets the number of Byzantine nodes.
    pub fn with_byz_count(mut self, byz_count: usize) -> AdversaryConfig {
        self.byz_count = byz_count;
        self
    }

    /// Sets the behavior assigned to every placed node.
    pub fn with_behavior(mut self, behavior: SearchBehavior) -> AdversaryConfig {
        self.behavior = behavior;
        self
    }

    /// Sets the iteration budget.
    pub fn with_iterations(mut self, iterations: usize) -> AdversaryConfig {
        self.iterations = iterations;
        self
    }

    /// Sets the per-candidate round budget.
    pub fn with_max_rounds(mut self, max_rounds: u64) -> AdversaryConfig {
        self.max_rounds = max_rounds;
        self
    }

    /// Sets the certified radius.
    pub fn with_radius(mut self, radius: usize) -> AdversaryConfig {
        self.radius = radius;
        self
    }

    /// Sets the burn-in horizon.
    pub fn with_burn_in(mut self, burn_in: u64) -> AdversaryConfig {
        self.burn_in = burn_in;
        self
    }
}

/// The strongest adversary found by [`worst_case_search`].
#[derive(Debug, Clone)]
pub struct WorstCase {
    /// Byzantine placement (sorted, deduplicated).
    pub placement: Vec<NodeId>,
    /// Raw initial levels (clamped per node by the runner at evaluation).
    pub init_levels: Vec<i64>,
    /// Score: the first contained round, or `max_rounds + 1` if the budget
    /// ran out before containment — higher is worse for the protocol.
    pub score: u64,
    /// `true` if even the worst case found was eventually contained.
    pub contained: bool,
    /// Final disruption radius of the worst case's evaluation.
    pub final_radius: usize,
    /// Candidate evaluations performed (initial + iterations).
    pub evaluations: usize,
    /// Accepted strict improvements during the climb.
    pub improvements: usize,
}

struct Candidate {
    placement: Vec<NodeId>,
    init_levels: Vec<i64>,
}

fn evaluate<A: SelfStabilizingMis>(
    graph: &Graph,
    algo: &A,
    candidate: &Candidate,
    config: &AdversaryConfig,
) -> (u64, bool, usize) {
    let mut plan = ByzantinePlan::new();
    for &v in &candidate.placement {
        plan.set_behavior(v, config.behavior.to_behavior());
    }
    let containment = ContainmentConfig::new(config.seed)
        .with_init(InitialLevels::Custom(candidate.init_levels.clone()))
        .with_max_rounds(config.max_rounds)
        .with_radius(config.radius)
        .with_burn_in(config.burn_in);
    let outcome = run_contained(graph, algo, &plan, &containment);
    let score = outcome.contained_round.unwrap_or(config.max_rounds + 1);
    (score, outcome.is_contained(), outcome.final_radius)
}

/// Deterministic hill-climbing search for the Byzantine placement and
/// initial configuration that maximize the time to certified containment.
///
/// Each iteration mutates the incumbent — with probability ½ it relocates
/// one Byzantine node to a random non-Byzantine site, otherwise it
/// re-randomizes the initial levels of roughly `n / 10` nodes — and keeps
/// the mutant only on a *strict* score improvement. Same graph, algorithm
/// and config always produce the same result.
///
/// # Panics
///
/// Panics if `byz_count` is zero or exceeds `graph.len()`, or if the
/// behavior is invalid for the protocol (e.g.
/// [`SearchBehavior::Channel2Liar`] on a single-channel algorithm).
pub fn worst_case_search<A: SelfStabilizingMis>(
    graph: &Graph,
    algo: &A,
    config: &AdversaryConfig,
) -> WorstCase {
    let n = graph.len();
    assert!(config.byz_count >= 1, "worst-case search needs at least one byzantine node");
    assert!(
        config.byz_count <= n,
        "cannot place {} byzantine nodes on {n} vertices",
        config.byz_count
    );
    let mut rng = aux_rng(config.seed, ADV_RNG_PURPOSE);
    let lmax = algo.policy().lmax_values();
    let signed = algo.has_negative_levels();

    let mut pool: Vec<NodeId> = (0..n).collect();
    pool.shuffle(&mut rng);
    let mut placement: Vec<NodeId> = pool[..config.byz_count].to_vec();
    placement.sort_unstable();
    let init_levels: Vec<i64> = (0..n)
        .map(|v| {
            let (low, high) = state_space_bounds(lmax[v], signed);
            rng.gen_range(low..=high)
        })
        .collect();

    let mut best = Candidate { placement, init_levels };
    let (mut best_score, mut best_contained, mut best_radius) =
        evaluate(graph, algo, &best, config);
    let mut improvements = 0;

    for _ in 0..config.iterations {
        let mut candidate =
            Candidate { placement: best.placement.clone(), init_levels: best.init_levels.clone() };
        if rng.gen_bool(0.5) && config.byz_count < n {
            // Relocate one byzantine node to a random non-byzantine site.
            let slot = rng.gen_range(0..candidate.placement.len());
            loop {
                let target = rng.gen_range(0..n);
                if !candidate.placement.contains(&target) {
                    candidate.placement[slot] = target;
                    break;
                }
            }
            candidate.placement.sort_unstable();
        } else {
            // Re-randomize a batch of initial levels.
            let batch = (n / 10).max(1);
            for _ in 0..batch {
                let v = rng.gen_range(0..n);
                let (low, high) = state_space_bounds(lmax[v], signed);
                candidate.init_levels[v] = rng.gen_range(low..=high);
            }
        }
        let (score, contained, radius) = evaluate(graph, algo, &candidate, config);
        if score > best_score {
            best = candidate;
            best_score = score;
            best_contained = contained;
            best_radius = radius;
            improvements += 1;
        }
    }

    WorstCase {
        placement: best.placement,
        init_levels: best.init_levels,
        score: best_score,
        contained: best_contained,
        final_radius: best_radius,
        evaluations: config.iterations + 1,
        improvements,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm1::Algorithm1;
    use crate::algorithm2::Algorithm2;
    use crate::policy::LmaxPolicy;
    use crate::theory::burn_in_horizon;
    use graphs::generators::{classic, random};

    #[test]
    fn search_is_deterministic() {
        let g = random::gnp(24, 0.15, 4);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let config = AdversaryConfig::new(17)
            .with_iterations(6)
            .with_max_rounds(600)
            .with_burn_in(burn_in_horizon(algo.policy()));
        let a = worst_case_search(&g, &algo, &config);
        let b = worst_case_search(&g, &algo, &config);
        assert_eq!(a.placement, b.placement);
        assert_eq!(a.init_levels, b.init_levels);
        assert_eq!(a.score, b.score);
        assert_eq!(a.improvements, b.improvements);
    }

    #[test]
    fn search_respects_byz_count_and_bounds() {
        let g = classic::cycle(20);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let config =
            AdversaryConfig::new(3).with_byz_count(3).with_iterations(5).with_max_rounds(400);
        let worst = worst_case_search(&g, &algo, &config);
        assert_eq!(worst.placement.len(), 3);
        assert!(worst.placement.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
        assert!(worst.placement.iter().all(|&v| v < 20));
        assert_eq!(worst.init_levels.len(), 20);
        assert_eq!(worst.evaluations, 6);
        assert!(worst.score >= 1);
    }

    #[test]
    fn liar_search_runs_on_algorithm2() {
        let g = classic::cycle(16);
        let algo = Algorithm2::new(&g, LmaxPolicy::two_hop_degree(&g));
        let config = AdversaryConfig::new(9)
            .with_behavior(SearchBehavior::Channel2Liar)
            .with_iterations(4)
            .with_max_rounds(400)
            .with_radius(1)
            .with_burn_in(burn_in_horizon(algo.policy()));
        let worst = worst_case_search(&g, &algo, &config);
        assert!(worst.contained, "a single liar on a cycle stays contained");
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_byz_count_rejected() {
        let g = classic::cycle(8);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        worst_case_search(&g, &algo, &AdversaryConfig::new(1).with_byz_count(0));
    }

    #[test]
    fn babbler_search_scores_monotone_improvements() {
        let g = random::gnp(20, 0.2, 8);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let config = AdversaryConfig::new(5)
            .with_behavior(SearchBehavior::Babbler(0.5))
            .with_iterations(8)
            .with_max_rounds(500)
            .with_burn_in(burn_in_horizon(algo.policy()));
        let worst = worst_case_search(&g, &algo, &config);
        assert!(worst.improvements <= 8);
        assert!(worst.score <= 501);
    }
}
