//! Containment certification for Byzantine runs.
//!
//! No self-stabilizing algorithm can stabilize *at* a permanently deviating
//! node (a [`beeping::byzantine::ByzantineBehavior`] site): a stuck beeper
//! silences its neighborhood forever, a babbler keeps resetting it. The
//! measurable robustness claim is **containment** — disruption stays within
//! a small graph radius of the Byzantine sites while every other node
//! converges and stays converged.
//!
//! This module certifies that claim on the *correct subgraph*:
//!
//! - [`byz_distances`]: BFS distance from every node to its nearest
//!   Byzantine site (the containment metric);
//! - [`stabilized_except`]: the active-aware stability predicate of
//!   [`crate::recovery`] with its quantifier restricted to correct nodes at
//!   distance `> r` from every Byzantine site;
//! - [`disruption_radius`]: the smallest such `r` — `0` means the whole
//!   correct network is stable, [`usize::MAX`] means an unstable node is
//!   unreachable from every Byzantine site (disruption the adversary cannot
//!   explain — never caused by a contained Byzantine fault);
//! - [`run_contained`]: a full containment measurement with per-round
//!   trajectories reusing [`crate::dynamics::RoundStats`].
//!
//! The quantifier-restriction semantics matter: which nodes *must be
//! stable* shrinks with `r`, but what counts as a claimed MIS membership is
//! evaluated on the full active graph (Byzantine nodes included), so a
//! correct node dominated by a stuck beeper counts as stable. Two
//! consequences, both asserted by tests: with an empty Byzantine set,
//! [`stabilized_except`] degenerates to [`crate::recovery::stabilized_active`]
//! at every radius, and `disruption_radius == 0` whenever
//! `stabilized_active` holds on the full graph. Certificates that must not
//! credit a liar's claim use [`correct_claimed_mis`], which strips the
//! Byzantine nodes themselves from the membership bitmap.

use beeping::byzantine::ByzantinePlan;
use beeping::{EngineMode, Simulator};
use graphs::{Graph, NodeId};
use telemetry::{Event, Marker, MarkerKind, Telemetry};

use crate::dynamics::{round_stats, RoundStats};
use crate::levels::Level;
use crate::recovery::claimed_mis;
use crate::runner::{
    emit_round_event, initial_levels, InitialLevels, RunConfig, SelfStabilizingMis,
};

/// BFS distance from every node to its nearest node in `byz` (multi-source
/// BFS). Byzantine nodes are at distance `0`; nodes unreachable from every
/// Byzantine site — including every node when `byz` is empty — are at
/// [`usize::MAX`].
///
/// # Panics
///
/// Panics if a Byzantine node id is `>= graph.len()`.
pub fn byz_distances(graph: &Graph, byz: &[NodeId]) -> Vec<usize> {
    let mut dist = vec![usize::MAX; graph.len()];
    let mut queue = std::collections::VecDeque::new();
    for &b in byz {
        assert!(b < graph.len(), "byzantine node {b} out of range for n={}", graph.len());
        if dist[b] != 0 {
            dist[b] = 0;
            queue.push_back(b);
        }
    }
    while let Some(v) = queue.pop_front() {
        let d = dist[v];
        for &u in graph.neighbors(v) {
            let u = u as usize;
            if dist[u] == usize::MAX {
                dist[u] = d + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// Per-node stability of the configuration, Byzantine-aware: entry `v` is
/// `true` iff `v` is active and is a claimed MIS member or adjacent to one.
///
/// Membership is evaluated over the *full* active graph — a Byzantine node
/// holding a claiming level (e.g. a stuck beeper that settled at `-ℓmax`)
/// can dominate its correct neighbors; the quantifier restriction of
/// [`stabilized_except`] decides only *which* nodes are required to be
/// stable, not what stability means.
fn stable_nodes<A: SelfStabilizingMis>(
    algo: &A,
    graph: &Graph,
    levels: &[Level],
    active: &[bool],
) -> Vec<bool> {
    let in_mis = claimed_mis(algo, graph, levels, active);
    graph
        .nodes()
        .map(|v| active[v] && (in_mis[v] || graph.neighbors(v).iter().any(|&u| in_mis[u as usize])))
        .collect()
}

/// [`crate::recovery::stabilized_active`] restricted to correct nodes far
/// from the adversary: `true` iff every active node at distance `> radius`
/// from every Byzantine site is stable (`dist` as computed by
/// [`byz_distances`]). Byzantine nodes themselves (distance `0`) are never
/// quantified over for any radius.
///
/// With an empty Byzantine set every node is at `usize::MAX > radius`, so
/// the predicate degenerates to `stabilized_active` on the full graph.
///
/// # Panics
///
/// Panics if `levels`, `active` or `dist` length differs from
/// `graph.len()`.
pub fn stabilized_except<A: SelfStabilizingMis>(
    algo: &A,
    graph: &Graph,
    levels: &[Level],
    active: &[bool],
    dist: &[usize],
    radius: usize,
) -> bool {
    assert_eq!(dist.len(), graph.len(), "one distance per vertex");
    let stable = stable_nodes(algo, graph, levels, active);
    graph.nodes().all(|v| !active[v] || dist[v] <= radius || stable[v])
}

/// The disruption radius of a configuration: the smallest `r` such that
/// [`stabilized_except`] holds at radius `r`.
///
/// `0` means every active node outside the Byzantine set itself is stable
/// (in particular, `0` whenever [`stabilized_active`] holds on the full
/// graph). [`usize::MAX`] means some failing node is unreachable from every
/// Byzantine site, so no finite radius around the adversary explains the
/// disruption.
///
/// # Panics
///
/// Panics if `levels`, `active` or `dist` length differs from
/// `graph.len()`.
pub fn disruption_radius_with<A: SelfStabilizingMis>(
    algo: &A,
    graph: &Graph,
    levels: &[Level],
    active: &[bool],
    dist: &[usize],
) -> usize {
    assert_eq!(dist.len(), graph.len(), "one distance per vertex");
    let stable = stable_nodes(algo, graph, levels, active);
    graph
        .nodes()
        .filter(|&v| active[v] && dist[v] > 0 && !stable[v])
        .map(|v| dist[v])
        .max()
        .unwrap_or(0)
}

/// [`disruption_radius_with`], computing [`byz_distances`] internally.
///
/// # Panics
///
/// Panics if a Byzantine node id is out of range or a slice length differs
/// from `graph.len()`.
pub fn disruption_radius<A: SelfStabilizingMis>(
    algo: &A,
    graph: &Graph,
    levels: &[Level],
    active: &[bool],
    byz: &[NodeId],
) -> usize {
    disruption_radius_with(algo, graph, levels, active, &byz_distances(graph, byz))
}

/// [`claimed_mis`] with the Byzantine nodes themselves removed: the
/// membership bitmap a containment certificate may credit. A
/// [`beeping::byzantine::ByzantineBehavior::Channel2Liar`] asserts
/// membership forever; it must never appear in a certified MIS.
///
/// # Panics
///
/// Panics if `levels` or `active` length differs from `graph.len()`, or if
/// a Byzantine node id is out of range.
pub fn correct_claimed_mis<A: SelfStabilizingMis>(
    algo: &A,
    graph: &Graph,
    levels: &[Level],
    active: &[bool],
    byz: &[NodeId],
) -> Vec<bool> {
    let mut mis = claimed_mis(algo, graph, levels, active);
    for &b in byz {
        assert!(b < mis.len(), "byzantine node {b} out of range for n={}", mis.len());
        mis[b] = false;
    }
    mis
}

/// One per-round observation of a containment run.
#[derive(Debug, Clone)]
pub struct ContainmentSample {
    /// Rounds executed when the sample was taken (0 = initial
    /// configuration).
    pub round: u64,
    /// [`disruption_radius_with`] of the configuration.
    pub radius: usize,
    /// Full-graph convergence statistics (Byzantine nodes included — their
    /// levels are real RAM contents).
    pub stats: RoundStats,
}

/// Configuration of a [`run_contained`] measurement.
#[derive(Debug, Clone)]
pub struct ContainmentConfig {
    /// Master seed (node streams, initial levels, Byzantine draws).
    pub seed: u64,
    /// Round budget.
    pub max_rounds: u64,
    /// Initial configuration.
    pub init: InitialLevels,
    /// The containment radius to certify: the run stops at the first round
    /// `>= burn_in` whose disruption radius is `<= radius`.
    pub radius: usize,
    /// Rounds to run before the radius check may stop the run (use
    /// [`crate::theory::burn_in_horizon`] for the paper-aligned choice).
    /// Randomized behaviors (babblers) make per-round radii fluctuate, so
    /// the measurement is "first contained round after burn-in", not
    /// "contained at every round".
    pub burn_in: u64,
    /// Record a [`ContainmentSample`] per round (including round 0).
    pub record_trajectory: bool,
    /// Delivery engine for the underlying simulator (bit-identical choices;
    /// see [`EngineMode`]).
    pub engine: EngineMode,
    /// Telemetry handle (disabled by default): a Byzantine marker for the
    /// installed plan, round events with correct-subgraph observables, and
    /// a `containment.final_radius` gauge. Observational only.
    pub telemetry: Telemetry,
}

impl ContainmentConfig {
    /// Defaults: 50,000-round budget, random initial levels, radius-2
    /// certificate, no burn-in, no trajectory.
    pub fn new(seed: u64) -> ContainmentConfig {
        ContainmentConfig {
            seed,
            max_rounds: 50_000,
            init: InitialLevels::Random,
            radius: 2,
            burn_in: 0,
            record_trajectory: false,
            engine: EngineMode::default(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Sets the initial configuration.
    pub fn with_init(mut self, init: InitialLevels) -> ContainmentConfig {
        self.init = init;
        self
    }

    /// Sets the round budget.
    pub fn with_max_rounds(mut self, max_rounds: u64) -> ContainmentConfig {
        self.max_rounds = max_rounds;
        self
    }

    /// Sets the certified radius.
    pub fn with_radius(mut self, radius: usize) -> ContainmentConfig {
        self.radius = radius;
        self
    }

    /// Sets the burn-in horizon.
    pub fn with_burn_in(mut self, burn_in: u64) -> ContainmentConfig {
        self.burn_in = burn_in;
        self
    }

    /// Enables per-round trajectory recording.
    pub fn with_trajectory(mut self) -> ContainmentConfig {
        self.record_trajectory = true;
        self
    }

    /// Selects the simulator delivery engine.
    pub fn with_engine(mut self, engine: EngineMode) -> ContainmentConfig {
        self.engine = engine;
        self
    }

    /// Attaches a telemetry handle.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> ContainmentConfig {
        self.telemetry = telemetry;
        self
    }
}

/// The result of a [`run_contained`] measurement.
#[derive(Debug, Clone)]
pub struct ContainmentOutcome {
    /// First round `>= burn_in` whose disruption radius was within the
    /// certified radius, or `None` if the budget ran out first.
    pub contained_round: Option<u64>,
    /// Disruption radius of the final configuration.
    pub final_radius: usize,
    /// Rounds executed.
    pub rounds_run: u64,
    /// [`correct_claimed_mis`] of the final configuration.
    pub correct_mis: Vec<bool>,
    /// Final levels (Byzantine nodes included).
    pub levels: Vec<Level>,
    /// Per-round samples, when requested.
    pub trajectory: Option<Vec<ContainmentSample>>,
}

impl ContainmentOutcome {
    /// `true` if the run certified containment within the budget.
    pub fn is_contained(&self) -> bool {
        self.contained_round.is_some()
    }
}

/// Runs `algo` under the Byzantine `plan` until the first round `>=
/// config.burn_in` whose disruption radius is `<= config.radius`, or until
/// the budget runs out.
///
/// The run deliberately does *not* install the debug-build
/// [`crate::invariant::InvariantChecker`]: a Byzantine node's RAM is
/// adversary-controlled and legitimately violates protocol invariants.
/// (Crash-restart resurrection closures must still return levels inside the
/// state space — the protocol's own `transmit` executes on them.)
///
/// # Panics
///
/// Panics if the plan is invalid for this graph and protocol (see
/// [`ByzantinePlan::validate`]).
pub fn run_contained<A: SelfStabilizingMis>(
    graph: &Graph,
    algo: &A,
    plan: &ByzantinePlan<Level>,
    config: &ContainmentConfig,
) -> ContainmentOutcome {
    let run_config = RunConfig::new(config.seed).with_init(config.init.clone());
    let levels = initial_levels(algo, &run_config);
    let tele = config.telemetry.clone();
    let mut sim = Simulator::new(graph, algo.clone(), levels, config.seed)
        .with_byzantine(plan.clone())
        .with_engine(config.engine)
        .with_telemetry(tele.clone());
    let byz = plan.nodes();
    if tele.is_enabled() {
        tele.record(Event::RunStart {
            label: "containment".into(),
            n: graph.len() as u64,
            seed: config.seed,
        });
        tele.record(Event::Marker(Marker {
            round: 0,
            kind: MarkerKind::Byzantine,
            detail: "plan".into(),
            magnitude: byz.len() as u64,
        }));
    }
    let dist = byz_distances(graph, &byz);
    let lmax = algo.policy().lmax_values();
    let mut trajectory = config.record_trajectory.then(Vec::new);

    let mut contained_round = None;
    let mut radius = disruption_radius_with(algo, graph, sim.states(), sim.active(), &dist);
    loop {
        if let Some(t) = &mut trajectory {
            t.push(ContainmentSample {
                round: sim.round(),
                radius,
                stats: round_stats(graph, lmax, sim.states(), sim.round() as usize),
            });
        }
        if sim.round() >= config.burn_in && radius <= config.radius {
            contained_round = Some(sim.round());
            break;
        }
        if sim.round() >= config.max_rounds {
            break;
        }
        let report = sim.step();
        radius = disruption_radius_with(algo, graph, sim.states(), sim.active(), &dist);
        if tele.is_enabled() {
            let in_mis = claimed_mis(algo, graph, sim.states(), sim.active());
            let stable = graph
                .nodes()
                .filter(|&v| {
                    sim.active()[v]
                        && (in_mis[v] || graph.neighbors(v).iter().any(|&u| in_mis[u as usize]))
                })
                .count();
            emit_round_event(
                &tele,
                &report,
                sim.active_count() as u64,
                graph.len() as u64,
                in_mis.iter().filter(|&&m| m).count() as u64,
                stable as u64,
                sim.states(),
            );
        }
    }

    if tele.is_enabled() {
        tele.gauge_set(
            "containment.final_radius",
            if radius == usize::MAX { f64::INFINITY } else { radius as f64 },
        );
        tele.record(Event::RunEnd {
            rounds: sim.round(),
            stabilized: contained_round.is_some(),
            stabilization_round: contained_round,
        });
        tele.finish();
    }

    ContainmentOutcome {
        contained_round,
        final_radius: radius,
        rounds_run: sim.round(),
        correct_mis: correct_claimed_mis(algo, graph, sim.states(), sim.active(), &byz),
        levels: sim.states().to_vec(),
        trajectory,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm1::Algorithm1;
    use crate::algorithm2::Algorithm2;
    use crate::policy::LmaxPolicy;
    use crate::recovery::stabilized_active;
    use crate::theory::burn_in_horizon;
    use beeping::byzantine::ByzantineBehavior;
    use graphs::generators::{classic, random};

    #[test]
    fn distances_multi_source() {
        let g = classic::path(6);
        let d = byz_distances(&g, &[0, 5]);
        assert_eq!(d, vec![0, 1, 2, 2, 1, 0]);
        assert_eq!(byz_distances(&g, &[]), vec![usize::MAX; 6]);
        // Duplicate sources are harmless.
        assert_eq!(byz_distances(&g, &[2, 2]), vec![2, 1, 0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn distances_reject_bad_source() {
        let g = classic::path(3);
        byz_distances(&g, &[7]);
    }

    #[test]
    fn radius_zero_iff_correct_graph_stable() {
        // Path 0-1-2-3-4, byz node 0 stuck beeping. A configuration where
        // everyone else is stable: 1 dominated by the byz claiming site?
        // Use explicit levels: byz at claiming, 1 at lmax, 2 claiming,
        // 3 at lmax, 4 claiming.
        let g = classic::path(5);
        let algo = Algorithm1::new(&g, LmaxPolicy::fixed(5, 4));
        let claim = -4;
        let levels = vec![claim, 4, claim, 4, claim];
        let active = vec![true; 5];
        assert_eq!(disruption_radius(&algo, &g, &levels, &active, &[0]), 0);
        assert!(stabilized_except(&algo, &g, &levels, &active, &byz_distances(&g, &[0]), 0));
        // Break node 4 (distance 4 from the byz site): radius jumps to 4.
        let levels = vec![claim, 4, claim, 4, 1];
        assert_eq!(disruption_radius(&algo, &g, &levels, &active, &[0]), 4);
        // An unstable node unreachable from the adversary is MAX.
        let mut b = graphs::GraphBuilder::new(4);
        b.add_edge(0, 1).unwrap();
        let g2 = b.build(); // 2 and 3 isolated
        let algo2 = Algorithm1::new(&g2, LmaxPolicy::fixed(4, 3));
        let levels2 = vec![-3, 3, 1, -3];
        assert_eq!(disruption_radius(&algo2, &g2, &levels2, &[true; 4], &[0]), usize::MAX);
    }

    #[test]
    fn empty_byzantine_set_matches_stabilized_active() {
        let g = random::gnp(40, 0.1, 3);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let outcome = algo.run(&g, RunConfig::new(11)).expect("stabilizes");
        let active = vec![true; g.len()];
        assert!(stabilized_active(&algo, &g, &outcome.levels, &active));
        assert_eq!(disruption_radius(&algo, &g, &outcome.levels, &active, &[]), 0);
        let dist = byz_distances(&g, &[]);
        for r in [0, 1, 5] {
            assert!(stabilized_except(&algo, &g, &outcome.levels, &active, &dist, r));
        }
    }

    #[test]
    fn stuck_beeper_contained_on_cycle() {
        let g = classic::cycle(32);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let plan = ByzantinePlan::new().with_behavior(5, ByzantineBehavior::StuckBeep);
        let config = ContainmentConfig::new(3)
            .with_burn_in(burn_in_horizon(algo.policy()))
            .with_radius(2)
            .with_trajectory();
        let outcome = run_contained(&g, &algo, &plan, &config);
        assert!(outcome.is_contained(), "final radius {}", outcome.final_radius);
        assert!(outcome.final_radius <= 2);
        assert!(!outcome.correct_mis[5], "byz node never certified");
        let t = outcome.trajectory.expect("recorded");
        assert_eq!(t.len() as u64, outcome.rounds_run + 1);
        assert_eq!(t.last().unwrap().radius, outcome.final_radius);
        assert!(t.last().unwrap().round >= config.burn_in);
    }

    #[test]
    fn liar_contained_and_never_certified_alg2() {
        let g = classic::cycle(24);
        let algo = Algorithm2::new(&g, LmaxPolicy::two_hop_degree(&g));
        let plan = ByzantinePlan::new().with_behavior(7, ByzantineBehavior::Channel2Liar);
        let config =
            ContainmentConfig::new(5).with_burn_in(burn_in_horizon(algo.policy())).with_radius(1);
        let outcome = run_contained(&g, &algo, &plan, &config);
        assert!(outcome.is_contained(), "final radius {}", outcome.final_radius);
        assert!(!outcome.correct_mis[7]);
    }

    #[test]
    fn trajectory_rounds_are_consecutive() {
        let g = classic::cycle(16);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let plan = ByzantinePlan::new().with_behavior(0, ByzantineBehavior::StuckSilent);
        let config =
            ContainmentConfig::new(1).with_max_rounds(20).with_burn_in(20).with_trajectory();
        let outcome = run_contained(&g, &algo, &plan, &config);
        let t = outcome.trajectory.expect("recorded");
        for (i, s) in t.iter().enumerate() {
            assert_eq!(s.round, i as u64);
            assert_eq!(s.stats.round, i);
        }
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        let g = random::gnp(30, 0.12, 9);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let plan = ByzantinePlan::new().with_behavior(3, ByzantineBehavior::Babbler(0.5));
        let config = ContainmentConfig::new(21).with_burn_in(burn_in_horizon(algo.policy()));
        let a = run_contained(&g, &algo, &plan, &config);
        let b = run_contained(&g, &algo, &plan, &config);
        assert_eq!(a.contained_round, b.contained_round);
        assert_eq!(a.levels, b.levels);
        assert_eq!(a.correct_mis, b.correct_mis);
        assert_eq!(a.final_radius, b.final_radius);
    }
}
