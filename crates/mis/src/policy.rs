//! Topology-knowledge policies: how each vertex obtains its `ℓmax(v)`.
//!
//! The paper's three results differ only in the knowledge available to the
//! vertices (Theorem 1.1). In this implementation, *knowledge* is baked into
//! the per-node `ℓmax` vector at protocol-construction time — it lives in
//! "ROM" alongside the code, so transient faults never corrupt it (matching
//! §1.1's fault model where only RAM state is corruptible).

use graphs::Graph;

use crate::levels::{log2_ceil, Level};

/// Default `c1` for the global-Δ regime (Theorem 2.1 requires `c1 ≥ 15`).
pub const C1_GLOBAL_DELTA: u32 = 15;
/// Default `c1` for the own-degree regime (Theorem 2.2 requires `c1 ≥ 30`).
pub const C1_OWN_DEGREE: u32 = 30;
/// Default `c1` for the two-channel deg₂ regime (Cor 2.3 requires `c1 ≥ 15`).
pub const C1_TWO_HOP: u32 = 15;

/// An assignment of `ℓmax(v)` to every vertex, derived from some topology
/// knowledge.
///
/// Use the constructors matching the paper's results:
/// [`LmaxPolicy::global_delta`] (Thm 2.1), [`LmaxPolicy::own_degree`]
/// (Thm 2.2), [`LmaxPolicy::two_hop_degree`] (Cor 2.3); or the ablation
/// constructors [`LmaxPolicy::fixed`] / [`LmaxPolicy::custom`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LmaxPolicy {
    name: String,
    lmax: Vec<Level>,
}

impl LmaxPolicy {
    /// Theorem 2.1 regime with the default constant: every vertex knows the
    /// same upper bound on the maximum degree Δ, and
    /// `ℓmax = ⌈log₂ Δ⌉ + 15`.
    pub fn global_delta(g: &Graph) -> LmaxPolicy {
        LmaxPolicy::global_delta_with(g, C1_GLOBAL_DELTA)
    }

    /// Theorem 2.1 regime with an explicit `c1` (the theorem needs
    /// `c1 ≥ 15`; smaller values are allowed for ablation experiments).
    pub fn global_delta_with(g: &Graph, c1: u32) -> LmaxPolicy {
        LmaxPolicy::global_delta_from_bound(g.len(), g.max_degree(), c1)
    }

    /// Theorem 2.1 regime from an externally supplied upper bound on Δ —
    /// the bound only needs to be *an upper bound, at most poly(n)*; it does
    /// not need to be tight.
    pub fn global_delta_from_bound(n: usize, delta_bound: usize, c1: u32) -> LmaxPolicy {
        let lmax = (log2_ceil(delta_bound) + c1).max(2) as Level;
        LmaxPolicy { name: format!("global-Δ(c1={c1})"), lmax: vec![lmax; n] }
    }

    /// Theorem 2.2 regime with the default constant: each vertex knows an
    /// upper bound on its *own* degree, and
    /// `ℓmax(v) = 2⌈log₂ deg(v)⌉ + 30`.
    pub fn own_degree(g: &Graph) -> LmaxPolicy {
        LmaxPolicy::own_degree_with(g, C1_OWN_DEGREE)
    }

    /// Theorem 2.2 regime with an explicit `c1` (the theorem needs
    /// `c1 ≥ 30`).
    pub fn own_degree_with(g: &Graph, c1: u32) -> LmaxPolicy {
        let lmax = g.nodes().map(|v| (2 * log2_ceil(g.degree(v)) + c1).max(2) as Level).collect();
        LmaxPolicy { name: format!("own-deg(c1={c1})"), lmax }
    }

    /// Corollary 2.3 regime with the default constant: each vertex knows an
    /// upper bound on the maximum degree in its closed 1-hop neighborhood,
    /// and `ℓmax(v) = 2⌈log₂ deg₂(v)⌉ + 15`.
    pub fn two_hop_degree(g: &Graph) -> LmaxPolicy {
        LmaxPolicy::two_hop_degree_with(g, C1_TWO_HOP)
    }

    /// Corollary 2.3 regime with an explicit `c1` (the corollary needs
    /// `c1 ≥ 15`).
    pub fn two_hop_degree_with(g: &Graph, c1: u32) -> LmaxPolicy {
        let lmax = g.nodes().map(|v| (2 * log2_ceil(g.deg2(v)) + c1).max(2) as Level).collect();
        LmaxPolicy { name: format!("deg₂(c1={c1})"), lmax }
    }

    /// Every vertex uses the same fixed `ℓmax` — the knob for the
    /// ablation study of §2's remark that `ℓmax` has "a strong influence on
    /// the stabilization time".
    ///
    /// # Panics
    ///
    /// Panics if `lmax < 2`: with `ℓmax = 1` the only positive level *is*
    /// the silent cap, the silent-round decay `ℓ ← max(ℓ-1, 1)` pins every
    /// vertex there, and the whole network deadlocks in silence.
    pub fn fixed(n: usize, lmax: Level) -> LmaxPolicy {
        assert!(lmax >= 2, "ℓmax must be at least 2 (ℓmax = 1 deadlocks), got {lmax}");
        LmaxPolicy { name: format!("fixed({lmax})"), lmax: vec![lmax; n] }
    }

    /// Fully custom per-vertex values (used by lemma-level experiments that
    /// need engineered heterogeneous `ℓmax`).
    ///
    /// # Panics
    ///
    /// Panics if any value is `< 2` (see [`LmaxPolicy::fixed`]).
    pub fn custom(name: impl Into<String>, lmax: Vec<Level>) -> LmaxPolicy {
        assert!(lmax.iter().all(|&l| l >= 2), "every ℓmax must be at least 2 (ℓmax = 1 deadlocks)");
        LmaxPolicy { name: name.into(), lmax }
    }

    /// Human-readable policy name (used in experiment tables).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// `ℓmax(v)`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn lmax(&self, v: graphs::NodeId) -> Level {
        self.lmax[v]
    }

    /// The full per-vertex vector.
    pub fn lmax_values(&self) -> &[Level] {
        &self.lmax
    }

    /// Number of vertices covered.
    pub fn len(&self) -> usize {
        self.lmax.len()
    }

    /// `true` if the policy covers no vertices.
    pub fn is_empty(&self) -> bool {
        self.lmax.is_empty()
    }

    /// `max_{w ∈ V} ℓmax(w)` — the burn-in horizon of Lemma 3.1.
    pub fn max_lmax(&self) -> Level {
        self.lmax.iter().copied().max().unwrap_or(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::generators::{classic, composite};

    #[test]
    fn global_delta_is_uniform() {
        let g = classic::star(10);
        let p = LmaxPolicy::global_delta(&g);
        // Δ = 9, ⌈log₂ 9⌉ = 4, + 15 = 19, for every node.
        assert!(p.lmax_values().iter().all(|&l| l == 19));
        assert_eq!(p.max_lmax(), 19);
        assert_eq!(p.len(), 10);
    }

    #[test]
    fn global_delta_respects_external_bound() {
        let p = LmaxPolicy::global_delta_from_bound(5, 1024, 15);
        assert!(p.lmax_values().iter().all(|&l| l == 25));
    }

    #[test]
    fn own_degree_tracks_degrees() {
        let g = classic::star(10);
        let p = LmaxPolicy::own_degree(&g);
        // Hub: deg 9 → 2*4 + 30 = 38. Leaf: deg 1 → 0 + 30 = 30.
        assert_eq!(p.lmax(0), 38);
        for leaf in 1..10 {
            assert_eq!(p.lmax(leaf), 30);
        }
    }

    #[test]
    fn own_degree_satisfies_theorem_precondition() {
        // Thm 2.2 needs ℓmax(v) ≥ 2 log deg(v) + c1 with c1 ≥ 30.
        let g = graphs::generators::random::gnp(200, 0.1, 3);
        let p = LmaxPolicy::own_degree(&g);
        for v in g.nodes() {
            let needed = 2.0 * (g.degree(v).max(1) as f64).log2() + 30.0;
            assert!(p.lmax(v) as f64 >= needed - 1e-9);
        }
    }

    #[test]
    fn two_hop_uses_deg2() {
        let g = composite::star_of_cliques(10, 3);
        let p = LmaxPolicy::two_hop_degree(&g);
        // Port node (id 1): deg2 = 10 (hub) → 2*4 + 15 = 23.
        assert_eq!(p.lmax(1), 23);
        // Inner clique node (id 2): deg2 = 3 → 2*2 + 15 = 19.
        assert_eq!(p.lmax(2), 19);
    }

    #[test]
    fn fixed_and_custom() {
        let p = LmaxPolicy::fixed(4, 6);
        assert_eq!(p.lmax_values(), &[6, 6, 6, 6]);
        let c = LmaxPolicy::custom("mine", vec![2, 3, 4]);
        assert_eq!(c.name(), "mine");
        assert_eq!(c.max_lmax(), 4);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn fixed_rejects_deadlocking_values() {
        LmaxPolicy::fixed(4, 1);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn custom_rejects_deadlocking_values() {
        LmaxPolicy::custom("bad", vec![2, 1]);
    }

    #[test]
    fn isolated_nodes_get_valid_lmax() {
        let g = graphs::Graph::empty(3);
        for p in [
            LmaxPolicy::global_delta(&g),
            LmaxPolicy::own_degree(&g),
            LmaxPolicy::two_hop_degree(&g),
        ] {
            assert!(p.lmax_values().iter().all(|&l| l >= 2), "{}", p.name());
        }
    }

    #[test]
    fn names_mention_constants() {
        let g = classic::cycle(5);
        assert!(LmaxPolicy::global_delta_with(&g, 7).name().contains('7'));
        assert!(LmaxPolicy::own_degree_with(&g, 12).name().contains("12"));
    }
}
