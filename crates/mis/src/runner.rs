//! High-level "run to stabilization" API over the beeping simulator.
//!
//! Self-stabilization is always measured the way the paper defines it
//! (§1.1): start from an *arbitrary* configuration (or corrupt a running
//! one), count fault-free rounds until the stable set covers the graph
//! (`S_t = V`), at which point the configuration is a fixpoint and `I_t` is
//! an MIS.

use beeping::faults::{FaultPlan, FaultTarget};
use beeping::rng::aux_rng;
use beeping::trace::{RoundReport, Trace};
use beeping::{BeepingProtocol, EngineMode, Simulator};
use graphs::Graph;
use rand::Rng;
use rand_pcg::Pcg64Mcg;
use telemetry::{Event, Marker, MarkerKind, RoundEvent, Telemetry};

use crate::algorithm1::Algorithm1;
use crate::algorithm2::Algorithm2;
use crate::levels::{self, clamp_level, clamp_level_two_channel, state_space_bounds, Level};
use crate::policy::LmaxPolicy;

/// Purpose tag of the fault-injection RNG stream (see
/// [`beeping::rng::aux_rng`]); shared with [`crate::recovery`] so the
/// zero-noise path reproduces this module's corruptions exactly.
pub(crate) const FAULT_RNG_PURPOSE: u64 = 0xFA17;

/// Purpose tag of the initial-configuration RNG stream.
pub(crate) const INIT_RNG_PURPOSE: u64 = 0xC0FF_EE00;

/// How the (adversarial) initial configuration is chosen.
///
/// A self-stabilizing algorithm must converge from *every* initial
/// configuration; these variants cover the interesting corners plus uniform
/// random.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InitialLevels {
    /// Each level uniform over the node's full state space — the canonical
    /// "arbitrary RAM contents".
    Random,
    /// Every vertex at its `ℓmax` (everyone silent, "not in MIS"): the
    /// slowest-to-wake corner.
    AllMax,
    /// Every vertex claims MIS membership (`-ℓmax` for Algorithm 1, `0` for
    /// Algorithm 2): maximal inconsistency.
    AllClaiming,
    /// Every vertex at `ℓ = 1` (beep probability ½) — the analogue of the
    /// Jeavons–Scott–Xu clean start `p₁(v) = ½`.
    AllOne,
    /// Explicit raw values, clamped into each node's state space.
    Custom(Vec<i64>),
}

impl InitialLevels {
    fn sample(
        &self,
        policy: &LmaxPolicy,
        clamp: impl Fn(i64, Level) -> Level,
        claim: impl Fn(Level) -> Level,
        rng: &mut Pcg64Mcg,
        low_is_claim: bool,
    ) -> Vec<Level> {
        policy
            .lmax_values()
            .iter()
            .enumerate()
            .map(|(v, &lmax)| match self {
                InitialLevels::Random => {
                    let (low, high) = state_space_bounds(lmax, low_is_claim);
                    clamp(rng.gen_range(low..=high), lmax)
                }
                InitialLevels::AllMax => lmax,
                InitialLevels::AllClaiming => claim(lmax),
                InitialLevels::AllOne => 1,
                InitialLevels::Custom(values) => clamp(values[v], lmax),
            })
            .collect()
    }
}

/// Configuration of a stabilization run.
///
/// # Example
///
/// ```
/// use beeping::faults::{FaultPlan, FaultTarget};
/// use mis::runner::{InitialLevels, RunConfig};
///
/// let config = RunConfig::new(42)
///     .with_init(InitialLevels::AllClaiming)
///     .with_max_rounds(50_000)
///     .with_faults(FaultPlan::new().with_fault(100, FaultTarget::RandomFraction(0.2)));
/// assert_eq!(config.seed, 42);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RunConfig {
    /// Master seed for node randomness, initial levels and fault targets.
    pub seed: u64,
    /// Round budget; exceeding it yields [`StabilizationError`].
    pub max_rounds: u64,
    /// Initial configuration.
    pub init: InitialLevels,
    /// Scheduled transient faults (corrupted nodes get uniform-random
    /// levels — arbitrary RAM contents).
    pub faults: FaultPlan,
    /// Record a full level snapshot after every round (memory-heavy; for
    /// lemma-level experiments on small graphs only).
    pub record_levels: bool,
    /// Delivery engine for the underlying simulator. Both engines are
    /// bit-identical per seed; `Scalar` is the reference implementation kept
    /// for differential testing.
    pub engine: EngineMode,
    /// Telemetry handle (disabled by default). When enabled, the run emits
    /// a `RunStart`, one [`telemetry::RoundEvent`] per executed round
    /// (counters, claimed-MIS and stable-set sizes, level histograms at the
    /// configured stride), a fault [`telemetry::Marker`] per corruption
    /// burst, and a closing `RunEnd` + metrics snapshot. Telemetry observes
    /// only — enabling it never changes the run's outcome.
    pub telemetry: Telemetry,
}

impl RunConfig {
    /// Default configuration: random initial levels, a 1,000,000-round
    /// budget, no faults, no level recording.
    pub fn new(seed: u64) -> RunConfig {
        RunConfig {
            seed,
            max_rounds: 1_000_000,
            init: InitialLevels::Random,
            faults: FaultPlan::new(),
            record_levels: false,
            engine: EngineMode::default(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Sets the initial configuration.
    pub fn with_init(mut self, init: InitialLevels) -> RunConfig {
        self.init = init;
        self
    }

    /// Sets the round budget.
    pub fn with_max_rounds(mut self, max_rounds: u64) -> RunConfig {
        self.max_rounds = max_rounds;
        self
    }

    /// Sets the fault schedule.
    pub fn with_faults(mut self, faults: FaultPlan) -> RunConfig {
        self.faults = faults;
        self
    }

    /// Enables per-round level snapshots.
    pub fn with_level_recording(mut self) -> RunConfig {
        self.record_levels = true;
        self
    }

    /// Selects the simulator delivery engine.
    pub fn with_engine(mut self, engine: EngineMode) -> RunConfig {
        self.engine = engine;
        self
    }

    /// Attaches a telemetry handle.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> RunConfig {
        self.telemetry = telemetry;
        self
    }
}

/// The result of a successful stabilization run.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The computed maximal independent set.
    pub mis: Vec<bool>,
    /// Final levels.
    pub levels: Vec<Level>,
    /// First round at which `S_t = V` held **after the last scheduled
    /// fault** (the paper's stabilization time: fault-free rounds from the
    /// last corruption; equals total rounds when no faults are scheduled).
    pub stabilization_round: u64,
    /// Total rounds executed (`≥ stabilization_round` when faults delayed
    /// measurement).
    pub rounds_run: u64,
    /// Per-round beep activity.
    pub trace: Trace,
    /// Level snapshots per round (entry `t` = levels *after* round `t+1`),
    /// present when [`RunConfig::record_levels`] was set. The initial
    /// configuration is prepended as entry 0.
    pub level_history: Option<Vec<Vec<Level>>>,
}

/// The round budget ran out before stabilization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StabilizationError {
    /// The exhausted budget.
    pub max_rounds: u64,
    /// How many vertices were stable when the budget ran out.
    pub stable_count: usize,
    /// Graph size, for context.
    pub n: usize,
}

impl std::fmt::Display for StabilizationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "not stabilized after {} rounds ({}/{} vertices stable)",
            self.max_rounds, self.stable_count, self.n
        )
    }
}

impl std::error::Error for StabilizationError {}

/// Shared behavior of the paper's two self-stabilizing protocols, enabling
/// experiment code generic over the algorithm variant.
///
/// This trait is sealed in spirit: it is implemented by [`Algorithm1`] and
/// [`Algorithm2`] and not intended for downstream implementations.
pub trait SelfStabilizingMis: BeepingProtocol<State = Level> + Clone {
    /// The knowledge policy in use.
    fn policy(&self) -> &LmaxPolicy;

    /// `S_t = V` for this algorithm's stability semantics.
    fn stabilized(&self, graph: &Graph, levels: &[Level]) -> bool;

    /// The stable MIS members of a snapshot.
    fn mis_of(&self, graph: &Graph, levels: &[Level]) -> Vec<bool>;

    /// Clamps a raw integer into this algorithm's per-node state space.
    fn clamp_raw(&self, raw: i64, lmax: Level) -> Level;

    /// The "I claim MIS membership" level (`-ℓmax` / `0`).
    fn claiming_level(&self, lmax: Level) -> Level;

    /// `true` if the state space extends below zero (Algorithm 1).
    fn has_negative_levels(&self) -> bool;
}

impl SelfStabilizingMis for Algorithm1 {
    fn policy(&self) -> &LmaxPolicy {
        Algorithm1::policy(self)
    }
    fn stabilized(&self, graph: &Graph, levels: &[Level]) -> bool {
        self.is_stabilized(graph, levels)
    }
    fn mis_of(&self, graph: &Graph, levels: &[Level]) -> Vec<bool> {
        self.mis_members(graph, levels)
    }
    fn clamp_raw(&self, raw: i64, lmax: Level) -> Level {
        clamp_level(raw, lmax)
    }
    fn claiming_level(&self, lmax: Level) -> Level {
        levels::claiming_level(lmax)
    }
    fn has_negative_levels(&self) -> bool {
        true
    }
}

impl SelfStabilizingMis for Algorithm2 {
    fn policy(&self) -> &LmaxPolicy {
        Algorithm2::policy(self)
    }
    fn stabilized(&self, graph: &Graph, levels: &[Level]) -> bool {
        self.is_stabilized(graph, levels)
    }
    fn mis_of(&self, graph: &Graph, levels: &[Level]) -> Vec<bool> {
        self.mis_members(graph, levels)
    }
    fn clamp_raw(&self, raw: i64, lmax: Level) -> Level {
        clamp_level_two_channel(raw, lmax)
    }
    fn claiming_level(&self, _lmax: Level) -> Level {
        0
    }
    fn has_negative_levels(&self) -> bool {
        false
    }
}

/// Samples the initial configuration for `algo` under `config`.
pub fn initial_levels<A: SelfStabilizingMis>(algo: &A, config: &RunConfig) -> Vec<Level> {
    let mut rng = aux_rng(config.seed, INIT_RNG_PURPOSE);
    config.init.sample(
        algo.policy(),
        |raw, lmax| algo.clamp_raw(raw, lmax),
        |lmax| algo.claiming_level(lmax),
        &mut rng,
        algo.has_negative_levels(),
    )
}

/// Runs `algo` on `graph` until stabilization, honoring the fault schedule.
///
/// # Errors
///
/// Returns [`StabilizationError`] if `config.max_rounds` rounds elapse
/// without reaching `S_t = V` after the last fault.
///
/// # Panics
///
/// Panics if the fault schedule is invalid for this graph (explicit node id
/// out of range, `RandomCount` above `n`, fraction outside `[0, 1]`) —
/// checked up front so the round loop's fault application is infallible.
pub fn run<A: SelfStabilizingMis>(
    graph: &Graph,
    algo: &A,
    config: RunConfig,
) -> Result<Outcome, StabilizationError> {
    if let Err(e) = config.faults.validate(graph.len()) {
        panic!("invalid fault plan: {e}");
    }
    let levels = initial_levels(algo, &config);
    let tele = config.telemetry.clone();
    let mut sim = Simulator::new(graph, algo.clone(), levels, config.seed)
        .with_engine(config.engine)
        .with_telemetry(tele.clone());
    if cfg!(debug_assertions) {
        let checker = crate::invariant::InvariantChecker::for_algorithm(algo);
        sim.set_invariant_hook(move |g, round, states| checker.check_round(g, round, states));
    }
    let mut fault_rng = aux_rng(config.seed, FAULT_RNG_PURPOSE);
    let mut trace = Trace::new();
    let mut history = config.record_levels.then(|| vec![sim.states().to_vec()]);
    let last_fault = config.faults.last_fault_round().unwrap_or(0);

    if tele.is_enabled() {
        tele.record(Event::RunStart {
            label: "runner".into(),
            n: graph.len() as u64,
            seed: config.seed,
        });
    }

    // Apply any faults scheduled "after round 0" (i.e. corrupt the initial
    // configuration).
    apply_faults(&mut sim, algo, &config, 0, &mut fault_rng);

    let mut stabilized_at: Option<u64> = None;
    if sim.round() >= last_fault && algo.stabilized(graph, sim.states()) {
        stabilized_at = Some(0);
    }
    while stabilized_at.is_none() && sim.round() < config.max_rounds {
        let report = sim.step();
        if tele.is_enabled() {
            emit_round(&tele, algo, graph, &sim, &report);
        }
        trace.push(report);
        if let Some(h) = &mut history {
            h.push(sim.states().to_vec());
        }
        let round = sim.round();
        apply_faults(&mut sim, algo, &config, round, &mut fault_rng);
        if sim.round() >= last_fault && algo.stabilized(graph, sim.states()) {
            stabilized_at = Some(sim.round());
        }
    }
    if tele.is_enabled() {
        tele.record(Event::RunEnd {
            rounds: sim.round(),
            stabilized: stabilized_at.is_some(),
            stabilization_round: stabilized_at.map(|round| round.saturating_sub(last_fault)),
        });
        tele.finish();
    }
    match stabilized_at {
        Some(round) => Ok(Outcome {
            mis: algo.mis_of(graph, sim.states()),
            levels: sim.states().to_vec(),
            stabilization_round: round.saturating_sub(last_fault),
            rounds_run: sim.round(),
            trace,
            level_history: history,
        }),
        None => Err(StabilizationError {
            max_rounds: config.max_rounds,
            stable_count: crate::observer::Snapshot::new(
                graph,
                algo.policy().lmax_values(),
                sim.states(),
            )
            .stable_count(),
            n: graph.len(),
        }),
    }
}

fn apply_faults<A: SelfStabilizingMis>(
    sim: &mut Simulator<'_, A>,
    algo: &A,
    config: &RunConfig,
    round: u64,
    fault_rng: &mut Pcg64Mcg,
) {
    for event in config.faults.events_after_round(round) {
        let corrupted = corrupt_targets(sim, algo, &event.target, fault_rng);
        if config.telemetry.is_enabled() {
            config.telemetry.record(Event::Marker(Marker {
                round,
                kind: MarkerKind::Fault,
                detail: "corrupt".into(),
                magnitude: corrupted as u64,
            }));
        }
    }
}

/// Sorted `(level, count)` histogram of a configuration — the telemetry
/// stream's level snapshot format.
pub(crate) fn level_histogram(levels: &[Level]) -> Vec<(i64, u64)> {
    let mut histogram = std::collections::BTreeMap::new();
    for &level in levels {
        *histogram.entry(i64::from(level)).or_insert(0u64) += 1;
    }
    histogram.into_iter().collect()
}

/// Builds and records one [`RoundEvent`] from a [`RoundReport`] plus
/// already-computed MIS observables, and accumulates the `trace.*` counter
/// totals mirroring [`Trace`]'s aggregates. Shared by [`run`],
/// [`crate::recovery::run_noisy`] and [`crate::containment::run_contained`].
pub(crate) fn emit_round_event(
    tele: &Telemetry,
    report: &RoundReport,
    active: u64,
    n: u64,
    in_mis: u64,
    stable: u64,
    levels: &[Level],
) {
    tele.record(Event::Round(RoundEvent {
        round: report.round,
        beeps_channel1: report.beeps_channel1 as u64,
        beeps_channel2: report.beeps_channel2 as u64,
        hearers_channel1: report.hearers_channel1 as u64,
        hearers_channel2: report.hearers_channel2 as u64,
        lone_beepers: report.lone_beepers as u64,
        lone_beepers_channel2: report.lone_beepers_channel2 as u64,
        active,
        n,
        in_mis: Some(in_mis),
        stable: Some(stable),
        levels: tele.sample_levels(report.round).then(|| level_histogram(levels)),
    }));
    tele.counter_add("trace.rounds", 1);
    tele.counter_add("trace.beeps_c1", report.beeps_channel1 as u64);
    tele.counter_add("trace.beeps_c2", report.beeps_channel2 as u64);
    tele.counter_add("trace.hearers_c1", report.hearers_channel1 as u64);
    tele.counter_add("trace.hearers_c2", report.hearers_channel2 as u64);
    tele.counter_add("trace.lone_c1", report.lone_beepers as u64);
    tele.counter_add("trace.lone_c2", report.lone_beepers_channel2 as u64);
}

/// Emits the runner's per-round telemetry event: the [`RoundReport`]
/// counters plus claimed-MIS size, stable-set size (`S_t = I_t ∪ N(I_t)`,
/// this algorithm's stability semantics) and — at the handle's sampling
/// stride — a level histogram. Call only when `tele` is enabled; the
/// observables cost O(n + m) per round.
fn emit_round<A: SelfStabilizingMis>(
    tele: &Telemetry,
    algo: &A,
    graph: &Graph,
    sim: &Simulator<'_, A>,
    report: &RoundReport,
) {
    let levels = sim.states();
    let in_mis = algo.mis_of(graph, levels);
    let stable = graph
        .nodes()
        .filter(|&v| in_mis[v] || graph.neighbors(v).iter().any(|&u| in_mis[u as usize]))
        .count();
    emit_round_event(
        tele,
        report,
        sim.active_count() as u64,
        graph.len() as u64,
        in_mis.iter().filter(|&&m| m).count() as u64,
        stable as u64,
        levels,
    );
}

/// Resolves `target` and overwrites each victim's level with a uniform draw
/// over its full state space — the shared corruption payload of [`run`],
/// [`run_recovery`] and [`crate::recovery::run_noisy`]. Returns the number
/// of corrupted nodes.
pub(crate) fn corrupt_targets<A: SelfStabilizingMis>(
    sim: &mut Simulator<'_, A>,
    algo: &A,
    target: &FaultTarget,
    fault_rng: &mut Pcg64Mcg,
) -> usize {
    let n = sim.graph().len();
    let victims = target.select(n, fault_rng);
    for &v in &victims {
        sim.corrupt_state(v, random_level(algo, v, fault_rng));
    }
    victims.len()
}

/// A uniform draw over node `v`'s full state space — "arbitrary RAM
/// contents" for corruption or an adversarial fresh boot.
pub(crate) fn random_level<A: SelfStabilizingMis>(algo: &A, v: usize, rng: &mut Pcg64Mcg) -> Level {
    let lmax = algo.policy().lmax(v);
    let (low, high) = state_space_bounds(lmax, algo.has_negative_levels());
    algo.clamp_raw(rng.gen_range(low..=high), lmax)
}

/// [`run`] specialized to [`Algorithm1`] (kept as a named entry point for
/// discoverability; `Algorithm1::run` calls this).
pub fn run_algorithm1(
    graph: &Graph,
    algo: &Algorithm1,
    config: RunConfig,
) -> Result<Outcome, StabilizationError> {
    run(graph, algo, config)
}

/// [`run`] specialized to [`Algorithm2`].
pub fn run_algorithm2(
    graph: &Graph,
    algo: &Algorithm2,
    config: RunConfig,
) -> Result<Outcome, StabilizationError> {
    run(graph, algo, config)
}

/// Outcome of a fault-recovery measurement ([`run_recovery`]).
#[derive(Debug, Clone)]
pub struct RecoveryOutcome {
    /// Rounds to the first stabilization (from the initial configuration).
    pub initial_stabilization: u64,
    /// Rounds from the fault back to stabilization.
    pub recovery_rounds: u64,
    /// How many nodes the fault corrupted.
    pub corrupted_nodes: usize,
    /// The final MIS.
    pub mis: Vec<bool>,
}

/// Measures recovery: run to stabilization, corrupt `target`, run to
/// stabilization again. This isolates the paper's headline property — the
/// stabilization time bound applies *again* after every transient fault.
///
/// # Errors
///
/// Returns [`StabilizationError`] if either phase exceeds `max_rounds`.
///
/// # Panics
///
/// Panics if `target` is invalid for this graph (see
/// [`beeping::faults::FaultTarget::validate`]).
pub fn run_recovery<A: SelfStabilizingMis>(
    graph: &Graph,
    algo: &A,
    seed: u64,
    target: FaultTarget,
    max_rounds: u64,
) -> Result<RecoveryOutcome, StabilizationError> {
    if let Err(e) = target.validate(graph.len()) {
        panic!("invalid fault target: {e}");
    }
    let budget_error = |sim: &Simulator<'_, A>| StabilizationError {
        max_rounds,
        stable_count: crate::observer::Snapshot::new(
            graph,
            algo.policy().lmax_values(),
            sim.states(),
        )
        .stable_count(),
        n: graph.len(),
    };

    let config = RunConfig::new(seed).with_max_rounds(max_rounds);
    let levels = initial_levels(algo, &config);
    let mut sim = Simulator::new(graph, algo.clone(), levels, seed).with_engine(config.engine);
    if cfg!(debug_assertions) {
        let checker = crate::invariant::InvariantChecker::for_algorithm(algo);
        sim.set_invariant_hook(move |g, round, states| checker.check_round(g, round, states));
    }
    let first = sim
        .run_until(max_rounds, |s| algo.stabilized(graph, s.states()))
        .ok_or_else(|| budget_error(&sim))?;

    let mut fault_rng = aux_rng(seed, FAULT_RNG_PURPOSE);
    let victims = corrupt_targets(&mut sim, algo, &target, &mut fault_rng);

    let fault_round = sim.round();
    let recovered = sim
        .run_until(fault_round + max_rounds, |s| algo.stabilized(graph, s.states()))
        .ok_or_else(|| budget_error(&sim))?;

    Ok(RecoveryOutcome {
        initial_stabilization: first,
        recovery_rounds: recovered - fault_round,
        corrupted_nodes: victims,
        mis: algo.mis_of(graph, sim.states()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::generators::{classic, random};

    #[test]
    fn run_produces_valid_mis_alg1() {
        let g = random::gnp(80, 0.08, 2);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        for init in [
            InitialLevels::Random,
            InitialLevels::AllMax,
            InitialLevels::AllClaiming,
            InitialLevels::AllOne,
        ] {
            let outcome =
                algo.run(&g, RunConfig::new(3).with_init(init.clone())).expect("stabilizes");
            assert!(graphs::mis::is_maximal_independent_set(&g, &outcome.mis), "init {init:?}");
            assert!(outcome.stabilization_round > 0);
            assert_eq!(outcome.rounds_run, outcome.stabilization_round);
            assert_eq!(outcome.trace.len() as u64, outcome.rounds_run);
        }
    }

    #[test]
    fn run_produces_valid_mis_alg2() {
        let g = random::gnp(80, 0.08, 2);
        let algo = Algorithm2::new(&g, LmaxPolicy::two_hop_degree(&g));
        let outcome = algo.run(&g, RunConfig::new(3)).expect("stabilizes");
        assert!(graphs::mis::is_maximal_independent_set(&g, &outcome.mis));
    }

    #[test]
    fn deterministic_outcomes() {
        let g = random::gnp(50, 0.1, 1);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let a = algo.run(&g, RunConfig::new(9)).unwrap();
        let b = algo.run(&g, RunConfig::new(9)).unwrap();
        assert_eq!(a.mis, b.mis);
        assert_eq!(a.stabilization_round, b.stabilization_round);
        let c = algo.run(&g, RunConfig::new(10)).unwrap();
        // Different seed will almost surely differ in timing.
        assert!(c.stabilization_round != a.stabilization_round || c.mis != a.mis);
    }

    #[test]
    fn custom_initial_levels_are_clamped() {
        let g = classic::path(3);
        let algo = Algorithm1::new(&g, LmaxPolicy::fixed(3, 5));
        let config = RunConfig::new(0).with_init(InitialLevels::Custom(vec![100, -100, 0]));
        let levels = initial_levels(&algo, &config);
        assert_eq!(levels, vec![5, -5, 0]);
        let algo2 = Algorithm2::new(&g, LmaxPolicy::fixed(3, 5));
        let levels2 = initial_levels(&algo2, &config);
        assert_eq!(levels2, vec![5, 0, 0]);
    }

    #[test]
    fn budget_exhaustion_reports_error() {
        let g = random::gnp(60, 0.2, 4);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let err = algo.run(&g, RunConfig::new(1).with_max_rounds(1)).unwrap_err();
        assert_eq!(err.max_rounds, 1);
        assert_eq!(err.n, 60);
        assert!(err.to_string().contains("not stabilized"));
    }

    #[test]
    fn faults_delay_measurement_but_still_stabilize() {
        let g = random::gnp(40, 0.1, 5);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let faults = FaultPlan::new().with_fault(30, FaultTarget::All);
        let outcome =
            algo.run(&g, RunConfig::new(5).with_faults(faults)).expect("stabilizes after fault");
        assert!(outcome.rounds_run >= 30);
        assert_eq!(outcome.stabilization_round, outcome.rounds_run - 30);
        assert!(graphs::mis::is_maximal_independent_set(&g, &outcome.mis));
    }

    #[test]
    fn fault_at_round_zero_counts_every_round_as_fault_free() {
        // A fault "after round 0" corrupts the initial configuration before
        // any step runs; stabilization time is then counted from round 0,
        // i.e. every executed round is fault-free and
        // `stabilization_round == rounds_run`, exactly as in a no-fault run.
        let g = random::gnp(40, 0.1, 5);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let faults = FaultPlan::new().with_fault(0, FaultTarget::All);
        let outcome = algo.run(&g, RunConfig::new(5).with_faults(faults)).expect("stabilizes");
        assert_eq!(outcome.stabilization_round, outcome.rounds_run);
        assert!(outcome.stabilization_round > 0);
        assert!(graphs::mis::is_maximal_independent_set(&g, &outcome.mis));
    }

    #[test]
    fn fault_at_final_round_is_measured_after_corruption() {
        // Schedule a second fault at the exact round where the first
        // recovery would otherwise complete. The runner must apply the
        // corruption *before* the stabilization check of that round, so the
        // count restarts: `stabilization_round == rounds_run - last_fault`.
        let g = random::gnp(40, 0.1, 5);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let first = algo
            .run(
                &g,
                RunConfig::new(5).with_faults(FaultPlan::new().with_fault(30, FaultTarget::All)),
            )
            .expect("stabilizes");
        let landing = first.rounds_run;
        let faults =
            FaultPlan::new().with_fault(30, FaultTarget::All).with_fault(landing, FaultTarget::All);
        let outcome = algo
            .run(&g, RunConfig::new(5).with_faults(faults))
            .expect("stabilizes after the final-round fault");
        assert!(outcome.rounds_run >= landing);
        assert_eq!(outcome.stabilization_round, outcome.rounds_run - landing);
        assert!(graphs::mis::is_maximal_independent_set(&g, &outcome.mis));
    }

    #[test]
    fn engines_agree_on_stabilization() {
        // The scatter engine is bit-identical to the scalar reference, so a
        // full stabilization run must agree in every observable.
        let g = random::gnp(60, 0.08, 11);
        for seed in [1u64, 2, 3] {
            let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
            let scalar = algo
                .run(&g, RunConfig::new(seed).with_engine(EngineMode::Scalar))
                .expect("stabilizes");
            let scatter = algo
                .run(&g, RunConfig::new(seed).with_engine(EngineMode::Scatter))
                .expect("stabilizes");
            assert_eq!(scalar.mis, scatter.mis);
            assert_eq!(scalar.levels, scatter.levels);
            assert_eq!(scalar.stabilization_round, scatter.stabilization_round);
            assert_eq!(scalar.rounds_run, scatter.rounds_run);
            assert_eq!(scalar.trace.reports(), scatter.trace.reports());
        }
    }

    #[test]
    fn level_history_recording() {
        let g = classic::cycle(10);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let outcome = algo.run(&g, RunConfig::new(2).with_level_recording()).expect("stabilizes");
        let history = outcome.level_history.expect("recording was enabled");
        assert_eq!(history.len() as u64, outcome.rounds_run + 1);
        assert_eq!(history.last().unwrap(), &outcome.levels);
    }

    #[test]
    fn recovery_measurement() {
        let g = random::gnp(50, 0.1, 6);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let rec = run_recovery(&g, &algo, 6, FaultTarget::RandomFraction(0.5), 100_000)
            .expect("recovers");
        assert!(rec.initial_stabilization > 0);
        assert!(rec.recovery_rounds > 0);
        assert!(rec.corrupted_nodes > 0);
        assert!(graphs::mis::is_maximal_independent_set(&g, &rec.mis));
    }

    #[test]
    fn recovery_for_two_channel() {
        let g = random::gnp(50, 0.1, 6);
        let algo = Algorithm2::new(&g, LmaxPolicy::two_hop_degree(&g));
        let rec = run_recovery(&g, &algo, 6, FaultTarget::All, 100_000).expect("recovers");
        assert_eq!(rec.corrupted_nodes, 50);
        assert!(graphs::mis::is_maximal_independent_set(&g, &rec.mis));
    }
}
