//! Algorithm 2 of the paper: the two-channel variant (Corollary 2.3).
//!
//! Pseudocode (paper §7, Algorithm 2), executed by every vertex `v`:
//!
//! ```text
//! state: ℓ ∈ {0, …, ℓmax(v)}
//! if 0 < ℓ < ℓmax(v): beep1 ← true with probability 2^-ℓ
//! else:               beep1 ← false
//! beep2 ← (ℓ = 0)
//! send the chosen signals; receive neighbors' signals
//! if beep2 signal received:      ℓ ← ℓmax(v)
//! else if beep1 signal received: ℓ ← min(ℓ + 1, ℓmax(v))
//! else if beep1:                 ℓ ← 0
//! else if beep2 = false:         ℓ ← max(ℓ - 1, 1)
//! ```
//!
//! `ℓ = 0` means "in the MIS": the vertex beeps on channel 2 in every
//! round, which is the persistent join announcement that replaces the
//! original Jeavons–Scott–Xu two-round phases. `ℓ = ℓmax(v)` means "not in
//! the MIS". The second channel resolves the conflict the single-channel
//! algorithm handles with negative levels: two adjacent vertices that both
//! reach `ℓ = 0` hear each other on channel 2 and both retreat to `ℓmax`.

use beeping::protocol::{BeepSignal, BeepingProtocol, Channels};
use graphs::{Graph, NodeId};
use rand::{Rng, RngCore};

use crate::invariant::{debug_assert_level_in_range, LevelSpace};
use crate::levels::{beep1_probability, update_level_two_channel, Level};
use crate::observer;
use crate::policy::LmaxPolicy;
use crate::runner::{self, Outcome, RunConfig, StabilizationError};

/// The two-channel self-stabilizing MIS protocol (paper Algorithm 2,
/// Corollary 2.3).
///
/// # Example
///
/// ```
/// use graphs::generators::classic;
/// use mis::{Algorithm2, LmaxPolicy, RunConfig};
///
/// let g = classic::cycle(32);
/// let algo = Algorithm2::new(&g, LmaxPolicy::two_hop_degree(&g));
/// let outcome = algo.run(&g, RunConfig::new(1)).unwrap();
/// assert!(graphs::mis::is_maximal_independent_set(&g, &outcome.mis));
/// ```
#[derive(Debug, Clone)]
pub struct Algorithm2 {
    policy: LmaxPolicy,
}

impl Algorithm2 {
    /// Creates the protocol for `graph` under `policy`.
    ///
    /// # Panics
    ///
    /// Panics if the policy does not cover exactly `graph.len()` vertices.
    pub fn new(graph: &Graph, policy: LmaxPolicy) -> Algorithm2 {
        assert_eq!(policy.len(), graph.len(), "policy must assign ℓmax to every vertex");
        Algorithm2 { policy }
    }

    /// The knowledge policy in use.
    pub fn policy(&self) -> &LmaxPolicy {
        &self.policy
    }

    /// `ℓmax(v)`.
    pub fn lmax(&self, v: NodeId) -> Level {
        self.policy.lmax(v)
    }

    /// The stable MIS members of a level snapshot: `ℓ(v) = 0` with every
    /// neighbor at its `ℓmax`.
    pub fn mis_members(&self, graph: &Graph, levels: &[Level]) -> Vec<bool> {
        observer::stable_mis_two_channel(graph, self.policy.lmax_values(), levels)
    }

    /// `true` if every vertex is stable — MIS members and their dominated
    /// neighbors cover the whole graph.
    pub fn is_stabilized(&self, graph: &Graph, levels: &[Level]) -> bool {
        observer::is_stabilized_two_channel(graph, self.policy.lmax_values(), levels)
    }

    /// Runs the algorithm to stabilization under `config`.
    ///
    /// # Errors
    ///
    /// Returns [`StabilizationError`] if the round budget is exhausted
    /// before stabilization.
    pub fn run(&self, graph: &Graph, config: RunConfig) -> Result<Outcome, StabilizationError> {
        runner::run_algorithm2(graph, self, config)
    }
}

impl BeepingProtocol for Algorithm2 {
    type State = Level;

    fn channels(&self) -> Channels {
        Channels::Two
    }

    fn transmit(&self, node: NodeId, state: &Level, rng: &mut dyn RngCore) -> BeepSignal {
        let lmax = self.policy.lmax(node);
        let l = *state;
        debug_assert_level_in_range(l, lmax, LevelSpace::NonNegative);
        // `beep1_probability` asserts ℓ ∈ [0, ℓmax]; the draw is gated on
        // p > 0 so the RNG stream is untouched in the deterministic regions.
        let p1 = beep1_probability(l, lmax);
        let beep1 = p1 > 0.0 && rng.gen_bool(p1);
        let beep2 = l == 0;
        BeepSignal::new(beep1, beep2)
    }

    fn receive(
        &self,
        node: NodeId,
        state: &mut Level,
        sent: BeepSignal,
        heard: BeepSignal,
        _rng: &mut dyn RngCore,
    ) {
        let lmax = self.policy.lmax(node);
        *state = update_level_two_channel(
            *state,
            lmax,
            sent.on_channel1(),
            sent.on_channel2(),
            heard.on_channel1(),
            heard.on_channel2(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beeping::rng::node_rng;
    use beeping::Simulator;
    use graphs::generators::{classic, random};

    #[test]
    fn mis_member_beeps_channel2_forever() {
        let g = classic::path(3);
        let algo = Algorithm2::new(&g, LmaxPolicy::fixed(3, 6));
        let mut rng = node_rng(0, 1);
        for _ in 0..50 {
            let s = algo.transmit(1, &0, &mut rng);
            assert!(s.on_channel2());
            assert!(!s.on_channel1());
        }
    }

    #[test]
    fn node_at_lmax_is_silent() {
        let g = classic::path(3);
        let algo = Algorithm2::new(&g, LmaxPolicy::fixed(3, 6));
        let mut rng = node_rng(0, 0);
        for _ in 0..50 {
            assert!(algo.transmit(0, &6, &mut rng).is_silent());
        }
    }

    #[test]
    fn adjacent_mis_claims_resolve() {
        // Both endpoints of an edge claim MIS membership (ℓ = 0): each hears
        // the other's channel-2 beep and must retreat to ℓmax.
        let g = classic::path(2);
        let algo = Algorithm2::new(&g, LmaxPolicy::fixed(2, 5));
        let mut sim = Simulator::new(&g, algo.clone(), vec![0, 0], 7);
        sim.step();
        assert_eq!(sim.states(), &[5, 5]);
    }

    #[test]
    fn stable_configuration_is_fixpoint() {
        let g = classic::path(3);
        let algo = Algorithm2::new(&g, LmaxPolicy::fixed(3, 6));
        let levels = vec![6, 0, 6];
        assert!(algo.is_stabilized(&g, &levels));
        let mut sim = Simulator::new(&g, algo.clone(), levels.clone(), 3);
        sim.run(50);
        assert_eq!(sim.states(), levels.as_slice());
        assert_eq!(algo.mis_members(&g, sim.states()), vec![false, true, false]);
    }

    #[test]
    fn converges_on_random_graph_from_adversarial_inits() {
        let g = random::gnp(60, 0.1, 5);
        let algo = Algorithm2::new(&g, LmaxPolicy::two_hop_degree(&g));
        let lmax: Vec<Level> = algo.policy().lmax_values().to_vec();
        for (name, init) in [
            ("all in-MIS claim", vec![0; 60]),
            ("all at ℓmax", lmax.clone()),
            ("all at 1", vec![1; 60]),
        ] {
            let mut sim = Simulator::new(&g, algo.clone(), init, 11);
            let r = sim.run_until(20_000, |s| algo.is_stabilized(s.graph(), s.states()));
            assert!(r.is_some(), "did not stabilize from {name}");
            let mis = algo.mis_members(&g, sim.states());
            assert!(graphs::mis::is_maximal_independent_set(&g, &mis), "from {name}");
        }
    }

    #[test]
    fn level_update_via_receive() {
        let g = classic::path(2);
        let algo = Algorithm2::new(&g, LmaxPolicy::fixed(2, 4));
        // Hearing beep2 forces ℓmax regardless of anything else.
        let mut rng = node_rng(0, 0);
        let mut l = 2;
        algo.receive(0, &mut l, BeepSignal::silent(), BeepSignal::channel2(), &mut rng);
        assert_eq!(l, 4);
        // Lone channel-1 beep joins the MIS.
        let mut l = 3;
        algo.receive(0, &mut l, BeepSignal::channel1(), BeepSignal::silent(), &mut rng);
        assert_eq!(l, 0);
    }

    #[test]
    #[should_panic(expected = "ℓmax to every vertex")]
    fn policy_size_mismatch_panics() {
        let g = classic::path(3);
        Algorithm2::new(&g, LmaxPolicy::fixed(5, 5));
    }
}
