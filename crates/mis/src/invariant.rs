//! Runtime invariant checking: the paper's state-space and activation-
//! function invariants, enforced on every round in debug builds.
//!
//! [`crate::runner::run`] installs an [`InvariantChecker`] into
//! [`beeping::Simulator`]'s per-round hook when `debug_assertions` are on,
//! so every debug-mode test and experiment continuously validates:
//!
//! 1. **ℓ-range** — every level stays inside the algorithm's state space
//!    (`{-ℓmax, …, ℓmax}` for Algorithm 1, `{0, …, ℓmax}` for Algorithm 2);
//! 2. **probability-table conformance** — the beeping probability implied
//!    by each level matches Figure 1's table `{1, 2^{-ℓ}, 0}`, recomputed
//!    here independently of [`crate::levels`] so the check is not
//!    tautological;
//! 3. **MIS validity at stability** — whenever `S_t = V` holds, the claimed
//!    set `I_t` is a maximal independent set of the graph.
//!
//! The checker observes state only and draws no randomness, so installing
//! it never changes an execution; release builds skip it entirely.

use graphs::Graph;

use crate::levels::{beep1_probability, beep_probability, claiming_level, Level};
use crate::observer;
use crate::policy::LmaxPolicy;
use crate::runner::SelfStabilizingMis;

/// Which level state space a protocol uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LevelSpace {
    /// Algorithm 1: `ℓ ∈ {-ℓmax, …, ℓmax}`.
    Signed,
    /// Algorithm 2: `ℓ ∈ {0, …, ℓmax}`.
    NonNegative,
}

impl LevelSpace {
    /// `true` iff `level` lies inside this space for the given `ℓmax`.
    pub fn contains(self, level: Level, lmax: Level) -> bool {
        let lo = match self {
            LevelSpace::Signed => claiming_level(lmax),
            LevelSpace::NonNegative => 0,
        };
        (lo..=lmax).contains(&level)
    }
}

/// The consolidated ℓ-range assertion used by protocol hot paths and
/// the [`InvariantChecker`] — one definition instead of per-protocol
/// ad-hoc `debug_assert!`s.
#[inline]
#[track_caller]
pub fn debug_assert_level_in_range(level: Level, lmax: Level, space: LevelSpace) {
    debug_assert!(
        space.contains(level, lmax),
        "ℓ={level} outside the {space:?} state space for ℓmax={lmax}"
    );
}

/// Per-round checker of the paper's invariants; installed by the runner via
/// [`beeping::Simulator::set_invariant_hook`] in debug builds.
#[derive(Debug, Clone)]
pub struct InvariantChecker {
    lmax: Vec<Level>,
    space: LevelSpace,
}

impl InvariantChecker {
    /// A checker for the given knowledge policy and state space.
    pub fn new(policy: &LmaxPolicy, space: LevelSpace) -> InvariantChecker {
        InvariantChecker { lmax: policy.lmax_values().to_vec(), space }
    }

    /// A checker matching `algo`'s state space.
    pub fn for_algorithm<A: SelfStabilizingMis>(algo: &A) -> InvariantChecker {
        let space =
            if algo.has_negative_levels() { LevelSpace::Signed } else { LevelSpace::NonNegative };
        InvariantChecker::new(algo.policy(), space)
    }

    /// Validates one post-round configuration.
    ///
    /// # Panics
    ///
    /// Panics with round and node context on any violated invariant.
    pub fn check_round(&self, graph: &Graph, round: u64, levels: &[Level]) {
        assert_eq!(
            levels.len(),
            self.lmax.len(),
            "round {round}: configuration size does not match the policy"
        );
        for (v, (&level, &lmax)) in levels.iter().zip(&self.lmax).enumerate() {
            assert!(
                self.space.contains(level, lmax),
                "round {round}: node {v} has ℓ={level} outside the {:?} state space for ℓmax={lmax}",
                self.space
            );
            let (actual, expected) = match self.space {
                LevelSpace::Signed => (beep_probability(level, lmax), table_signed(level, lmax)),
                LevelSpace::NonNegative => {
                    (beep1_probability(level, lmax), table_beep1(level, lmax))
                }
            };
            assert!(
                actual.to_bits() == expected.to_bits(),
                "round {round}: node {v} at ℓ={level} beeps with p={actual}, \
                 Figure 1's table says {expected}"
            );
        }
        self.check_stability(graph, round, levels);
    }

    /// If the configuration satisfies the stabilization criterion
    /// `S_t = V`, the claimed set `I_t` must be a maximal independent set.
    fn check_stability(&self, graph: &Graph, round: u64, levels: &[Level]) {
        let stabilized = match self.space {
            LevelSpace::Signed => observer::is_stabilized(graph, &self.lmax, levels),
            LevelSpace::NonNegative => {
                observer::is_stabilized_two_channel(graph, &self.lmax, levels)
            }
        };
        if !stabilized {
            return;
        }
        let mis = match self.space {
            LevelSpace::Signed => observer::stable_mis(graph, &self.lmax, levels),
            LevelSpace::NonNegative => observer::stable_mis_two_channel(graph, &self.lmax, levels),
        };
        assert!(
            graphs::mis::is_maximal_independent_set(graph, &mis),
            "round {round}: S_t = V but I_t is not a maximal independent set"
        );
    }
}

/// Figure 1's table for Algorithm 1, written with halving instead of
/// `2^{-ℓ}` so it is independent of [`beep_probability`]'s formula.
fn table_signed(level: Level, lmax: Level) -> f64 {
    if level <= 0 {
        1.0
    } else if level == lmax {
        0.0
    } else {
        0.5f64.powi(level)
    }
}

/// Algorithm 2's channel-1 table: geometric strictly inside `(0, ℓmax)`,
/// silent at both boundaries.
fn table_beep1(level: Level, lmax: Level) -> f64 {
    if level > 0 && level < lmax {
        0.5f64.powi(level)
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm1::Algorithm1;
    use crate::algorithm2::Algorithm2;
    use graphs::generators::classic;

    #[test]
    fn spaces_contain_their_ranges() {
        assert!(LevelSpace::Signed.contains(-4, 4));
        assert!(LevelSpace::Signed.contains(4, 4));
        assert!(!LevelSpace::Signed.contains(5, 4));
        assert!(!LevelSpace::NonNegative.contains(-1, 4));
        assert!(LevelSpace::NonNegative.contains(0, 4));
        assert!(!LevelSpace::NonNegative.contains(5, 4));
    }

    #[test]
    fn accepts_valid_configurations() {
        let g = classic::cycle(6);
        let checker = InvariantChecker::new(&LmaxPolicy::global_delta(&g), LevelSpace::Signed);
        checker.check_round(&g, 1, &[1; 6]);
    }

    #[test]
    #[should_panic(expected = "outside the Signed state space")]
    fn rejects_out_of_range_level() {
        let g = classic::cycle(4);
        let policy = LmaxPolicy::fixed(4, 3);
        let checker = InvariantChecker::new(&policy, LevelSpace::Signed);
        checker.check_round(&g, 7, &[1, 1, 4, 1]);
    }

    #[test]
    #[should_panic(expected = "outside the NonNegative state space")]
    fn rejects_negative_level_in_two_channel_space() {
        let g = classic::cycle(4);
        let policy = LmaxPolicy::fixed(4, 3);
        let checker = InvariantChecker::new(&policy, LevelSpace::NonNegative);
        checker.check_round(&g, 7, &[1, -1, 1, 1]);
    }

    #[test]
    fn accepts_stabilized_configuration() {
        // Path 0-1-2: the middle node claims, the endpoints sit at ℓmax.
        let g = classic::path(3);
        let policy = LmaxPolicy::fixed(3, 4);
        let checker = InvariantChecker::new(&policy, LevelSpace::Signed);
        checker.check_round(&g, 9, &[4, claiming_level(4), 4]);
    }

    #[test]
    fn for_algorithm_picks_the_right_space() {
        let g = classic::cycle(5);
        let a1 =
            InvariantChecker::for_algorithm(&Algorithm1::new(&g, LmaxPolicy::global_delta(&g)));
        assert_eq!(a1.space, LevelSpace::Signed);
        let a2 =
            InvariantChecker::for_algorithm(&Algorithm2::new(&g, LmaxPolicy::global_delta(&g)));
        assert_eq!(a2.space, LevelSpace::NonNegative);
    }
}
