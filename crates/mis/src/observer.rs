//! Analysis instrumentation mirroring the paper's proof machinery (§3, §6).
//!
//! Given a snapshot of all levels, this module computes the random-process
//! observables the analysis reasons about:
//!
//! - the stable MIS `I_t` and stable set `S_t = I_t ∪ N(I_t)`;
//! - `μ_t(v) = min_{u∈N(v)} ℓ_t(u)/ℓmax(u)`;
//! - prominent vertices (`ℓ ≤ 0`, Def 3.3) and **platinum rounds** (a
//!   prominent vertex in `N⁺(v)`);
//! - beep probabilities `p_t(v)` and the potential `d_t(v) = Σ_{u∈N(v)}
//!   p_t(u)`;
//! - **light** vertices and `d_t^L(v)` (Def 6.1) and **golden rounds**
//!   (Def 6.2);
//! - the residuals `η_t(v)` and `η′_t(v)` that bound post-platinum behavior
//!   (Lemma 3.6).
//!
//! The lemma-level experiments (L3.5, L3.6) measure these quantities over
//! live executions and compare their empirical distributions against the
//! bounds the paper proves.

use graphs::{Graph, NodeId};

use crate::levels::{beep_probability, claiming_level, Level};

/// A read-only view of one round's configuration, with the stable set
/// precomputed.
///
/// # Example
///
/// ```
/// use graphs::generators::classic;
/// use mis::observer::Snapshot;
///
/// let g = classic::path(3);
/// let lmax = [5, 5, 5];
/// let levels = [5, -5, 5]; // middle vertex stable in the MIS
/// let snap = Snapshot::new(&g, &lmax, &levels);
/// assert!(snap.in_mis(1));
/// assert!(snap.is_stable(0) && snap.is_stable(2));
/// assert!(snap.is_stabilized());
/// ```
#[derive(Debug, Clone)]
pub struct Snapshot<'a> {
    graph: &'a Graph,
    lmax: &'a [Level],
    levels: &'a [Level],
    in_mis: Vec<bool>,
    stable: Vec<bool>,
}

impl<'a> Snapshot<'a> {
    /// Builds a snapshot for Algorithm 1 semantics
    /// (in-MIS ⟺ `ℓ(v) = -ℓmax(v)` with all neighbors at their `ℓmax`).
    ///
    /// # Panics
    ///
    /// Panics if `lmax` and `levels` do not both have `graph.len()` entries.
    pub fn new(graph: &'a Graph, lmax: &'a [Level], levels: &'a [Level]) -> Snapshot<'a> {
        let in_mis = stable_mis(graph, lmax, levels);
        let stable = close_under_neighbors(graph, &in_mis);
        assert_eq!(levels.len(), graph.len(), "one level per vertex");
        Snapshot { graph, lmax, levels, in_mis, stable }
    }

    /// Builds a snapshot for Algorithm 2 semantics (in-MIS ⟺ `ℓ(v) = 0`
    /// with all neighbors at their `ℓmax`).
    ///
    /// # Panics
    ///
    /// Panics if `lmax` and `levels` do not both have `graph.len()` entries.
    pub fn new_two_channel(
        graph: &'a Graph,
        lmax: &'a [Level],
        levels: &'a [Level],
    ) -> Snapshot<'a> {
        let in_mis = stable_mis_two_channel(graph, lmax, levels);
        let stable = close_under_neighbors(graph, &in_mis);
        assert_eq!(levels.len(), graph.len(), "one level per vertex");
        Snapshot { graph, lmax, levels, in_mis, stable }
    }

    /// The graph underlying the snapshot.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// `ℓ_t(v)`.
    pub fn level(&self, v: NodeId) -> Level {
        self.levels[v]
    }

    /// `v ∈ I_t`: stable member of the MIS.
    pub fn in_mis(&self, v: NodeId) -> bool {
        self.in_mis[v]
    }

    /// `v ∈ S_t = I_t ∪ N(I_t)`: stable vertex.
    pub fn is_stable(&self, v: NodeId) -> bool {
        self.stable[v]
    }

    /// The `I_t` membership bitmap.
    pub fn mis(&self) -> &[bool] {
        &self.in_mis
    }

    /// The `S_t` membership bitmap.
    pub fn stable_set(&self) -> &[bool] {
        &self.stable
    }

    /// `S_t = V`: the stabilization criterion.
    pub fn is_stabilized(&self) -> bool {
        self.stable.iter().all(|&s| s)
    }

    /// Number of stable vertices `|S_t|`.
    pub fn stable_count(&self) -> usize {
        self.stable.iter().filter(|&&s| s).count()
    }

    /// `μ_t(v) = min_{u ∈ N(v)} ℓ_t(u) / ℓmax(u)` (paper §3); `1.0` for an
    /// isolated vertex (the minimum over an empty set is vacuous and the
    /// paper's stability condition `μ = 1` must hold for it).
    pub fn mu(&self, v: NodeId) -> f64 {
        self.graph
            .neighbors(v)
            .iter()
            .map(|&u| {
                let u = u as usize;
                self.levels[u] as f64 / self.lmax[u] as f64
            })
            .fold(1.0f64, f64::min)
    }

    /// Prominent vertex (Def 3.3): `ℓ_t(v) ≤ 0`.
    pub fn is_prominent(&self, v: NodeId) -> bool {
        self.levels[v] <= 0
    }

    /// Platinum round for `v` (Def 3.3): some vertex of `N⁺(v)` is
    /// prominent.
    pub fn is_platinum_for(&self, v: NodeId) -> bool {
        self.is_prominent(v)
            || self.graph.neighbors(v).iter().any(|&u| self.is_prominent(u as usize))
    }

    /// `p_t(v)`: the beeping probability implied by the level (§3).
    pub fn beep_probability(&self, v: NodeId) -> f64 {
        beep_probability(self.levels[v], self.lmax[v])
    }

    /// `d_t(v) = Σ_{u ∈ N(v)} p_t(u)`: expected number of beeping
    /// neighbors.
    pub fn d(&self, v: NodeId) -> f64 {
        self.graph.neighbors(v).iter().map(|&u| self.beep_probability(u as usize)).sum()
    }

    /// Light vertex (Def 6.1): `μ_t(v) > 0 ∧ (d_t(v) ≤ 10 ∨ ℓ_t(v) ≤ 0)`.
    pub fn is_light(&self, v: NodeId) -> bool {
        self.mu(v) > 0.0 && (self.d(v) <= 10.0 || self.levels[v] <= 0)
    }

    /// `d_t^L(v)`: the expected number of beeping **light** neighbors.
    pub fn d_light(&self, v: NodeId) -> f64 {
        self.graph
            .neighbors(v)
            .iter()
            .map(|&u| u as usize)
            .filter(|&u| self.is_light(u))
            .map(|u| self.beep_probability(u))
            .sum()
    }

    /// Golden round for `v` (Def 6.2):
    /// `(ℓ_t(v) ≤ 1 ∧ d_t(v) ≤ 0.02) ∨ d_t^L(v) > 0.001`.
    pub fn is_golden_for(&self, v: NodeId) -> bool {
        (self.levels[v] <= 1 && self.d(v) <= 0.02) || self.d_light(v) > 0.001
    }

    /// `η_t(v) = Σ_{u ∈ N(v) \ S_t} 2^{-ℓmax(u)}` (paper §3).
    pub fn eta(&self, v: NodeId) -> f64 {
        self.graph
            .neighbors(v)
            .iter()
            .map(|&u| u as usize)
            .filter(|&u| !self.stable[u])
            .map(|u| 2f64.powi(-self.lmax[u]))
            .sum()
    }

    /// `η′_t(v) = Σ_{u ∈ N(v) \ S_t : ℓmax(u) > ℓmax(v)} 2^{-ℓmax(v)}`
    /// (paper §3).
    pub fn eta_prime(&self, v: NodeId) -> f64 {
        let lv = self.lmax[v];
        self.graph
            .neighbors(v)
            .iter()
            .map(|&u| u as usize)
            .filter(|&u| !self.stable[u] && self.lmax[u] > lv)
            .map(|_| 2f64.powi(-lv))
            .sum()
    }
}

/// `I_t` for Algorithm 1: `ℓ(v) = -ℓmax(v)` and every neighbor at its
/// `ℓmax`. For an isolated vertex the neighbor condition is vacuous.
///
/// # Panics
///
/// Panics if `lmax` and `levels` do not both have `graph.len()` entries.
pub fn stable_mis(graph: &Graph, lmax: &[Level], levels: &[Level]) -> Vec<bool> {
    assert_eq!(lmax.len(), graph.len(), "one ℓmax per vertex");
    assert_eq!(levels.len(), graph.len(), "one level per vertex");
    graph
        .nodes()
        .map(|v| {
            levels[v] == claiming_level(lmax[v])
                && graph.neighbors(v).iter().all(|&u| levels[u as usize] == lmax[u as usize])
        })
        .collect()
}

/// `I_t` for Algorithm 2: `ℓ(v) = 0` and every neighbor at its `ℓmax`.
///
/// # Panics
///
/// Panics if `lmax` and `levels` do not both have `graph.len()` entries.
pub fn stable_mis_two_channel(graph: &Graph, lmax: &[Level], levels: &[Level]) -> Vec<bool> {
    assert_eq!(lmax.len(), graph.len(), "one ℓmax per vertex");
    assert_eq!(levels.len(), graph.len(), "one level per vertex");
    graph
        .nodes()
        .map(|v| {
            levels[v] == 0
                && graph.neighbors(v).iter().all(|&u| levels[u as usize] == lmax[u as usize])
        })
        .collect()
}

/// `S_t = I ∪ N(I)` from an `I` bitmap.
fn close_under_neighbors(graph: &Graph, in_set: &[bool]) -> Vec<bool> {
    let mut stable = in_set.to_vec();
    for v in graph.nodes() {
        if in_set[v] {
            for &u in graph.neighbors(v) {
                stable[u as usize] = true;
            }
        }
    }
    stable
}

/// `S_t = V` for Algorithm 1 — the stabilization criterion used everywhere.
pub fn is_stabilized(graph: &Graph, lmax: &[Level], levels: &[Level]) -> bool {
    // Direct check without allocating: every vertex is in I_t or has an
    // I_t neighbor.
    let in_mis = stable_mis(graph, lmax, levels);
    graph.nodes().all(|v| in_mis[v] || graph.neighbors(v).iter().any(|&u| in_mis[u as usize]))
}

/// `S_t = V` for Algorithm 2.
pub fn is_stabilized_two_channel(graph: &Graph, lmax: &[Level], levels: &[Level]) -> bool {
    let in_mis = stable_mis_two_channel(graph, lmax, levels);
    graph.nodes().all(|v| in_mis[v] || graph.neighbors(v).iter().any(|&u| in_mis[u as usize]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::generators::classic;

    #[test]
    fn stable_mis_path() {
        let g = classic::path(5);
        let lmax = vec![4; 5];
        // 0 and 2 in MIS; 4 not yet (neighbor 3 at ℓmax but ℓ(4) = 2).
        let levels = vec![-4, 4, -4, 4, 2];
        assert_eq!(stable_mis(&g, &lmax, &levels), vec![true, false, true, false, false]);
        let snap = Snapshot::new(&g, &lmax, &levels);
        assert_eq!(snap.stable_set(), &[true, true, true, true, false]);
        assert!(!snap.is_stabilized());
        assert_eq!(snap.stable_count(), 4);
    }

    #[test]
    fn negative_level_without_silenced_neighbors_is_not_stable() {
        let g = classic::path(2);
        let lmax = vec![4, 4];
        let levels = vec![-4, -4];
        assert_eq!(stable_mis(&g, &lmax, &levels), vec![false, false]);
        assert!(!is_stabilized(&g, &lmax, &levels));
    }

    #[test]
    fn isolated_vertex_stability() {
        let g = graphs::Graph::empty(1);
        let lmax = vec![3];
        assert!(is_stabilized(&g, &lmax, &[-3]));
        assert!(!is_stabilized(&g, &lmax, &[3]));
        assert!(is_stabilized_two_channel(&g, &lmax, &[0]));
        assert!(!is_stabilized_two_channel(&g, &lmax, &[3]));
    }

    #[test]
    fn mu_definition() {
        let g = classic::path(3);
        let lmax = vec![4, 8, 4];
        let levels = vec![2, 4, -4];
        let snap = Snapshot::new(&g, &lmax, &levels);
        // μ(1) = min(ℓ(0)/ℓmax(0), ℓ(2)/ℓmax(2)) = min(0.5, -1) = -1.
        assert!((snap.mu(1) - (-1.0)).abs() < 1e-12);
        // μ(0) = ℓ(1)/ℓmax(1) = 0.5.
        assert!((snap.mu(0) - 0.5).abs() < 1e-12);
        // Isolated vertex: μ = 1 by convention.
        let g1 = graphs::Graph::empty(1);
        let lm = vec![4];
        let lv = vec![2];
        assert_eq!(Snapshot::new(&g1, &lm, &lv).mu(0), 1.0);
    }

    #[test]
    fn prominent_and_platinum() {
        let g = classic::path(3);
        let lmax = vec![5; 3];
        let levels = vec![3, 0, 5];
        let snap = Snapshot::new(&g, &lmax, &levels);
        assert!(!snap.is_prominent(0));
        assert!(snap.is_prominent(1));
        // 0 and 2 see prominent neighbor 1; 1 is itself prominent.
        for v in 0..3 {
            assert!(snap.is_platinum_for(v));
        }
        let levels = vec![3, 2, 5];
        let snap = Snapshot::new(&g, &lmax, &levels);
        assert!(!snap.is_platinum_for(0));
    }

    #[test]
    fn d_potential() {
        let g = classic::star(4);
        let lmax = vec![6; 4];
        // Leaves at levels 1, 2, 6 → p = 0.5, 0.25, 0.
        let levels = vec![6, 1, 2, 6];
        let snap = Snapshot::new(&g, &lmax, &levels);
        assert!((snap.d(0) - 0.75).abs() < 1e-12);
        // Leaf sees only the hub (p = 0).
        assert_eq!(snap.d(1), 0.0);
    }

    #[test]
    fn light_and_golden() {
        let g = classic::path(3);
        let lmax = vec![6; 3];
        let levels = vec![6, 6, 6];
        let snap = Snapshot::new(&g, &lmax, &levels);
        // All silent: μ = 1 > 0 and d = 0 ≤ 10 → light; golden needs ℓ ≤ 1,
        // so nobody is golden via clause (a) and d_L = 0 kills clause (b).
        for v in 0..3 {
            assert!(snap.is_light(v));
            assert!(!snap.is_golden_for(v));
        }
        // ℓ(1) = 1 with silent neighbors: golden via clause (a).
        let levels = vec![6, 1, 6];
        let snap = Snapshot::new(&g, &lmax, &levels);
        assert!(snap.is_golden_for(1));
        // Its neighbors see a light beeping neighbor: d_L = 0.5 > 0.001 →
        // golden via clause (b).
        assert!(snap.is_golden_for(0));
    }

    #[test]
    fn eta_and_eta_prime() {
        let g = classic::star(3); // hub 0, leaves 1..2
        let lmax = vec![4, 6, 8];
        let levels = vec![1, 1, 1]; // nobody stable
        let snap = Snapshot::new(&g, &lmax, &levels);
        // η(0) = 2^-6 + 2^-8.
        assert!((snap.eta(0) - (2f64.powi(-6) + 2f64.powi(-8))).abs() < 1e-15);
        // η′(0): both leaves have larger ℓmax → 2 · 2^-4.
        assert!((snap.eta_prime(0) - 2.0 * 2f64.powi(-4)).abs() < 1e-15);
        // η′(1): neighbor (hub) has smaller ℓmax → 0.
        assert_eq!(snap.eta_prime(1), 0.0);
    }

    #[test]
    fn eta_excludes_stable_vertices() {
        let g = classic::path(3);
        let lmax = vec![4; 3];
        let levels = vec![4, -4, 4]; // all stable
        let snap = Snapshot::new(&g, &lmax, &levels);
        for v in 0..3 {
            assert_eq!(snap.eta(v), 0.0);
            assert_eq!(snap.eta_prime(v), 0.0);
        }
        assert!(snap.is_stabilized());
    }

    #[test]
    fn two_channel_stability() {
        let g = classic::path(3);
        let lmax = vec![5; 3];
        assert!(is_stabilized_two_channel(&g, &lmax, &[5, 0, 5]));
        assert!(!is_stabilized_two_channel(&g, &lmax, &[5, 0, 4]));
        let snap = Snapshot::new_two_channel(&g, &lmax, &[5, 0, 5]);
        assert_eq!(snap.mis(), &[false, true, false]);
    }
}
