//! The paper's analysis constants and preconditions, as executable code.
//!
//! Centralizing the formulas keeps the experiments honest: instead of
//! hard-coding magic numbers, the drivers derive every threshold from the
//! same definitions the paper states, and the tests here cross-check them
//! against the policies in [`crate::policy`].

use graphs::Graph;

use crate::levels::{log2_ceil, Level};
use crate::policy::LmaxPolicy;

/// The Lemma 3.5 constant `γ = e⁻³⁰`.
pub fn gamma() -> f64 {
    (-30.0f64).exp()
}

/// The Lemma 6.7 constant `γ ≥ e⁻²⁷` (golden → platinum conversion).
pub fn gamma_golden() -> f64 {
    (-27.0f64).exp()
}

/// The η threshold `0.0001` used by Lemmas 3.5 / 6.3.
pub const ETA_THRESHOLD: f64 = 0.0001;

/// The precondition of Lemmas 3.5 / 3.6 / 6.3:
/// `ℓmax(w) ≥ log₂ deg(w) + 4` for all `w`.
pub fn satisfies_lemma_precondition(g: &Graph, policy: &LmaxPolicy) -> bool {
    g.nodes().all(|v| i64::from(policy.lmax(v)) >= i64::from(log2_ceil(g.degree(v)) + 4))
}

/// The Theorem 2.1 precondition: constant `ℓmax ∈ [log Δ + c1, c2·log n]`
/// with `c1 ≥ 15`. Checks the lower end for the given `c1` (the upper end
/// only matters for the *bound*, not correctness).
pub fn satisfies_thm21_precondition(g: &Graph, policy: &LmaxPolicy, c1: u32) -> bool {
    let needed = (log2_ceil(g.max_degree()) + c1) as Level;
    let uniform = policy.lmax_values().windows(2).all(|w| w[0] == w[1]);
    uniform && policy.lmax_values().first().is_none_or(|&l| l >= needed)
}

/// The Theorem 2.2 precondition: `ℓmax(v) ≥ 2·log₂ deg(v) + c1` with
/// `c1 ≥ 30`.
pub fn satisfies_thm22_precondition(g: &Graph, policy: &LmaxPolicy, c1: u32) -> bool {
    g.nodes().all(|v| i64::from(policy.lmax(v)) >= i64::from(2 * log2_ceil(g.degree(v)) + c1))
}

/// The Corollary 2.3 precondition: `ℓmax(v) ≥ 2·log₂ deg₂(v) + c1` with
/// `c1 ≥ 15`.
pub fn satisfies_cor23_precondition(g: &Graph, policy: &LmaxPolicy, c1: u32) -> bool {
    g.nodes().all(|v| i64::from(policy.lmax(v)) >= i64::from(2 * log2_ceil(g.deg2(v)) + c1))
}

/// Theorem 2.1's static η bound: with the uniform policy
/// `ℓmax = log₂ Δ + c1`, every vertex satisfies
/// `η_t(v) ≤ deg(v)·2^{-ℓmax} ≤ 2^{-c1}` at all times. Returns `2^{-c1}`.
pub fn eta_bound_thm21(c1: u32) -> f64 {
    2f64.powi(-i32::try_from(c1).unwrap_or(i32::MAX))
}

/// The burn-in horizon of Lemma 3.1: `max_w ℓmax(w)` rounds after which
/// every vertex has `ℓ > 0` or `μ > 0` forever.
pub fn burn_in_horizon(policy: &LmaxPolicy) -> u64 {
    policy.max_lmax() as u64
}

/// Lemma 3.5's applicability threshold for the tail bound:
/// `k ≥ 2·γ⁻¹·ℓmax(v)` — astronomically large because `γ = e⁻³⁰`;
/// provided so the experiment reports can state it.
pub fn lemma35_min_k(lmax: Level) -> f64 {
    2.0 * lmax as f64 / gamma()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::generators::{random, scale_free};

    #[test]
    fn constants() {
        assert!(gamma() < 1e-12);
        assert!(gamma_golden() > gamma());
        assert!(eta_bound_thm21(15) <= ETA_THRESHOLD);
        assert!(eta_bound_thm21(13) > ETA_THRESHOLD);
    }

    #[test]
    fn default_policies_satisfy_their_preconditions() {
        let g = scale_free::barabasi_albert(200, 3, 1).unwrap();
        assert!(satisfies_thm21_precondition(&g, &LmaxPolicy::global_delta(&g), 15));
        assert!(satisfies_thm22_precondition(&g, &LmaxPolicy::own_degree(&g), 30));
        assert!(satisfies_cor23_precondition(&g, &LmaxPolicy::two_hop_degree(&g), 15));
        for policy in [
            LmaxPolicy::global_delta(&g),
            LmaxPolicy::own_degree(&g),
            LmaxPolicy::two_hop_degree(&g),
        ] {
            assert!(satisfies_lemma_precondition(&g, &policy), "{}", policy.name());
        }
    }

    #[test]
    fn small_constants_fail_preconditions() {
        let g = random::gnp(100, 0.2, 2);
        let tiny = LmaxPolicy::fixed(g.len(), 3);
        assert!(!satisfies_thm21_precondition(&g, &tiny, 15));
        assert!(!satisfies_lemma_precondition(&g, &tiny));
        // Non-uniform policies fail Thm 2.1's constancy requirement.
        let own = LmaxPolicy::own_degree(&g);
        let heterogeneous = g.nodes().any(|v| own.lmax(v) != own.lmax(0));
        if heterogeneous {
            assert!(!satisfies_thm21_precondition(&g, &own, 15));
        }
    }

    #[test]
    fn burn_in_matches_policy_max() {
        let g = random::gnp(50, 0.1, 3);
        let p = LmaxPolicy::own_degree(&g);
        assert_eq!(burn_in_horizon(&p), p.max_lmax() as u64);
    }

    #[test]
    fn lemma35_min_k_is_astronomical() {
        assert!(lemma35_min_k(20) > 1e13);
    }
}
