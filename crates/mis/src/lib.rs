//! The paper's contribution: **self-stabilizing MIS computation in the
//! beeping model** (Giakkoupis, Turau & Ziccardi, PODC 2024).
//!
//! Two algorithms are implemented, exactly as in the paper's pseudocode:
//!
//! - [`algorithm1::Algorithm1`] — the single-channel self-stabilizing
//!   version of Jeavons, Scott & Xu's algorithm (paper Algorithm 1). Every
//!   node keeps an integer *level* `ℓ ∈ {-ℓmax(v), …, ℓmax(v)}` that drives
//!   its beeping probability (Figure 1) and is updated from the single
//!   heard/not-heard bit each round.
//! - [`algorithm2::Algorithm2`] — the two-channel variant (paper Algorithm
//!   2, Corollary 2.3), where channel 2 is a persistent "I am in the MIS"
//!   signal and `ℓ ∈ {0, …, ℓmax(v)}`.
//!
//! The *knowledge* each vertex has about the topology is captured by
//! [`policy::LmaxPolicy`], with one constructor per theorem:
//! global maximum degree (Thm 2.1), own degree (Thm 2.2), and 1-hop
//! neighborhood maximum degree (Cor 2.3).
//!
//! Beyond the paper, [`adaptive`] explores §8's open question with a
//! knowledge-free variant that learns its level cap from collisions, and
//! [`dynamics`] computes per-round convergence trajectories.
//!
//! [`observer`] mirrors the paper's analysis machinery — the stable sets
//! `I_t`/`S_t`, prominent vertices, platinum and golden rounds, and the
//! potentials `d_t`, `η_t`, `η′_t` — so experiments can measure exactly the
//! quantities the proofs bound. [`runner`] is the high-level "run until
//! stabilized" API used by examples, tests, benches and experiments, and
//! [`recovery`] extends it to unreliable networks: channel noise, jammers
//! and topology churn with per-event re-stabilization tracking.
//! [`containment`] certifies that permanently Byzantine nodes disrupt only
//! a bounded radius around themselves, and [`adversary`] hill-climbs over
//! Byzantine placements and initial configurations for worst cases;
//! [`scenario`] extends that search to moving deployments, jointly over
//! motion speed, churn rate and placement.
//!
//! # Example
//!
//! ```
//! use graphs::generators::random;
//! use mis::algorithm1::Algorithm1;
//! use mis::policy::LmaxPolicy;
//! use mis::runner::{InitialLevels, RunConfig};
//!
//! let g = random::gnp(100, 0.08, 7);
//! let outcome = Algorithm1::new(&g, LmaxPolicy::global_delta(&g))
//!     .run(&g, RunConfig::new(7).with_init(InitialLevels::Random))
//!     .expect("stabilizes well within the default budget");
//! assert!(graphs::mis::is_maximal_independent_set(&g, &outcome.mis));
//! ```

pub mod adaptive;
pub mod adversary;
pub mod algorithm1;
pub mod algorithm2;
pub mod containment;
pub mod dynamics;
pub mod invariant;
pub mod levels;
pub mod observer;
pub mod policy;
pub mod recovery;
pub mod resumable;
pub mod runner;
pub mod scenario;
pub mod theory;

pub use adversary::{AdversaryConfig, SearchBehavior, WorstCase};
pub use algorithm1::Algorithm1;
pub use algorithm2::Algorithm2;
pub use containment::{ContainmentConfig, ContainmentOutcome, ContainmentSample};
pub use invariant::{InvariantChecker, LevelSpace};
pub use policy::LmaxPolicy;
pub use recovery::{NoisyOutcome, NoisyRunConfig};
pub use resumable::{
    PlanError, ResumableConfig, ResumableOutcome, ResumableRun, ResumeError, RunCheckpoint,
    RunStatus,
};
pub use runner::{InitialLevels, Outcome, RunConfig, StabilizationError};
pub use scenario::{Scenario, ScenarioConfig, ScenarioScore, WorstScenario};
