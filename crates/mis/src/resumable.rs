//! A steppable, checkpointable run driver — the crash-safe core of the
//! resilient harness (`crates/harness`).
//!
//! [`crate::runner::run`] and [`crate::recovery::run_noisy`] execute a whole
//! run inside one function call, so a crash (or a supervisor-imposed budget)
//! loses everything. [`ResumableRun`] is the same execution *inverted into a
//! state machine*: one [`ResumableRun::tick`] per round boundary, with a
//! [`RunCheckpoint`] capturable between any two ticks that contains every
//! bit of mutable run state — simulator checkpoint (states, per-stream RNG
//! positions, churned topology, participation bitmap, channel window), the
//! fault-stream RNG, the event-application cursor and the accumulated
//! trace. Resuming from a checkpoint and running to completion is
//! bit-identical to never having stopped (pinned by tests here and by the
//! crash-injection proptests in `crates/harness`).
//!
//! The round-boundary semantics mirror [`crate::runner::run`] exactly: at
//! boundary `r`, scheduled faults are applied first (in schedule order),
//! then scheduled churn, then — for a moving deployment
//! ([`ResumableConfig::with_motion`]) — one mobility step reconciled into
//! the simulator as a batched edge diff; stabilization is then judged
//! (active-aware, on the live topology) and only counts once `r` has passed
//! the last scheduled event; the budget is a *total* round budget. Under
//! sustained motion the topology never quiesces, so "stabilized" means the
//! current configuration is a valid MIS *on the current graph* — the
//! instantaneous condition the MOB experiment measures. For a fault-only
//! plan on a static graph the outcome, trace and final levels equal
//! [`crate::runner::run`]'s field for field.

use beeping::byzantine::ByzantinePlan;
use beeping::channel::ChannelFault;
use beeping::churn::{ChurnAction, ChurnPlan};
use beeping::dynamic::{DynamicTopology, MotionSpec, MotionState};
use beeping::faults::FaultPlan;
use beeping::rng::aux_rng;
use beeping::trace::Trace;
use beeping::{
    ByzantineError, Checkpoint, ChurnError, EngineMode, FaultError, RestoreError, Simulator,
};
use graphs::Graph;
use rand_pcg::Pcg64Mcg;
use telemetry::{Event, Marker, MarkerKind, Telemetry};

use crate::levels::Level;
use crate::recovery::{apply_churn, claimed_mis, stabilized_active};
use crate::runner::{
    corrupt_targets, emit_round_event, initial_levels, InitialLevels, RunConfig,
    SelfStabilizingMis, FAULT_RNG_PURPOSE,
};

/// Why a run configuration is invalid for its graph. The constructors check
/// every plan up front so the tick loop applies events infallibly — the
/// typed counterpart of the panics documented on [`crate::runner::run`] and
/// [`crate::recovery::run_noisy`].
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// The fault schedule is invalid (see [`beeping::faults::FaultError`]).
    Fault(FaultError),
    /// The churn schedule is invalid (see [`beeping::churn::ChurnError`]).
    Churn(ChurnError),
    /// The Byzantine plan is invalid (see
    /// [`beeping::byzantine::ByzantineError`]).
    Byzantine(ByzantineError),
    /// The motion spec is invalid, or the supplied graph is not the spec's
    /// initial deployment (see [`beeping::dynamic::MotionSpec`]).
    Motion(String),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::Fault(e) => write!(f, "invalid fault plan: {e}"),
            PlanError::Churn(e) => write!(f, "invalid churn plan: {e}"),
            PlanError::Byzantine(e) => write!(f, "invalid byzantine plan: {e}"),
            PlanError::Motion(msg) => write!(f, "invalid motion spec: {msg}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<FaultError> for PlanError {
    fn from(e: FaultError) -> PlanError {
        PlanError::Fault(e)
    }
}

impl From<ChurnError> for PlanError {
    fn from(e: ChurnError) -> PlanError {
        PlanError::Churn(e)
    }
}

impl From<ByzantineError> for PlanError {
    fn from(e: ByzantineError) -> PlanError {
        PlanError::Byzantine(e)
    }
}

/// Why a [`RunCheckpoint`] could not be turned back into a live run.
#[derive(Debug, Clone, PartialEq)]
pub enum ResumeError {
    /// The configuration's plans are invalid for the checkpointed graph.
    Plan(PlanError),
    /// The simulator checkpoint is inconsistent (see
    /// [`beeping::RestoreError`]); typical for a snapshot deserialized from
    /// a corrupted file.
    Restore(RestoreError),
}

impl std::fmt::Display for ResumeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResumeError::Plan(e) => write!(f, "cannot resume: {e}"),
            ResumeError::Restore(e) => write!(f, "cannot resume: {e}"),
        }
    }
}

impl std::error::Error for ResumeError {}

impl From<PlanError> for ResumeError {
    fn from(e: PlanError) -> ResumeError {
        ResumeError::Plan(e)
    }
}

impl From<RestoreError> for ResumeError {
    fn from(e: RestoreError) -> ResumeError {
        ResumeError::Restore(e)
    }
}

/// Configuration of a [`ResumableRun`]: the union of
/// [`crate::runner::RunConfig`] and [`crate::recovery::NoisyRunConfig`]
/// plus a Byzantine plan, so one driver covers all three existing run
/// entry points' fault axes.
#[derive(Debug, Clone)]
pub struct ResumableConfig {
    /// Master seed; every stream (node, init, fault, channel, Byzantine)
    /// derives from it.
    pub seed: u64,
    /// Total round budget; reaching it without stabilizing yields
    /// [`RunStatus::BudgetExhausted`].
    pub max_rounds: u64,
    /// Initial configuration.
    pub init: InitialLevels,
    /// Scheduled RAM corruptions.
    pub faults: FaultPlan,
    /// Scheduled topology changes.
    pub churn: ChurnPlan,
    /// The channel model, active for the whole run.
    pub channel: ChannelFault,
    /// Permanently deviating nodes. Configuration only — it is *not* part
    /// of a [`RunCheckpoint`]; resuming under a different plan is guarded by
    /// the harness snapshot's config fingerprint, not here.
    pub byzantine: ByzantinePlan<Level>,
    /// Optional moving deployment: when set, the topology is the spec's
    /// radius graph, reconciled against the simulator at every round
    /// boundary (after scheduled faults and churn) through the batched
    /// edge-diff path. The motion layer then *owns* the edge set — restrict
    /// churn plans to node leave/join (scheduled edge events are overwritten
    /// at the next reconciliation). Mid-flight positions and the motion-RNG
    /// position live in the [`RunCheckpoint`]; this field is configuration
    /// and is covered by the harness snapshot fingerprint.
    pub motion: Option<MotionSpec>,
    /// Delivery engine (bit-identical choices; see [`EngineMode`]).
    pub engine: EngineMode,
    /// Telemetry handle (disabled by default). Observational only: enabling
    /// it, or resuming with a fresh handle, never changes the execution.
    pub telemetry: Telemetry,
}

impl ResumableConfig {
    /// Defaults matching [`crate::runner::RunConfig::new`]: random initial
    /// levels, a 1,000,000-round budget, no faults, no churn, reliable
    /// channel, no Byzantine nodes.
    pub fn new(seed: u64) -> ResumableConfig {
        ResumableConfig {
            seed,
            max_rounds: 1_000_000,
            init: InitialLevels::Random,
            faults: FaultPlan::new(),
            churn: ChurnPlan::new(),
            channel: ChannelFault::reliable(),
            byzantine: ByzantinePlan::new(),
            motion: None,
            engine: EngineMode::default(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Sets the total round budget.
    pub fn with_max_rounds(mut self, max_rounds: u64) -> ResumableConfig {
        self.max_rounds = max_rounds;
        self
    }

    /// Sets the initial configuration.
    pub fn with_init(mut self, init: InitialLevels) -> ResumableConfig {
        self.init = init;
        self
    }

    /// Sets the fault schedule.
    pub fn with_faults(mut self, faults: FaultPlan) -> ResumableConfig {
        self.faults = faults;
        self
    }

    /// Sets the churn schedule.
    pub fn with_churn(mut self, churn: ChurnPlan) -> ResumableConfig {
        self.churn = churn;
        self
    }

    /// Sets the channel model.
    pub fn with_channel(mut self, channel: ChannelFault) -> ResumableConfig {
        self.channel = channel;
        self
    }

    /// Sets the Byzantine plan.
    pub fn with_byzantine(mut self, byzantine: ByzantinePlan<Level>) -> ResumableConfig {
        self.byzantine = byzantine;
        self
    }

    /// Attaches a moving deployment (see the `motion` field for the
    /// semantics; the run's graph must be `spec.initial_graph(n)`).
    pub fn with_motion(mut self, motion: MotionSpec) -> ResumableConfig {
        self.motion = Some(motion);
        self
    }

    /// Selects the simulator delivery engine.
    pub fn with_engine(mut self, engine: EngineMode) -> ResumableConfig {
        self.engine = engine;
        self
    }

    /// Attaches a telemetry handle.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> ResumableConfig {
        self.telemetry = telemetry;
        self
    }
}

/// Where a [`ResumableRun`] stands after a tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// More rounds to execute.
    Running,
    /// Stabilized (`S_t = V` on the live topology, past the last scheduled
    /// event).
    Stabilized,
    /// The total round budget ran out first.
    BudgetExhausted,
}

/// The final observables of a finished [`ResumableRun`].
#[derive(Debug, Clone)]
pub struct ResumableOutcome {
    /// `true` if the run stabilized within budget.
    pub stabilized: bool,
    /// Total rounds executed.
    pub rounds_run: u64,
    /// Fault-free rounds from the last scheduled event to stabilization
    /// (the paper's measure); `None` if the budget ran out.
    pub stabilization_round: Option<u64>,
    /// Final levels.
    pub levels: Vec<Level>,
    /// [`crate::recovery::claimed_mis`] of the final configuration
    /// (active-aware).
    pub mis: Vec<bool>,
    /// Final participation bitmap (after all churn).
    pub active: Vec<bool>,
    /// Per-round beep activity over the whole run.
    pub trace: Trace,
}

/// Everything mutable about a run, capturable between any two ticks. The
/// serialization target of the harness snapshot codec: configuration
/// (plans, channel model, engine) is deliberately *not* inside — it is
/// reconstructed from the caller's [`ResumableConfig`] and guarded by a
/// fingerprint at the file layer.
#[derive(Debug, Clone)]
pub struct RunCheckpoint {
    /// The complete simulator state: levels, per-node RNG positions, round
    /// counter, last-round signals, churned topology, participation bitmap,
    /// channel window and the channel/Byzantine stream positions.
    pub sim: Checkpoint<Level>,
    /// The fault-injection stream position (shared by corruptions and churn
    /// boot levels).
    pub fault_rng: Pcg64Mcg,
    /// The event-application cursor: the last round boundary whose
    /// scheduled events have fired. Without it, a checkpoint taken right
    /// after an event boundary would re-apply the events on resume.
    pub applied_through: Option<u64>,
    /// The accumulated per-round trace, so an interrupted-and-resumed run
    /// reports the same full trace as an uninterrupted one.
    pub trace: Trace,
    /// Mid-flight mobility state (positions, per-node model state, motion
    /// RNG position); `Some` exactly when the configuration carries a
    /// [`MotionSpec`].
    pub motion: Option<MotionState>,
}

/// A stabilization run inverted into a state machine; see the module docs.
pub struct ResumableRun<A: SelfStabilizingMis> {
    sim: Simulator<'static, A>,
    algo: A,
    config: ResumableConfig,
    fault_rng: Pcg64Mcg,
    motion: Option<DynamicTopology>,
    trace: Trace,
    last_event_round: u64,
    applied_through: Option<u64>,
    status: RunStatus,
    /// Crash instrumentation for the harness test rig: panic immediately
    /// before executing this round. `None` in production use.
    crash_before_round: Option<u64>,
}

impl<A: SelfStabilizingMis> ResumableRun<A> {
    /// Starts a fresh run of `algo` on `graph` under `config`.
    ///
    /// # Errors
    ///
    /// Returns a [`PlanError`] if any schedule (faults, churn, Byzantine)
    /// is invalid for this graph, so the tick loop never panics on event
    /// application.
    pub fn new(
        graph: &Graph,
        algo: &A,
        config: ResumableConfig,
    ) -> Result<ResumableRun<A>, PlanError> {
        Self::validate_plans(&config, algo, graph.len())?;
        let motion = match &config.motion {
            Some(spec) => {
                let dt = DynamicTopology::new(graph.len(), spec, config.seed)
                    .map_err(|e| PlanError::Motion(e.to_string()))?;
                if dt.graph() != graph {
                    return Err(PlanError::Motion(
                        "graph is not the spec's initial deployment \
                         (use MotionSpec::initial_graph)"
                            .into(),
                    ));
                }
                Some(dt)
            }
            None => None,
        };
        let run_config = RunConfig::new(config.seed).with_init(config.init.clone());
        let levels = initial_levels(algo, &run_config);
        let sim = Self::build_sim(graph.clone(), algo, &config, levels);
        if config.telemetry.is_enabled() {
            config.telemetry.record(Event::RunStart {
                label: "resumable".into(),
                n: graph.len() as u64,
                seed: config.seed,
            });
        }
        Ok(ResumableRun {
            sim,
            algo: algo.clone(),
            fault_rng: aux_rng(config.seed, FAULT_RNG_PURPOSE),
            motion,
            trace: Trace::new(),
            last_event_round: Self::last_event_round(&config),
            applied_through: None,
            status: RunStatus::Running,
            crash_before_round: None,
            config,
        })
    }

    /// Rebuilds a run at the exact point `checkpoint` was captured. The
    /// caller supplies the same `algo` and `config` the original run used
    /// (the harness snapshot layer enforces this with a fingerprint);
    /// continuing is then bit-identical to never having stopped.
    ///
    /// # Errors
    ///
    /// [`ResumeError::Plan`] if the configuration is invalid for the
    /// checkpointed graph, [`ResumeError::Restore`] if the checkpoint's own
    /// vectors are inconsistent (a corrupted or hand-built snapshot).
    pub fn resume(
        algo: &A,
        config: ResumableConfig,
        checkpoint: &RunCheckpoint,
    ) -> Result<ResumableRun<A>, ResumeError> {
        let n = checkpoint.sim.graph().len();
        Self::validate_plans(&config, algo, n)?;
        let motion =
            match (&config.motion, &checkpoint.motion) {
                (Some(spec), Some(state)) => Some(
                    DynamicTopology::from_state(spec, state)
                        .map_err(|e| ResumeError::Plan(PlanError::Motion(e.to_string())))?,
                ),
                (None, None) => None,
                (Some(_), None) => return Err(ResumeError::Plan(PlanError::Motion(
                    "configuration carries a motion spec but the checkpoint has no motion state"
                        .into(),
                ))),
                (None, Some(_)) => {
                    return Err(ResumeError::Plan(PlanError::Motion(
                        "checkpoint carries motion state but the configuration has no motion spec"
                            .into(),
                    )))
                }
            };
        let levels = checkpoint.sim.states().to_vec();
        let mut sim = Self::build_sim(checkpoint.sim.graph().clone(), algo, &config, levels);
        sim.restore(&checkpoint.sim)?;
        Ok(ResumableRun {
            sim,
            algo: algo.clone(),
            fault_rng: checkpoint.fault_rng.clone(),
            motion,
            trace: checkpoint.trace.clone(),
            last_event_round: Self::last_event_round(&config),
            applied_through: checkpoint.applied_through,
            status: RunStatus::Running,
            crash_before_round: None,
            config,
        })
    }

    fn validate_plans(config: &ResumableConfig, algo: &A, n: usize) -> Result<(), PlanError> {
        config.faults.validate(n)?;
        config.churn.validate(n)?;
        config.byzantine.validate(n, algo.channels())?;
        Ok(())
    }

    fn build_sim(
        graph: Graph,
        algo: &A,
        config: &ResumableConfig,
        levels: Vec<Level>,
    ) -> Simulator<'static, A> {
        let mut sim = Simulator::new_owned(graph, algo.clone(), levels, config.seed)
            .with_channel(config.channel.clone())
            .with_engine(config.engine)
            .with_telemetry(config.telemetry.clone());
        if !config.byzantine.is_empty() {
            sim = sim.with_byzantine(config.byzantine.clone());
        }
        sim
    }

    fn last_event_round(config: &ResumableConfig) -> u64 {
        config
            .faults
            .last_fault_round()
            .unwrap_or(0)
            .max(config.churn.last_event_round().unwrap_or(0))
    }

    /// Executes one round boundary: applies any events scheduled at the
    /// current round (faults first, then churn — once, even across a
    /// checkpoint/resume), re-judges stabilization and the budget, and if
    /// the run is still live, steps the simulator one round.
    ///
    /// Returns the status *after* this tick; once it leaves
    /// [`RunStatus::Running`], further ticks are no-ops.
    pub fn tick(&mut self) -> RunStatus {
        if self.status != RunStatus::Running {
            return self.status;
        }
        let r = self.sim.round();
        let tele = self.config.telemetry.clone();
        if self.applied_through != Some(r) {
            for fault in self.config.faults.events_after_round(r) {
                let corrupted =
                    corrupt_targets(&mut self.sim, &self.algo, &fault.target, &mut self.fault_rng);
                if tele.is_enabled() {
                    tele.record(Event::Marker(Marker {
                        round: r,
                        kind: MarkerKind::Fault,
                        detail: "corrupt".into(),
                        magnitude: corrupted as u64,
                    }));
                }
            }
            let churn_actions: Vec<ChurnAction> =
                self.config.churn.events_after_round(r).map(|e| e.action.clone()).collect();
            for action in churn_actions {
                apply_churn(&mut self.sim, &self.algo, &action, &mut self.fault_rng);
                if tele.is_enabled() {
                    tele.record(Event::Marker(Marker {
                        round: r,
                        kind: MarkerKind::Churn,
                        detail: "churn".into(),
                        magnitude: 1,
                    }));
                }
            }
            if let Some(dt) = &mut self.motion {
                let (added, removed) = dt.advance(&mut self.sim);
                if tele.is_enabled() && added + removed > 0 {
                    tele.record(Event::Marker(Marker {
                        round: r,
                        kind: MarkerKind::Motion,
                        detail: "reconcile".into(),
                        magnitude: (added + removed) as u64,
                    }));
                }
            }
            self.applied_through = Some(r);
        }
        if r >= self.last_event_round
            && stabilized_active(&self.algo, self.sim.graph(), self.sim.states(), self.sim.active())
        {
            self.status = RunStatus::Stabilized;
            return self.finish(true);
        }
        if r >= self.config.max_rounds {
            self.status = RunStatus::BudgetExhausted;
            return self.finish(false);
        }
        if self.crash_before_round == Some(r + 1) {
            panic!("crash injection: killed before round {}", r + 1);
        }
        let report = self.sim.step();
        if tele.is_enabled() {
            let graph = self.sim.graph();
            let in_mis = claimed_mis(&self.algo, graph, self.sim.states(), self.sim.active());
            let stable = graph
                .nodes()
                .filter(|&v| {
                    self.sim.active()[v]
                        && (in_mis[v] || graph.neighbors(v).iter().any(|&u| in_mis[u as usize]))
                })
                .count();
            emit_round_event(
                &tele,
                &report,
                self.sim.active_count() as u64,
                graph.len() as u64,
                in_mis.iter().filter(|&&m| m).count() as u64,
                stable as u64,
                self.sim.states(),
            );
        }
        self.trace.push(report);
        self.status
    }

    fn finish(&mut self, stabilized: bool) -> RunStatus {
        let tele = &self.config.telemetry;
        if tele.is_enabled() {
            let rounds = self.sim.round();
            tele.record(Event::RunEnd {
                rounds,
                stabilized,
                stabilization_round: stabilized
                    .then(|| rounds.saturating_sub(self.last_event_round)),
            });
            tele.finish();
        }
        self.status
    }

    /// Ticks until the run leaves [`RunStatus::Running`].
    pub fn run_to_completion(&mut self) -> RunStatus {
        while self.tick() == RunStatus::Running {}
        self.status
    }

    /// Captures the complete mutable run state; see [`RunCheckpoint`].
    pub fn checkpoint(&self) -> RunCheckpoint {
        RunCheckpoint {
            sim: self.sim.checkpoint(),
            fault_rng: self.fault_rng.clone(),
            applied_through: self.applied_through,
            trace: self.trace.clone(),
            motion: self.motion.as_ref().map(DynamicTopology::state),
        }
    }

    /// The final observables; `None` while still [`RunStatus::Running`].
    pub fn outcome(&self) -> Option<ResumableOutcome> {
        if self.status == RunStatus::Running {
            return None;
        }
        let stabilized = self.status == RunStatus::Stabilized;
        Some(ResumableOutcome {
            stabilized,
            rounds_run: self.sim.round(),
            stabilization_round: stabilized
                .then(|| self.sim.round().saturating_sub(self.last_event_round)),
            levels: self.sim.states().to_vec(),
            mis: claimed_mis(&self.algo, self.sim.graph(), self.sim.states(), self.sim.active()),
            active: self.sim.active().to_vec(),
            trace: self.trace.clone(),
        })
    }

    /// Current status without ticking.
    pub fn status(&self) -> RunStatus {
        self.status
    }

    /// The current round (number of rounds executed so far).
    pub fn round(&self) -> u64 {
        self.sim.round()
    }

    /// The trace accumulated so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Current per-node levels (including crashed/departed nodes' last
    /// state). Cheap borrow for per-round predicates — no checkpoint clone.
    pub fn levels(&self) -> &[Level] {
        self.sim.states()
    }

    /// The current topology (reflects churn and motion applied so far).
    pub fn graph(&self) -> &Graph {
        self.sim.graph()
    }

    /// The current participation bitmap.
    pub fn active(&self) -> &[bool] {
        self.sim.active()
    }

    /// The configuration this run executes under.
    pub fn config(&self) -> &ResumableConfig {
        &self.config
    }

    /// Arms (or disarms) the crash-injection trigger: the tick that would
    /// execute `round` panics instead, simulating a process kill at an
    /// exact, reproducible point. Test instrumentation for the harness
    /// supervisor's panic isolation; never set in production paths.
    pub fn set_crash_before_round(&mut self, round: Option<u64>) {
        self.crash_before_round = round;
    }
}

impl<A: SelfStabilizingMis> std::fmt::Debug for ResumableRun<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResumableRun")
            .field("round", &self.sim.round())
            .field("status", &self.status)
            .field("applied_through", &self.applied_through)
            .field("last_event_round", &self.last_event_round)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm1::Algorithm1;
    use crate::algorithm2::Algorithm2;
    use crate::policy::LmaxPolicy;
    use crate::runner::run;
    use beeping::byzantine::ByzantineBehavior;
    use beeping::faults::FaultTarget;
    use graphs::generators::{classic, random};

    #[test]
    fn matches_runner_field_for_field() {
        // Fault-only plan on a static graph: the resumable driver is the
        // runner's loop rotated into a state machine, so every observable
        // must coincide.
        let g = random::gnp(40, 0.1, 5);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let faults = FaultPlan::new().with_fault(30, FaultTarget::All);
        let reference =
            run(&g, &algo, RunConfig::new(5).with_faults(faults.clone())).expect("stabilizes");

        let mut resumable =
            ResumableRun::new(&g, &algo, ResumableConfig::new(5).with_faults(faults)).unwrap();
        assert_eq!(resumable.run_to_completion(), RunStatus::Stabilized);
        let outcome = resumable.outcome().unwrap();
        assert_eq!(outcome.rounds_run, reference.rounds_run);
        assert_eq!(outcome.stabilization_round, Some(reference.stabilization_round));
        assert_eq!(outcome.levels, reference.levels);
        assert_eq!(outcome.mis, reference.mis);
        assert_eq!(outcome.trace.reports(), reference.trace.reports());
    }

    #[test]
    fn checkpoint_resume_is_bit_identical() {
        // Compose all four fault axes, interrupt at an arbitrary point,
        // resume, and compare against the uninterrupted run.
        let g = random::gnp(30, 0.15, 9);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let config = || {
            ResumableConfig::new(9)
                .with_max_rounds(200_000)
                .with_channel(ChannelFault::reliable().with_drop(0.02))
                .with_faults(FaultPlan::new().with_fault(50, FaultTarget::RandomFraction(0.4)))
                .with_churn(
                    ChurnPlan::new()
                        .with_event(80, ChurnAction::NodeLeave(3))
                        .with_event(120, ChurnAction::NodeJoin(3, vec![0, 5])),
                )
                .with_byzantine(
                    ByzantinePlan::new().with_behavior(7, ByzantineBehavior::Babbler(0.3)),
                )
        };
        let mut straight = ResumableRun::new(&g, &algo, config()).unwrap();
        straight.run_to_completion();
        let reference = straight.outcome().unwrap();

        for interrupt_after in [0u64, 1, 49, 50, 79, 80, 100] {
            let mut first = ResumableRun::new(&g, &algo, config()).unwrap();
            for _ in 0..interrupt_after {
                if first.tick() != RunStatus::Running {
                    break;
                }
            }
            let cp = first.checkpoint();
            drop(first); // the "crash"
            let mut second = ResumableRun::resume(&algo, config(), &cp).unwrap();
            second.run_to_completion();
            let resumed = second.outcome().unwrap();
            assert_eq!(resumed.rounds_run, reference.rounds_run, "kill at {interrupt_after}");
            assert_eq!(resumed.levels, reference.levels, "kill at {interrupt_after}");
            assert_eq!(resumed.mis, reference.mis, "kill at {interrupt_after}");
            assert_eq!(resumed.active, reference.active, "kill at {interrupt_after}");
            assert_eq!(
                resumed.trace.reports(),
                reference.trace.reports(),
                "kill at {interrupt_after}"
            );
        }
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let g = random::gnp(60, 0.2, 4);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let mut run =
            ResumableRun::new(&g, &algo, ResumableConfig::new(1).with_max_rounds(1)).unwrap();
        assert_eq!(run.run_to_completion(), RunStatus::BudgetExhausted);
        let outcome = run.outcome().unwrap();
        assert!(!outcome.stabilized);
        assert_eq!(outcome.stabilization_round, None);
        assert_eq!(outcome.rounds_run, 1);
    }

    #[test]
    fn invalid_plans_are_typed_errors() {
        let g = classic::path(3);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let churn_err = ResumableRun::new(
            &g,
            &algo,
            ResumableConfig::new(0)
                .with_churn(ChurnPlan::new().with_event(1, ChurnAction::NodeLeave(9))),
        )
        .unwrap_err();
        assert_eq!(churn_err, PlanError::Churn(ChurnError::NodeOutOfRange { node: 9, n: 3 }));
        assert!(churn_err.to_string().contains("churn"));

        let fault_err = ResumableRun::new(
            &g,
            &algo,
            ResumableConfig::new(0)
                .with_faults(FaultPlan::new().with_fault(1, FaultTarget::Nodes(vec![9]))),
        )
        .unwrap_err();
        assert!(matches!(fault_err, PlanError::Fault(_)));

        let byz_err = ResumableRun::new(
            &g,
            &algo,
            ResumableConfig::new(0).with_byzantine(
                ByzantinePlan::new().with_behavior(9, ByzantineBehavior::StuckBeep),
            ),
        )
        .unwrap_err();
        assert!(matches!(byz_err, PlanError::Byzantine(_)));
    }

    #[test]
    fn crash_injection_panics_at_the_armed_round() {
        let g = classic::cycle(8);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let mut run = ResumableRun::new(&g, &algo, ResumableConfig::new(2)).unwrap();
        run.set_crash_before_round(Some(3));
        run.tick();
        run.tick();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run.tick()));
        let message = *caught.unwrap_err().downcast::<String>().unwrap();
        assert!(message.contains("crash injection"), "{message}");
    }

    #[test]
    fn motion_checkpoint_resume_is_bit_identical() {
        // The moving-graph counterpart of `checkpoint_resume_is_bit_identical`:
        // a random-waypoint deployment composed with noise, node churn and a
        // Byzantine node, interrupted at several points. The stuck beeper
        // keeps the run from ever stabilizing under sustained motion, so the
        // budget is deliberately small — bit-identity at budget exhaustion is
        // exactly as strong a check as at stabilization.
        use beeping::dynamic::MotionSpec;
        use graphs::motion::MotionModel;
        let spec = MotionSpec::new(
            0x600D,
            graphs::generators::geometric::radius_for_expected_degree(32, 6.0),
            MotionModel::RandomWaypoint { speed: 0.02, pause: 2 },
        );
        let g = spec.initial_graph(32);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let config = || {
            ResumableConfig::new(13)
                .with_max_rounds(300)
                .with_motion(spec)
                .with_channel(ChannelFault::reliable().with_drop(0.01))
                .with_churn(
                    ChurnPlan::new()
                        .with_event(20, ChurnAction::NodeLeave(4))
                        .with_event(45, ChurnAction::NodeJoin(4, vec![])),
                )
                .with_byzantine(ByzantinePlan::new().with_behavior(9, ByzantineBehavior::StuckBeep))
        };
        let mut straight = ResumableRun::new(&g, &algo, config()).unwrap();
        straight.run_to_completion();
        let reference = straight.outcome().unwrap();

        for interrupt_after in [0u64, 1, 19, 20, 44, 45, 60] {
            let mut first = ResumableRun::new(&g, &algo, config()).unwrap();
            for _ in 0..interrupt_after {
                if first.tick() != RunStatus::Running {
                    break;
                }
            }
            let cp = first.checkpoint();
            assert!(cp.motion.is_some());
            drop(first);
            let mut second = ResumableRun::resume(&algo, config(), &cp).unwrap();
            second.run_to_completion();
            let resumed = second.outcome().unwrap();
            assert_eq!(resumed.rounds_run, reference.rounds_run, "kill at {interrupt_after}");
            assert_eq!(resumed.levels, reference.levels, "kill at {interrupt_after}");
            assert_eq!(resumed.active, reference.active, "kill at {interrupt_after}");
            assert_eq!(
                resumed.trace.reports(),
                reference.trace.reports(),
                "kill at {interrupt_after}"
            );
        }
    }

    #[test]
    fn motion_requires_the_spec_deployment_graph() {
        use beeping::dynamic::MotionSpec;
        use graphs::motion::MotionModel;
        let spec = MotionSpec::new(0x600D, 0.2, MotionModel::Drift { speed: 0.03, turn: 0.4 });
        let wrong = random::gnp(16, 0.2, 3);
        let algo = Algorithm1::new(&wrong, LmaxPolicy::global_delta(&wrong));
        let err = ResumableRun::new(&wrong, &algo, ResumableConfig::new(1).with_motion(spec))
            .unwrap_err();
        assert!(matches!(err, PlanError::Motion(_)));
        assert!(err.to_string().contains("motion"));
    }

    #[test]
    fn motion_resume_rejects_presence_mismatch() {
        use beeping::dynamic::MotionSpec;
        use graphs::motion::MotionModel;
        let spec = MotionSpec::new(
            0x600D,
            graphs::generators::geometric::radius_for_expected_degree(16, 4.0),
            MotionModel::RandomWaypoint { speed: 0.02, pause: 0 },
        );
        let g = spec.initial_graph(16);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        // Motion run, resumed under a motionless config.
        let mut run =
            ResumableRun::new(&g, &algo, ResumableConfig::new(2).with_motion(spec)).unwrap();
        run.tick();
        let cp = run.checkpoint();
        let err = ResumableRun::resume(&algo, ResumableConfig::new(2), &cp).unwrap_err();
        assert!(matches!(err, ResumeError::Plan(PlanError::Motion(_))));
        // Motionless run, resumed under a motion config.
        let mut run = ResumableRun::new(&g, &algo, ResumableConfig::new(2)).unwrap();
        run.tick();
        let cp = run.checkpoint();
        let err = ResumableRun::resume(&algo, ResumableConfig::new(2).with_motion(spec), &cp)
            .unwrap_err();
        assert!(matches!(err, ResumeError::Plan(PlanError::Motion(_))));
    }

    #[test]
    fn two_channel_algorithm_resumes_identically() {
        let g = random::gnp(25, 0.15, 11);
        let algo = Algorithm2::new(&g, LmaxPolicy::two_hop_degree(&g));
        let config = || {
            ResumableConfig::new(11)
                .with_faults(FaultPlan::new().with_fault(40, FaultTarget::RandomFraction(0.5)))
        };
        let mut straight = ResumableRun::new(&g, &algo, config()).unwrap();
        straight.run_to_completion();
        let reference = straight.outcome().unwrap();

        let mut first = ResumableRun::new(&g, &algo, config()).unwrap();
        for _ in 0..25 {
            first.tick();
        }
        let cp = first.checkpoint();
        let mut second = ResumableRun::resume(&algo, config(), &cp).unwrap();
        second.run_to_completion();
        let resumed = second.outcome().unwrap();
        assert_eq!(resumed.levels, reference.levels);
        assert_eq!(resumed.trace.reports(), reference.trace.reports());
    }
}
