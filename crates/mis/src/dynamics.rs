//! Convergence-trajectory analytics: per-round aggregate statistics of an
//! execution, computed from recorded level histories.
//!
//! The proofs reason about how the prominent set `PM_t`, the stable set
//! `S_t` and the potential `d_t` evolve; this module turns a recorded
//! execution into exactly that time series, which experiment `DYN` prints
//! as the paper-style "convergence trajectory" figure.

use graphs::Graph;

use crate::levels::Level;
use crate::observer::Snapshot;

/// Aggregate statistics of one round of an execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundStats {
    /// Round index (0 = initial configuration).
    pub round: usize,
    /// `|PM_t|`: prominent vertices (ℓ ≤ 0).
    pub prominent: usize,
    /// `|I_t|`: vertices stable in the MIS.
    pub in_mis: usize,
    /// `|S_t|`: stable vertices.
    pub stable: usize,
    /// Vertices sitting exactly at their `ℓmax` (silenced).
    pub at_cap: usize,
    /// Mean beep probability over all vertices.
    pub mean_p: f64,
    /// Mean potential `d_t(v)` over all vertices.
    pub mean_d: f64,
    /// Maximum potential `d_t(v)`.
    pub max_d: f64,
}

/// Computes the per-round statistics for a recorded level history (as
/// produced by [`crate::runner::RunConfig::with_level_recording`]).
///
/// # Panics
///
/// Panics if any snapshot has the wrong length.
pub fn trajectory(graph: &Graph, lmax: &[Level], history: &[Vec<Level>]) -> Vec<RoundStats> {
    history
        .iter()
        .enumerate()
        .map(|(round, levels)| round_stats(graph, lmax, levels, round))
        .collect()
}

/// Computes the statistics of a single configuration.
pub fn round_stats(graph: &Graph, lmax: &[Level], levels: &[Level], round: usize) -> RoundStats {
    let snap = Snapshot::new(graph, lmax, levels);
    let n = graph.len().max(1);
    let mut prominent = 0;
    let mut at_cap = 0;
    let mut sum_p = 0.0;
    let mut sum_d = 0.0;
    let mut max_d = 0.0f64;
    for v in graph.nodes() {
        if snap.is_prominent(v) {
            prominent += 1;
        }
        if levels[v] == lmax[v] {
            at_cap += 1;
        }
        sum_p += snap.beep_probability(v);
        let d = snap.d(v);
        sum_d += d;
        max_d = max_d.max(d);
    }
    RoundStats {
        round,
        prominent,
        in_mis: snap.mis().iter().filter(|&&m| m).count(),
        stable: snap.stable_count(),
        at_cap,
        mean_p: sum_p / n as f64,
        mean_d: sum_d / n as f64,
        max_d,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::LmaxPolicy;
    use crate::runner::RunConfig;
    use crate::Algorithm1;
    use graphs::generators::random;

    #[test]
    fn trajectory_matches_outcome() {
        let g = random::gnp(50, 0.1, 1);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let outcome = algo.run(&g, RunConfig::new(2).with_level_recording()).expect("stabilizes");
        let history = outcome.level_history.as_ref().unwrap();
        let stats = trajectory(&g, algo.policy().lmax_values(), history);
        assert_eq!(stats.len(), history.len());
        // Final round is fully stable.
        let last = stats.last().unwrap();
        assert_eq!(last.stable, g.len());
        assert_eq!(last.in_mis, outcome.mis.iter().filter(|&&m| m).count());
        // Stable counts are monotone non-decreasing.
        for w in stats.windows(2) {
            assert!(w[0].stable <= w[1].stable);
        }
        // Rounds are sequential from 0.
        for (i, s) in stats.iter().enumerate() {
            assert_eq!(s.round, i);
        }
    }

    #[test]
    fn stats_of_fully_stable_config() {
        let g = graphs::generators::classic::path(3);
        let lmax = vec![5, 5, 5];
        let stats = round_stats(&g, &lmax, &[5, -5, 5], 7);
        assert_eq!(stats.round, 7);
        assert_eq!(stats.prominent, 1);
        assert_eq!(stats.in_mis, 1);
        assert_eq!(stats.stable, 3);
        assert_eq!(stats.at_cap, 2);
        // MIS node has p = 1; cap nodes have p = 0.
        assert!((stats.mean_p - 1.0 / 3.0).abs() < 1e-12);
        // d(ends) = 1 (the beeping MIS neighbor), d(middle) = 0.
        assert!((stats.mean_d - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(stats.max_d, 1.0);
    }

    #[test]
    fn mean_d_decreases_toward_stability_overall() {
        // Not monotone round-to-round, but the endpoint is far below the
        // adversarial start where everyone beeps.
        let g = random::gnp(60, 0.15, 3);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let outcome = algo
            .run(
                &g,
                RunConfig::new(1)
                    .with_init(crate::runner::InitialLevels::AllClaiming)
                    .with_level_recording(),
            )
            .unwrap();
        let history = outcome.level_history.unwrap();
        let stats = trajectory(&g, algo.policy().lmax_values(), &history);
        assert!(stats.first().unwrap().mean_d > stats.last().unwrap().mean_d);
    }
}
