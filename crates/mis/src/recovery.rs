//! Per-event recovery tracking under the unreliable-network adversary.
//!
//! The paper measures one number: rounds from the last transient fault to
//! `S_t = V`. This module generalizes that measurement to executions where
//! the *network* misbehaves too — channel noise ([`beeping::channel`]),
//! topology churn ([`beeping::churn`]) and scheduled RAM faults
//! ([`beeping::faults`]) compose in one run — and segments the execution at
//! every disturbance, reporting per-event re-stabilization times and the
//! MIS-validity violations that occur during the transients.
//!
//! Because churn can deactivate nodes and rewire edges, stability is judged
//! *active-aware* against the live topology: [`claimed_mis`],
//! [`stabilized_active`] and [`independence_violations`] restrict the
//! paper's `I_t`/`S_t` machinery to the currently active subgraph. For a
//! fully active, un-churned graph they coincide exactly with
//! [`crate::observer`]'s definitions.
//!
//! A structural invariant worth stating (and guarded by a property test):
//! a configuration with a live independence violation — two adjacent active
//! nodes both at their claiming level — can never satisfy
//! [`stabilized_active`], because a claiming neighbor blocks `I_t`
//! membership of both endpoints *and* of all their neighbors. "Stable MIS"
//! and "violation live" are mutually exclusive by construction.

use beeping::channel::ChannelFault;
use beeping::churn::{ChurnAction, ChurnPlan};
use beeping::faults::FaultPlan;
use beeping::rng::aux_rng;
use beeping::{EngineMode, Simulator};
use graphs::Graph;
use rand_pcg::Pcg64Mcg;
use telemetry::{Event, Marker, MarkerKind, Telemetry};

use crate::levels::Level;
use crate::runner::{
    corrupt_targets, emit_round_event, initial_levels, random_level, InitialLevels, RunConfig,
    SelfStabilizingMis, FAULT_RNG_PURPOSE,
};

/// `I_t` restricted to the active subgraph: node `v` is a stable MIS member
/// iff it is active, sits at its claiming level, and every *active* neighbor
/// sits at its `ℓmax`. Inactive nodes are never members and never block a
/// neighbor's membership.
///
/// # Panics
///
/// Panics if `levels` or `active` length differs from `graph.len()`.
pub fn claimed_mis<A: SelfStabilizingMis>(
    algo: &A,
    graph: &Graph,
    levels: &[Level],
    active: &[bool],
) -> Vec<bool> {
    assert_eq!(levels.len(), graph.len(), "one level per vertex");
    assert_eq!(active.len(), graph.len(), "one active flag per vertex");
    let lmax = algo.policy().lmax_values();
    graph
        .nodes()
        .map(|v| {
            active[v]
                && levels[v] == algo.claiming_level(lmax[v])
                && graph.neighbors(v).iter().all(|&u| {
                    let u = u as usize;
                    !active[u] || levels[u] == lmax[u]
                })
        })
        .collect()
}

/// `S_t = V` restricted to the active subgraph: every active node is in
/// [`claimed_mis`] or has an active neighbor that is. Vacuously `true` when
/// no node is active.
///
/// # Panics
///
/// Panics if `levels` or `active` length differs from `graph.len()`.
pub fn stabilized_active<A: SelfStabilizingMis>(
    algo: &A,
    graph: &Graph,
    levels: &[Level],
    active: &[bool],
) -> bool {
    let in_mis = claimed_mis(algo, graph, levels, active);
    graph
        .nodes()
        .all(|v| !active[v] || in_mis[v] || graph.neighbors(v).iter().any(|&u| in_mis[u as usize]))
}

/// Number of live MIS-validity violations: edges whose two endpoints are
/// both active and both at their claiming level — two nodes simultaneously
/// asserting MIS membership while adjacent. Zero in every configuration
/// that satisfies [`stabilized_active`].
///
/// # Panics
///
/// Panics if `levels` or `active` length differs from `graph.len()`.
pub fn independence_violations<A: SelfStabilizingMis>(
    algo: &A,
    graph: &Graph,
    levels: &[Level],
    active: &[bool],
) -> usize {
    assert_eq!(levels.len(), graph.len(), "one level per vertex");
    assert_eq!(active.len(), graph.len(), "one active flag per vertex");
    let lmax = algo.policy().lmax_values();
    let claiming = |v: usize| active[v] && levels[v] == algo.claiming_level(lmax[v]);
    graph.edges().filter(|&(u, v)| claiming(u) && claiming(v)).count()
}

/// What disturbed the execution at a segment boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Disturbance {
    /// The start of the run (the arbitrary initial configuration).
    Initial,
    /// A scheduled transient fault corrupted `corrupted` nodes.
    TransientFault {
        /// Number of nodes whose RAM the fault overwrote.
        corrupted: usize,
    },
    /// A scheduled topology-churn event.
    Churn(ChurnAction),
}

/// How a segment ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentOutcome {
    /// The execution re-stabilized `rounds` rounds after the disturbance
    /// (it may keep running inside the segment until the next event).
    Recovered {
        /// Rounds from the disturbance to the first stabilized
        /// configuration.
        rounds: u64,
    },
    /// The next disturbance struck after `rounds` rounds, before the
    /// execution had re-stabilized.
    Interrupted {
        /// Rounds the segment ran before being cut short.
        rounds: u64,
    },
    /// The per-segment round budget ran out without re-stabilization; the
    /// run stops here (graceful degradation has failed — divergence).
    Diverged {
        /// Rounds the segment ran (the exhausted budget).
        rounds: u64,
    },
}

impl SegmentOutcome {
    /// The re-stabilization time, if the segment recovered.
    pub fn recovered_rounds(&self) -> Option<u64> {
        match self {
            SegmentOutcome::Recovered { rounds } => Some(*rounds),
            _ => None,
        }
    }

    /// `true` for [`SegmentOutcome::Recovered`].
    pub fn is_recovered(&self) -> bool {
        matches!(self, SegmentOutcome::Recovered { .. })
    }
}

/// The per-event record of one execution segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecovery {
    /// What started the segment.
    pub disturbance: Disturbance,
    /// Absolute round at which the disturbance struck.
    pub start_round: u64,
    /// How the segment ended.
    pub outcome: SegmentOutcome,
    /// Total rounds the segment spanned.
    pub segment_rounds: u64,
    /// Observed configurations (one per round in the segment) with at least
    /// one live independence violation.
    pub violation_rounds: u64,
    /// Longest consecutive streak of violation rounds.
    pub max_violation_streak: u64,
}

/// Configuration of a [`run_noisy`] execution.
///
/// # Example
///
/// ```
/// use beeping::channel::ChannelFault;
/// use beeping::churn::{ChurnAction, ChurnPlan};
/// use beeping::faults::{FaultPlan, FaultTarget};
/// use mis::recovery::NoisyRunConfig;
///
/// let config = NoisyRunConfig::new(7)
///     .with_channel(ChannelFault::reliable().with_drop(0.02))
///     .with_faults(FaultPlan::new().with_fault(500, FaultTarget::RandomFraction(0.3)))
///     .with_churn(ChurnPlan::new().with_event(900, ChurnAction::NodeLeave(0)));
/// assert_eq!(config.seed, 7);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NoisyRunConfig {
    /// Master seed: node randomness, initial levels, fault targets, channel
    /// noise and churn boot states all derive from it (disjoint streams).
    pub seed: u64,
    /// Per-segment round budget; a segment exceeding it diverges.
    pub max_rounds: u64,
    /// Initial configuration.
    pub init: InitialLevels,
    /// Scheduled RAM corruptions.
    pub faults: FaultPlan,
    /// Scheduled topology changes.
    pub churn: ChurnPlan,
    /// The channel model, active for the whole run.
    pub channel: ChannelFault,
    /// Delivery engine for the underlying simulator (bit-identical choices;
    /// see [`EngineMode`]).
    pub engine: EngineMode,
    /// Telemetry handle (disabled by default): round events with
    /// active-aware observables, plus a fault/churn [`telemetry::Marker`]
    /// per disturbance. Observational only.
    pub telemetry: Telemetry,
}

impl NoisyRunConfig {
    /// Defaults: random initial levels, a 1,000,000-round per-segment
    /// budget, no faults, no churn, reliable channel.
    pub fn new(seed: u64) -> NoisyRunConfig {
        NoisyRunConfig {
            seed,
            max_rounds: 1_000_000,
            init: InitialLevels::Random,
            faults: FaultPlan::new(),
            churn: ChurnPlan::new(),
            channel: ChannelFault::reliable(),
            engine: EngineMode::default(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Sets the per-segment round budget.
    pub fn with_max_rounds(mut self, max_rounds: u64) -> NoisyRunConfig {
        self.max_rounds = max_rounds;
        self
    }

    /// Sets the initial configuration.
    pub fn with_init(mut self, init: InitialLevels) -> NoisyRunConfig {
        self.init = init;
        self
    }

    /// Sets the fault schedule.
    pub fn with_faults(mut self, faults: FaultPlan) -> NoisyRunConfig {
        self.faults = faults;
        self
    }

    /// Sets the churn schedule.
    pub fn with_churn(mut self, churn: ChurnPlan) -> NoisyRunConfig {
        self.churn = churn;
        self
    }

    /// Sets the channel model.
    pub fn with_channel(mut self, channel: ChannelFault) -> NoisyRunConfig {
        self.channel = channel;
        self
    }

    /// Selects the simulator delivery engine.
    pub fn with_engine(mut self, engine: EngineMode) -> NoisyRunConfig {
        self.engine = engine;
        self
    }

    /// Attaches a telemetry handle.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> NoisyRunConfig {
        self.telemetry = telemetry;
        self
    }
}

/// The result of a [`run_noisy`] execution.
#[derive(Debug, Clone)]
pub struct NoisyOutcome {
    /// One record per segment: the initial convergence plus one per
    /// disturbance, in execution order.
    pub events: Vec<EventRecovery>,
    /// Total rounds executed.
    pub total_rounds: u64,
    /// Whether the final configuration satisfies [`stabilized_active`].
    pub stabilized: bool,
    /// [`claimed_mis`] of the final configuration.
    pub mis: Vec<bool>,
    /// Final participation bitmap (after all churn).
    pub active: Vec<bool>,
}

impl NoisyOutcome {
    /// `true` if every segment (including the initial convergence)
    /// re-stabilized.
    pub fn all_recovered(&self) -> bool {
        self.events.iter().all(|e| e.outcome.is_recovered())
    }

    /// The worst re-stabilization time over all recovered segments.
    pub fn max_recovery_rounds(&self) -> Option<u64> {
        self.events.iter().filter_map(|e| e.outcome.recovered_rounds()).max()
    }

    /// Total violation rounds over the whole run.
    pub fn total_violation_rounds(&self) -> u64 {
        self.events.iter().map(|e| e.violation_rounds).sum()
    }
}

/// Live per-segment counters, folded into an [`EventRecovery`] at the next
/// boundary.
struct SegmentTracker {
    disturbance: Disturbance,
    start_round: u64,
    first_recovery: Option<u64>,
    violation_rounds: u64,
    streak: u64,
    max_streak: u64,
}

impl SegmentTracker {
    fn new(disturbance: Disturbance, start_round: u64) -> SegmentTracker {
        SegmentTracker {
            disturbance,
            start_round,
            first_recovery: None,
            violation_rounds: 0,
            streak: 0,
            max_streak: 0,
        }
    }

    fn observe(&mut self, round: u64, stabilized: bool, violations: usize) {
        if stabilized && self.first_recovery.is_none() {
            self.first_recovery = Some(round - self.start_round);
        }
        if violations > 0 {
            self.violation_rounds += 1;
            self.streak += 1;
            self.max_streak = self.max_streak.max(self.streak);
        } else {
            self.streak = 0;
        }
    }

    fn close(self, end_round: u64, diverged: bool) -> EventRecovery {
        let segment_rounds = end_round - self.start_round;
        let outcome = match self.first_recovery {
            Some(rounds) => SegmentOutcome::Recovered { rounds },
            None if diverged => SegmentOutcome::Diverged { rounds: segment_rounds },
            None => SegmentOutcome::Interrupted { rounds: segment_rounds },
        };
        EventRecovery {
            disturbance: self.disturbance,
            start_round: self.start_round,
            outcome,
            segment_rounds,
            violation_rounds: self.violation_rounds,
            max_violation_streak: self.max_streak,
        }
    }
}

/// Applies one churn action to the simulator. A joining node boots with an
/// adversarially random level drawn from the fault stream.
///
/// The plan is validated against the graph before the round loop starts, so
/// application is infallible here; a failure means the simulator and the
/// validator disagree, which is a bug worth a loud stop.
pub(crate) fn apply_churn<A: SelfStabilizingMis>(
    sim: &mut Simulator<'_, A>,
    algo: &A,
    action: &ChurnAction,
    fault_rng: &mut Pcg64Mcg,
) {
    let applied = match action {
        ChurnAction::AddEdge(u, v) => sim.insert_edge(*u, *v).map(|_| ()),
        ChurnAction::RemoveEdge(u, v) => sim.remove_edge(*u, *v).map(|_| ()),
        ChurnAction::NodeLeave(v) => sim.node_leave(*v).map(|_| ()),
        ChurnAction::NodeJoin(v, neighbors) => {
            let boot = random_level(algo, *v, fault_rng);
            sim.node_join(*v, neighbors, boot)
        }
    };
    if let Err(e) = applied {
        panic!("validated churn plan failed to apply: {e}");
    }
}

/// Runs `algo` on `graph` under the full adversary — channel noise, RAM
/// faults and topology churn — segmenting the execution at every event.
///
/// Execution order per round boundary: the round-`r` configuration is
/// observed (stability, violations), then all fault events scheduled after
/// round `r` are applied (in schedule order), then all churn events after
/// round `r`. Each applied event closes the current segment and opens a new
/// one; the post-event configuration is the new segment's first
/// observation. With several events at one boundary, all but the last
/// segment are [`SegmentOutcome::Interrupted`] at zero rounds.
///
/// The run ends when the execution is stabilized with no events left, or
/// when a segment exhausts `config.max_rounds` without re-stabilizing
/// ([`SegmentOutcome::Diverged`]; remaining scheduled events are not
/// applied).
///
/// With a reliable channel and an empty churn plan, a single fault
/// scheduled at the run's first stabilization round reproduces
/// [`crate::runner::run_recovery`]'s measurement exactly — same corrupted
/// nodes, same recovery time (the zero-noise baseline; asserted by a test
/// below and by experiment `NOISE`).
///
/// # Panics
///
/// Panics if the churn plan references a node `>= graph.len()`, if a
/// channel jammer is out of range, or if the fault plan is invalid for this
/// graph (checked up front via [`beeping::faults::FaultPlan::validate`] so
/// the round loop's fault application is infallible).
pub fn run_noisy<A: SelfStabilizingMis>(
    graph: &Graph,
    algo: &A,
    config: &NoisyRunConfig,
) -> NoisyOutcome {
    if let Err(e) = config.churn.validate(graph.len()) {
        panic!("invalid churn plan: {e}");
    }
    if let Err(e) = config.faults.validate(graph.len()) {
        panic!("invalid fault plan: {e}");
    }
    let run_config = RunConfig::new(config.seed).with_init(config.init.clone());
    let levels = initial_levels(algo, &run_config);
    let tele = config.telemetry.clone();
    let mut sim = Simulator::new(graph, algo.clone(), levels, config.seed)
        .with_channel(config.channel.clone())
        .with_engine(config.engine)
        .with_telemetry(tele.clone());
    let mut fault_rng = aux_rng(config.seed, FAULT_RNG_PURPOSE);
    if tele.is_enabled() {
        tele.record(Event::RunStart {
            label: "noisy".into(),
            n: graph.len() as u64,
            seed: config.seed,
        });
    }

    let last_event_round = config
        .faults
        .last_fault_round()
        .unwrap_or(0)
        .max(config.churn.last_event_round().unwrap_or(0));

    let mut events: Vec<EventRecovery> = Vec::new();
    let mut tracker = SegmentTracker::new(Disturbance::Initial, 0);
    // Rounds whose scheduled events have already been applied (events fire
    // once even though the same round is re-observed after application).
    let mut applied_through: Option<u64> = None;

    let (stabilized, mis, active, total_rounds) = loop {
        let r = sim.round();
        let stab = stabilized_active(algo, sim.graph(), sim.states(), sim.active());
        let violations = independence_violations(algo, sim.graph(), sim.states(), sim.active());
        tracker.observe(r, stab, violations);

        let events_pending = applied_through != Some(r)
            && (config.faults.events_after_round(r).next().is_some()
                || config.churn.events_after_round(r).next().is_some());
        if events_pending {
            for fault in config.faults.events_after_round(r) {
                let corrupted = corrupt_targets(&mut sim, algo, &fault.target, &mut fault_rng);
                if tele.is_enabled() {
                    tele.record(Event::Marker(Marker {
                        round: r,
                        kind: MarkerKind::Fault,
                        detail: "corrupt".into(),
                        magnitude: corrupted as u64,
                    }));
                }
                events.push(
                    std::mem::replace(
                        &mut tracker,
                        SegmentTracker::new(Disturbance::TransientFault { corrupted }, r),
                    )
                    .close(r, false),
                );
            }
            let churn_actions: Vec<ChurnAction> =
                config.churn.events_after_round(r).map(|e| e.action.clone()).collect();
            for action in churn_actions {
                apply_churn(&mut sim, algo, &action, &mut fault_rng);
                if tele.is_enabled() {
                    tele.record(Event::Marker(Marker {
                        round: r,
                        kind: MarkerKind::Churn,
                        detail: churn_detail(&action).into(),
                        magnitude: 1,
                    }));
                }
                events.push(
                    std::mem::replace(
                        &mut tracker,
                        SegmentTracker::new(Disturbance::Churn(action), r),
                    )
                    .close(r, false),
                );
            }
            applied_through = Some(r);
            continue; // observe the post-event configuration as the new start
        }

        if stab && r >= last_event_round {
            events.push(tracker.close(r, false));
            break (
                true,
                claimed_mis(algo, sim.graph(), sim.states(), sim.active()),
                sim.active().to_vec(),
                r,
            );
        }
        if r - tracker.start_round >= config.max_rounds {
            events.push(tracker.close(r, true));
            break (
                false,
                claimed_mis(algo, sim.graph(), sim.states(), sim.active()),
                sim.active().to_vec(),
                r,
            );
        }
        let report = sim.step();
        if tele.is_enabled() {
            let graph = sim.graph();
            let in_mis = claimed_mis(algo, graph, sim.states(), sim.active());
            let stable = graph
                .nodes()
                .filter(|&v| {
                    sim.active()[v]
                        && (in_mis[v] || graph.neighbors(v).iter().any(|&u| in_mis[u as usize]))
                })
                .count();
            emit_round_event(
                &tele,
                &report,
                sim.active_count() as u64,
                graph.len() as u64,
                in_mis.iter().filter(|&&m| m).count() as u64,
                stable as u64,
                sim.states(),
            );
        }
    };

    if tele.is_enabled() {
        tele.record(Event::RunEnd {
            rounds: total_rounds,
            stabilized,
            stabilization_round: stabilized.then_some(total_rounds),
        });
        tele.finish();
    }
    NoisyOutcome { events, total_rounds, stabilized, mis, active }
}

/// Stable lowercase name of a churn action for telemetry markers.
fn churn_detail(action: &ChurnAction) -> &'static str {
    match action {
        ChurnAction::AddEdge(..) => "add_edge",
        ChurnAction::RemoveEdge(..) => "remove_edge",
        ChurnAction::NodeLeave(..) => "node_leave",
        ChurnAction::NodeJoin(..) => "node_join",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm1::Algorithm1;
    use crate::algorithm2::Algorithm2;
    use crate::policy::LmaxPolicy;
    use crate::runner::run_recovery;
    use beeping::faults::FaultTarget;
    use graphs::generators::{classic, random};

    #[test]
    fn active_aware_observables_match_observer_when_fully_active() {
        let g = classic::path(5);
        let algo = Algorithm1::new(&g, LmaxPolicy::fixed(5, 4));
        let levels = vec![-4, 4, -4, 4, 2];
        let active = vec![true; 5];
        let expected = crate::observer::stable_mis(&g, algo.policy().lmax_values(), &levels);
        assert_eq!(claimed_mis(&algo, &g, &levels, &active), expected);
        assert!(!stabilized_active(&algo, &g, &levels, &active));
        let stabilized = vec![-4, 4, -4, 4, -4];
        assert!(stabilized_active(&algo, &g, &stabilized, &active));
    }

    #[test]
    fn inactive_nodes_neither_join_nor_block() {
        let g = classic::path(3);
        let algo = Algorithm1::new(&g, LmaxPolicy::fixed(3, 4));
        // Node 1 claims but its neighbor 2 is below ℓmax: not stable...
        let levels = vec![4, -4, 1];
        assert!(!claimed_mis(&algo, &g, &levels, &[true; 3])[1]);
        // ...unless node 2 has departed, making the condition vacuous.
        let active = vec![true, true, false];
        let mis = claimed_mis(&algo, &g, &levels, &active);
        assert_eq!(mis, vec![false, true, false]);
        // Node 2 being inactive, the whole active subgraph is stable.
        assert!(stabilized_active(&algo, &g, &levels, &active));
        // An all-inactive network is vacuously stable.
        assert!(stabilized_active(&algo, &g, &levels, &[false; 3]));
    }

    #[test]
    fn violations_counted_on_active_claiming_edges() {
        let g = classic::path(3);
        let algo = Algorithm1::new(&g, LmaxPolicy::fixed(3, 4));
        let levels = vec![-4, -4, -4];
        assert_eq!(independence_violations(&algo, &g, &levels, &[true; 3]), 2);
        assert_eq!(independence_violations(&algo, &g, &levels, &[true, false, true]), 0);
        // The invariant: a violating configuration is never stabilized.
        assert!(!stabilized_active(&algo, &g, &levels, &[true; 3]));
    }

    #[test]
    fn zero_noise_single_fault_matches_run_recovery() {
        // Acceptance criterion (a): with the channel reliable and no churn,
        // per-event recovery reproduces the existing recovery measurement
        // exactly — same corruption, same recovery time.
        let g = random::gnp(50, 0.1, 6);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let seed = 6;
        let target = FaultTarget::RandomFraction(0.5);
        let rec = run_recovery(&g, &algo, seed, target.clone(), 100_000).expect("recovers");

        let config = NoisyRunConfig::new(seed)
            .with_max_rounds(100_000)
            .with_faults(FaultPlan::new().with_fault(rec.initial_stabilization, target));
        let noisy = run_noisy(&g, &algo, &config);

        assert!(noisy.stabilized);
        assert_eq!(noisy.events.len(), 2);
        assert_eq!(noisy.events[0].disturbance, Disturbance::Initial);
        assert_eq!(
            noisy.events[0].outcome,
            SegmentOutcome::Recovered { rounds: rec.initial_stabilization }
        );
        assert_eq!(
            noisy.events[1].disturbance,
            Disturbance::TransientFault { corrupted: rec.corrupted_nodes }
        );
        assert_eq!(
            noisy.events[1].outcome,
            SegmentOutcome::Recovered { rounds: rec.recovery_rounds }
        );
        assert_eq!(noisy.mis, rec.mis);
    }

    #[test]
    fn mild_noise_still_stabilizes() {
        let g = random::gnp(40, 0.1, 3);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let config = NoisyRunConfig::new(3)
            .with_max_rounds(200_000)
            .with_channel(ChannelFault::reliable().with_drop(0.05));
        let outcome = run_noisy(&g, &algo, &config);
        assert!(outcome.stabilized, "p=0.05 beep loss must still stabilize");
        assert!(outcome.all_recovered());
        assert!(graphs::mis::is_maximal_independent_set(&g, &outcome.mis));
    }

    #[test]
    fn churn_events_each_get_a_recovered_segment() {
        let g = random::gnp(30, 0.15, 9);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let churn = ChurnPlan::new()
            .with_event(400, ChurnAction::NodeLeave(3))
            .with_event(800, ChurnAction::NodeJoin(3, vec![0, 5, 7]))
            .with_event(1200, ChurnAction::RemoveEdge(0, 1))
            .with_event(1600, ChurnAction::AddEdge(0, 1));
        let config = NoisyRunConfig::new(9).with_max_rounds(100_000).with_churn(churn);
        let outcome = run_noisy(&g, &algo, &config);
        assert_eq!(outcome.events.len(), 5);
        for event in &outcome.events {
            assert!(
                event.outcome.is_recovered(),
                "finite re-stabilization after every event: {event:?}"
            );
        }
        assert!(outcome.stabilized);
        assert!(outcome.active.iter().all(|&a| a));
        // The final MIS is valid for the *churned* graph (node 3 was
        // rewired), so it is checked via the stabilization invariant rather
        // than against the input graph.
        assert!(outcome.mis.iter().any(|&m| m));
    }

    #[test]
    fn total_loss_diverges_and_reports_live_violations() {
        // drop_p = 1 makes every node deaf: under Algorithm 1 all nodes
        // sink to their claiming level, so adjacent claims stay live and
        // the run must report divergence, never a stable MIS.
        let g = classic::path(4);
        let algo = Algorithm1::new(&g, LmaxPolicy::fixed(4, 4));
        // AllOne start: deaf nodes can never reach ℓmax, so no observed
        // configuration can be stabilized — the divergence is deterministic.
        let config = NoisyRunConfig::new(2)
            .with_max_rounds(300)
            .with_init(InitialLevels::AllOne)
            .with_channel(ChannelFault::reliable().with_drop(1.0));
        let outcome = run_noisy(&g, &algo, &config);
        assert!(!outcome.stabilized);
        assert_eq!(outcome.events.len(), 1);
        assert_eq!(outcome.events[0].outcome, SegmentOutcome::Diverged { rounds: 300 });
        assert!(outcome.events[0].violation_rounds > 0);
        assert!(outcome.events[0].max_violation_streak > 0);
    }

    #[test]
    fn simultaneous_events_interrupt_in_order() {
        let g = classic::cycle(8);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let config = NoisyRunConfig::new(4)
            .with_max_rounds(100_000)
            .with_faults(FaultPlan::new().with_fault(100, FaultTarget::All))
            .with_churn(ChurnPlan::new().with_event(100, ChurnAction::RemoveEdge(0, 1)));
        let outcome = run_noisy(&g, &algo, &config);
        assert_eq!(outcome.events.len(), 3);
        // Faults apply before churn at the same boundary; the fault segment
        // is cut at zero rounds by the churn event.
        assert_eq!(outcome.events[1].disturbance, Disturbance::TransientFault { corrupted: 8 });
        assert_eq!(outcome.events[1].outcome, SegmentOutcome::Interrupted { rounds: 0 });
        assert!(matches!(outcome.events[2].disturbance, Disturbance::Churn(_)));
        assert!(outcome.stabilized);
    }

    #[test]
    fn two_channel_algorithm_recovers_under_noise_and_churn() {
        let g = random::gnp(30, 0.15, 11);
        let algo = Algorithm2::new(&g, LmaxPolicy::two_hop_degree(&g));
        let config = NoisyRunConfig::new(11)
            .with_max_rounds(200_000)
            .with_channel(ChannelFault::reliable().with_drop(0.02))
            .with_churn(ChurnPlan::new().with_event(500, ChurnAction::NodeLeave(2)));
        let outcome = run_noisy(&g, &algo, &config);
        assert!(outcome.stabilized);
        assert_eq!(outcome.events.len(), 2);
        assert!(!outcome.active[2]);
    }
}
