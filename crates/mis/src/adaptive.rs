//! An exploratory answer to the paper's open question (§8): *"It is
//! natural to ask whether the local knowledge can be completely removed."*
//!
//! [`AdaptiveMis`] runs Algorithm 1's level dynamics but replaces the
//! knowledge-derived constant `ℓmax(v)` with a **learned per-vertex cap**
//! stored in RAM: the cap starts wherever the (possibly corrupted) state
//! says, and doubles — up to a universal hard limit — after every
//! [`COLLISION_THRESHOLD`] *collisions* (rounds in which the vertex beeped
//! and heard a beep simultaneously). Collisions are exactly the evidence
//! that the cap is too small for the local contention: with
//! `cap ≥ ≈ log deg(v)` the geometric back-off makes simultaneous beeps
//! rare, while a stable vertex — an MIS member beeping into silence, or a
//! silenced neighbor — never collides at all, so learning stops precisely
//! when the configuration stabilizes.
//!
//! What this is and is not:
//!
//! - it uses **zero** topology knowledge (no Δ, no deg, no deg₂, no n);
//! - the hard limit [`HARD_CAP`] is a universal constant of the
//!   implementation (not of the instance); it bounds the state space the
//!   way "at most polynomial in n" bounds the paper's `ℓmax` for every
//!   realistic n (`2^31` vertices);
//! - there is **no stabilization-time proof** — experiment `EXT-ADAPT`
//!   measures it empirically against the knowledge-based policies. It is
//!   an exploration of the open problem, not a claimed solution.

use beeping::protocol::{BeepSignal, BeepingProtocol, Channels};
use graphs::{Graph, NodeId};
use rand::{Rng, RngCore};

use crate::invariant::{debug_assert_level_in_range, LevelSpace};
use crate::levels::{beep_probability, update_level, Level};

/// Universal upper limit on learned caps (≈ `2 log₂(2^15) + 30`; supports
/// any realistic network size).
pub const HARD_CAP: Level = 60;

/// Smallest admissible cap. A cap of 1 would deadlock (level 1 = cap means
/// beep probability 0 with no decay target), so the floor is 2.
pub const MIN_CAP: Level = 2;

/// Collisions (beep-while-hearing rounds) before the cap doubles.
pub const COLLISION_THRESHOLD: u8 = 4;

/// Aux-RNG purpose tag for adversarial random-state initialization.
///
/// Shared by [`AdaptiveMis::run_random_init`] and
/// [`AdaptiveMis::run_states`] *on purpose*: both must draw the same
/// initial states for a given seed so state-trace runs reproduce the exact
/// executions the bitmap runs measured.
const ADAPTIVE_INIT_RNG_PURPOSE: u64 = 0xADA;

/// Per-vertex state of the adaptive algorithm — all RAM, all corruptible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveState {
    /// Current level, in `{-cap, …, cap}`.
    pub level: Level,
    /// Learned level cap, in `{MIN_CAP, …, HARD_CAP}`.
    pub cap: Level,
    /// Collisions observed since the last cap doubling, in
    /// `{0, …, COLLISION_THRESHOLD - 1}`.
    pub collisions: u8,
}

impl AdaptiveState {
    /// Canonicalizes arbitrary (corrupted) values into the state space.
    pub fn sanitized(level: i64, cap: i64) -> AdaptiveState {
        let cap = cap.clamp(MIN_CAP as i64, HARD_CAP as i64) as Level;
        let level = level.clamp(-(cap as i64), cap as i64) as Level;
        AdaptiveState { level, cap, collisions: 0 }
    }

    /// The modest fresh-start state (`cap = MIN_CAP`, level 1).
    pub fn fresh() -> AdaptiveState {
        AdaptiveState { level: 1, cap: MIN_CAP, collisions: 0 }
    }
}

/// The knowledge-free adaptive protocol.
///
/// # Example
///
/// ```
/// use graphs::generators::random;
/// use mis::adaptive::AdaptiveMis;
///
/// let g = random::gnp(100, 0.08, 3);
/// let algo = AdaptiveMis::new();
/// let (mis, rounds) = algo.run_random_init(&g, 7, 1_000_000).expect("stabilizes");
/// assert!(graphs::mis::is_maximal_independent_set(&g, &mis));
/// assert!(rounds > 0);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct AdaptiveMis;

impl AdaptiveMis {
    /// Creates the protocol.
    pub fn new() -> AdaptiveMis {
        AdaptiveMis
    }

    /// Stable MIS members: prominent vertices all of whose neighbors sit at
    /// their own caps (the adaptive analogue of `I_t`).
    pub fn mis_members(&self, graph: &Graph, states: &[AdaptiveState]) -> Vec<bool> {
        graph
            .nodes()
            .map(|v| {
                states[v].level <= 0
                    && graph
                        .neighbors(v)
                        .iter()
                        .all(|&u| states[u as usize].level == states[u as usize].cap)
            })
            .collect()
    }

    /// `true` when the stable set covers the graph; the resulting
    /// configuration is a fixpoint absent faults.
    pub fn is_stabilized(&self, graph: &Graph, states: &[AdaptiveState]) -> bool {
        let mis = self.mis_members(graph, states);
        graph.nodes().all(|v| mis[v] || graph.neighbors(v).iter().any(|&u| mis[u as usize]))
    }

    /// Runs from uniformly random (adversarial) states; returns the MIS
    /// bitmap and stabilization round, or `None` on budget exhaustion.
    pub fn run_random_init(
        &self,
        graph: &Graph,
        seed: u64,
        max_rounds: u64,
    ) -> Option<(Vec<bool>, u64)> {
        let mut rng = beeping::rng::aux_rng(seed, ADAPTIVE_INIT_RNG_PURPOSE);
        let init: Vec<AdaptiveState> = (0..graph.len())
            .map(|_| {
                AdaptiveState::sanitized(
                    rng.gen_range(-(HARD_CAP as i64)..=HARD_CAP as i64),
                    rng.gen_range(0..=2 * HARD_CAP as i64),
                )
            })
            .collect();
        self.run_from(graph, init, seed, max_rounds)
    }

    /// Runs from explicit initial states.
    pub fn run_from(
        &self,
        graph: &Graph,
        initial: Vec<AdaptiveState>,
        seed: u64,
        max_rounds: u64,
    ) -> Option<(Vec<bool>, u64)> {
        let mut sim = beeping::Simulator::new(graph, *self, initial, seed);
        let done = sim.run_until(max_rounds, |s| self.is_stabilized(graph, s.states()))?;
        Some((self.mis_members(graph, sim.states()), done))
    }

    /// Runs and returns the final states (for cap-learning analyses).
    pub fn run_states(
        &self,
        graph: &Graph,
        seed: u64,
        max_rounds: u64,
    ) -> Option<(Vec<AdaptiveState>, u64)> {
        let mut rng = beeping::rng::aux_rng(seed, ADAPTIVE_INIT_RNG_PURPOSE);
        let init: Vec<AdaptiveState> = (0..graph.len())
            .map(|_| {
                AdaptiveState::sanitized(
                    rng.gen_range(-(HARD_CAP as i64)..=HARD_CAP as i64),
                    rng.gen_range(0..=2 * HARD_CAP as i64),
                )
            })
            .collect();
        let mut sim = beeping::Simulator::new(graph, *self, init, seed);
        let done = sim.run_until(max_rounds, |s| self.is_stabilized(graph, s.states()))?;
        Some((sim.states().to_vec(), done))
    }
}

impl BeepingProtocol for AdaptiveMis {
    type State = AdaptiveState;

    fn channels(&self) -> Channels {
        Channels::One
    }

    fn transmit(&self, _node: NodeId, state: &AdaptiveState, rng: &mut dyn RngCore) -> BeepSignal {
        debug_assert_level_in_range(state.level, state.cap, LevelSpace::Signed);
        let p = beep_probability(state.level, state.cap);
        if p > 0.0 && rng.gen_bool(p) {
            BeepSignal::channel1()
        } else {
            BeepSignal::silent()
        }
    }

    fn receive(
        &self,
        _node: NodeId,
        state: &mut AdaptiveState,
        sent: BeepSignal,
        heard: BeepSignal,
        _rng: &mut dyn RngCore,
    ) {
        // Collision = contention evidence; a stable vertex never collides
        // (MIS members beep into silence; silenced vertices never beep), so
        // cap learning halts exactly at stabilization.
        if sent.on_channel1() && heard.on_channel1() {
            state.collisions += 1;
            if state.collisions >= COLLISION_THRESHOLD {
                state.collisions = 0;
                state.cap = (state.cap * 2).min(HARD_CAP);
            }
        }
        state.level = update_level(state.level, state.cap, sent.on_channel1(), heard.on_channel1());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::generators::{classic, composite, random, scale_free};

    #[test]
    fn sanitize_clamps() {
        let s = AdaptiveState::sanitized(1000, 1000);
        assert_eq!(s, AdaptiveState { level: HARD_CAP, cap: HARD_CAP, collisions: 0 });
        let s = AdaptiveState::sanitized(-1000, 0);
        assert_eq!(s, AdaptiveState { level: -MIN_CAP, cap: MIN_CAP, collisions: 0 });
    }

    #[test]
    fn stabilizes_on_families_without_any_knowledge() {
        for (i, g) in [
            classic::path(30),
            classic::cycle(25),
            classic::complete(16),
            classic::star(30),
            random::gnp(100, 0.08, 2),
            scale_free::barabasi_albert(100, 3, 3).unwrap(),
            composite::star_of_cliques(8, 6),
        ]
        .iter()
        .enumerate()
        {
            let algo = AdaptiveMis::new();
            let (mis, rounds) = algo
                .run_random_init(g, i as u64, 2_000_000)
                .unwrap_or_else(|| panic!("graph {i} did not stabilize"));
            assert!(graphs::mis::is_maximal_independent_set(g, &mis), "graph {i}");
            assert!(rounds > 0);
        }
    }

    #[test]
    fn caps_grow_under_contention() {
        // On a clique, tiny caps collide constantly; final caps must exceed
        // the minimum.
        let g = classic::complete(24);
        let algo = AdaptiveMis::new();
        let init = vec![AdaptiveState::fresh(); 24];
        let mut sim = beeping::Simulator::new(&g, algo, init, 5);
        sim.run_until(1_000_000, |s| algo.is_stabilized(&g, s.states())).expect("stabilizes");
        let max_cap = sim.states().iter().map(|s| s.cap).max().unwrap();
        assert!(max_cap > MIN_CAP, "caps never grew: {max_cap}");
        assert!(max_cap <= HARD_CAP);
    }

    #[test]
    fn stable_configuration_is_fixpoint() {
        let g = classic::path(3);
        let algo = AdaptiveMis::new();
        let states = vec![
            AdaptiveState { level: 4, cap: 4, collisions: 0 },
            AdaptiveState { level: -6, cap: 6, collisions: 0 },
            AdaptiveState { level: 8, cap: 8, collisions: 0 },
        ];
        assert!(algo.is_stabilized(&g, &states));
        let mut sim = beeping::Simulator::new(&g, algo, states.clone(), 1);
        sim.run(40);
        assert_eq!(sim.states(), states.as_slice());
    }

    #[test]
    fn state_space_invariant_maintained() {
        let g = random::gnp(40, 0.15, 7);
        let algo = AdaptiveMis::new();
        let mut rng = beeping::rng::aux_rng(3, 9);
        let init: Vec<AdaptiveState> = (0..40)
            .map(|_| {
                AdaptiveState::sanitized(
                    rand::Rng::gen_range(&mut rng, -100..100),
                    rand::Rng::gen_range(&mut rng, -5..100),
                )
            })
            .collect();
        let mut sim = beeping::Simulator::new(&g, algo, init, 3);
        for _ in 0..300 {
            sim.step();
            for s in sim.states() {
                assert!(s.cap >= MIN_CAP && s.cap <= HARD_CAP);
                assert!(s.level >= -s.cap && s.level <= s.cap);
                assert!(s.collisions < COLLISION_THRESHOLD);
            }
        }
    }

    #[test]
    fn deterministic() {
        let g = random::gnp(50, 0.1, 4);
        let algo = AdaptiveMis::new();
        assert_eq!(algo.run_random_init(&g, 9, 1_000_000), algo.run_random_init(&g, 9, 1_000_000));
    }
}
