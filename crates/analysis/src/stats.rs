//! Summary statistics over repeated randomized trials.

/// Summary statistics of a sample.
///
/// # Example
///
/// ```
/// use analysis::Summary;
///
/// let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
/// assert_eq!(s.n, 5);
/// assert_eq!(s.mean, 3.0);
/// assert_eq!(s.median, 3.0);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// Median (interpolated).
    pub median: f64,
    /// 95th percentile (interpolated).
    pub p95: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes the summary of `data`.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or contains NaN.
    pub fn of(data: &[f64]) -> Summary {
        assert!(!data.is_empty(), "cannot summarize an empty sample");
        assert!(data.iter().all(|x| !x.is_nan()), "sample contains NaN");
        let n = data.len();
        let mean = data.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            data.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n as f64 - 1.0)
        } else {
            0.0
        };
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        Summary {
            n,
            mean,
            stddev: var.sqrt(),
            min: sorted[0],
            median: percentile_sorted(&sorted, 50.0),
            p95: percentile_sorted(&sorted, 95.0),
            max: sorted[n - 1],
        }
    }

    /// Convenience: summary of integer counts (e.g. round numbers).
    pub fn of_counts<I: IntoIterator<Item = u64>>(counts: I) -> Summary {
        let data: Vec<f64> = counts.into_iter().map(|c| c as f64).collect();
        Summary::of(&data)
    }

    /// Half-width of an approximate 95% confidence interval for the mean
    /// (normal approximation, `1.96 · s / √n`; 0 for n < 2).
    pub fn ci95_halfwidth(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.stddev / (self.n as f64).sqrt()
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.2}±{:.2} med={:.1} p95={:.1} range=[{:.0}, {:.0}]",
            self.n,
            self.mean,
            self.ci95_halfwidth(),
            self.median,
            self.p95,
            self.min,
            self.max
        )
    }
}

/// Interpolated percentile of an already-sorted sample.
///
/// # Panics
///
/// Panics if `sorted` is empty or `q` outside `[0, 100]`.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "cannot take a percentile of an empty sample");
    assert!((0.0..=100.0).contains(&q), "percentile must be in [0, 100], got {q}");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Interpolated percentile of an unsorted sample.
///
/// # Panics
///
/// See [`percentile_sorted`]; additionally panics on NaN.
pub fn percentile(data: &[f64], q: f64) -> f64 {
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    percentile_sorted(&sorted, q)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_element() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.p95, 7.0);
        assert_eq!(s.ci95_halfwidth(), 0.0);
    }

    #[test]
    fn known_stddev() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample variance = 32/7.
        assert!((s.stddev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn percentiles_interpolate() {
        let data = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&data, 0.0), 10.0);
        assert_eq!(percentile(&data, 100.0), 40.0);
        assert_eq!(percentile(&data, 50.0), 25.0);
        assert!((percentile(&data, 25.0) - 17.5).abs() < 1e-12);
    }

    #[test]
    fn of_counts() {
        let s = Summary::of_counts([5u64, 10, 15]);
        assert_eq!(s.mean, 10.0);
        assert_eq!(s.n, 3);
    }

    #[test]
    fn display_nonempty() {
        assert!(!Summary::of(&[1.0, 2.0]).to_string().is_empty());
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_rejected() {
        Summary::of(&[]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        Summary::of(&[1.0, f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 100]")]
    fn bad_percentile_rejected() {
        percentile(&[1.0], 101.0);
    }
}
