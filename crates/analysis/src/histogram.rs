//! Quick ASCII histograms and tail views for distribution experiments.

/// A fixed-bin histogram over `f64` samples.
///
/// # Example
///
/// ```
/// use analysis::histogram::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// for x in [1.0, 1.5, 9.0] {
///     h.add(x);
/// }
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.bin_counts()[0], 2);
/// assert_eq!(h.bin_counts()[4], 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<usize>,
    below: usize,
    above: usize,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(lo < hi, "lo must be < hi");
        assert!(bins > 0, "need at least one bin");
        Histogram { lo, hi, bins: vec![0; bins], below: 0, above: 0 }
    }

    /// Adds a sample; values outside `[lo, hi)` land in overflow counters.
    pub fn add(&mut self, x: f64) {
        if x < self.lo {
            self.below += 1;
        } else if x >= self.hi {
            self.above += 1;
        } else {
            let count = self.bins.len();
            let idx = ((x - self.lo) / (self.hi - self.lo) * count as f64) as usize;
            self.bins[idx.min(count - 1)] += 1;
        }
    }

    /// Total samples added (including overflow).
    pub fn count(&self) -> usize {
        self.bins.iter().sum::<usize>() + self.below + self.above
    }

    /// Per-bin counts.
    pub fn bin_counts(&self) -> &[usize] {
        &self.bins
    }

    /// Samples below the range.
    pub fn underflow(&self) -> usize {
        self.below
    }

    /// Samples at or above the upper bound.
    pub fn overflow(&self) -> usize {
        self.above
    }

    /// Renders a compact horizontal bar chart (one line per bin).
    pub fn render(&self, width: usize) -> String {
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let bin_width = (self.hi - self.lo) / self.bins.len() as f64;
        let mut out = String::new();
        for (i, &c) in self.bins.iter().enumerate() {
            let lo = self.lo + bin_width * i as f64;
            let bar_len = (c * width).div_ceil(max).min(width);
            let bar: String = "#".repeat(if c == 0 { 0 } else { bar_len.max(1) });
            out.push_str(&format!("[{:>10.2}, {:>10.2})  {:>7}  {}\n", lo, lo + bin_width, c, bar));
        }
        if self.below + self.above > 0 {
            out.push_str(&format!("outside range: {} below, {} above\n", self.below, self.above));
        }
        out
    }
}

/// Empirical complementary CDF: for each threshold `k` in `thresholds`,
/// the fraction of samples `≥ k`. Used by the Lemma 3.5 tail experiment.
pub fn ccdf(samples: &[f64], thresholds: &[f64]) -> Vec<f64> {
    if samples.is_empty() {
        return vec![0.0; thresholds.len()];
    }
    thresholds
        .iter()
        .map(|&k| samples.iter().filter(|&&x| x >= k).count() as f64 / samples.len() as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.add(i as f64 + 0.5);
        }
        assert_eq!(h.bin_counts(), &[1; 10]);
        assert_eq!(h.count(), 10);
    }

    #[test]
    fn overflow_handling() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(-1.0);
        h.add(1.0); // hi is exclusive
        h.add(5.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn boundary_lands_in_correct_bin() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.add(0.0);
        h.add(9.999_999);
        assert_eq!(h.bin_counts()[0], 1);
        assert_eq!(h.bin_counts()[9], 1);
    }

    #[test]
    fn render_contains_bars() {
        let mut h = Histogram::new(0.0, 4.0, 2);
        h.add(1.0);
        h.add(1.2);
        h.add(3.0);
        let s = h.render(10);
        assert!(s.contains('#'));
        assert!(s.lines().count() >= 2);
    }

    #[test]
    fn ccdf_values() {
        let samples = [1.0, 2.0, 3.0, 4.0];
        let tail = ccdf(&samples, &[0.0, 2.5, 4.0, 9.0]);
        assert_eq!(tail, vec![1.0, 0.5, 0.25, 0.0]);
        assert_eq!(ccdf(&[], &[1.0]), vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "lo must be < hi")]
    fn bad_range_rejected() {
        Histogram::new(1.0, 1.0, 3);
    }
}
