//! Aligned ASCII tables for experiment output.

/// A simple right-aligned ASCII table with a header row.
///
/// # Example
///
/// ```
/// use analysis::Table;
///
/// let mut t = Table::new(["n", "rounds"]);
/// t.row(["128", "42.0"]);
/// t.row(["256", "47.5"]);
/// let text = t.to_string();
/// assert!(text.contains("rounds"));
/// assert!(text.contains("47.5"));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(header: I) -> Table
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Table
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width must match header width");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as RFC-4180-style CSV (quoting cells containing
    /// commas, quotes or newlines) — the machine-readable companion of the
    /// `Display` rendering.
    pub fn to_csv(&self) -> String {
        fn cell(s: &str) -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        let mut write_row = |row: &[String]| {
            let line: Vec<String> = row.iter().map(|c| cell(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        write_row(&self.header);
        for row in &self.rows {
            write_row(row);
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let write_row = |f: &mut std::fmt::Formatter<'_>, row: &[String]| -> std::fmt::Result {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                let pad = widths[i] - cell.chars().count();
                write!(f, "{}{}", " ".repeat(pad), cell)?;
            }
            writeln!(f)
        };
        write_row(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with a sensible number of digits for table cells.
pub fn fmt_f64(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["a", "long-header"]);
        t.row(["1", "2"]);
        t.row(["333", "4"]);
        let text = t.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows equal rendered width.
        assert!(lines.iter().all(|l| l.chars().count() == lines[0].chars().count()));
        assert!(lines[1].chars().all(|c| c == '-'));
    }

    #[test]
    fn unicode_width_counts_chars() {
        let mut t = Table::new(["ℓmax"]);
        t.row(["3"]);
        let text = t.to_string();
        assert!(text.contains("ℓmax"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        Table::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(["x"]);
        assert!(t.is_empty());
        t.row(["1"]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn csv_rendering_and_quoting() {
        let mut t = Table::new(["name", "value"]);
        t.row(["plain", "1"]);
        t.row(["with,comma", "say \"hi\""]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "name,value");
        assert_eq!(lines[1], "plain,1");
        assert_eq!(lines[2], "\"with,comma\",\"say \"\"hi\"\"\"");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(1234.6), "1235");
        assert_eq!(fmt_f64(42.25), "42.2");
        assert_eq!(fmt_f64(1.23456), "1.235");
    }
}
