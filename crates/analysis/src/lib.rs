//! Statistics, model fitting and table formatting for experiment reporting.
//!
//! The paper's claims are asymptotic w.h.p. statements; the experiments
//! validate them empirically by
//!
//! - summarizing stabilization times over many seeds ([`stats`]),
//! - fitting the measured `T(n)` curves against the candidate growth models
//!   `log n`, `log n · log log n` and `log² n` ([`regression`]),
//! - and printing aligned ASCII tables ([`table`]) plus quick distribution
//!   views ([`histogram`]).

pub mod histogram;
pub mod regression;
pub mod stats;
pub mod table;

pub use regression::{FitReport, GrowthModel, LinearFit};
pub use stats::Summary;
pub use table::Table;
