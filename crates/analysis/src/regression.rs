//! Least-squares fitting of stabilization-time curves against the paper's
//! candidate growth models.
//!
//! The experiments measure `T(n)` — stabilization rounds at network size
//! `n` — and ask which of the theoretical shapes explains the data:
//!
//! - Theorem 2.1 / Corollary 2.3 predict `T(n) = Θ(log n)`,
//! - Theorem 2.2 predicts `T(n) = O(log n · log log n)`,
//! - Afek et al.'s baseline scales like `log² N · log n`-ish,
//! - a naive non-adaptive protocol would be polynomial.
//!
//! Each model is a feature map `x = g(n)`; we fit `T ≈ a + b·x` by ordinary
//! least squares and compare coefficients of determination `R²`.

/// A candidate growth model, i.e. a feature map `n ↦ g(n)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GrowthModel {
    /// Constant (the null model; fit reduces to the mean).
    Constant,
    /// `log₂ n`.
    LogN,
    /// `log₂ n · log₂ log₂ n` (with the inner log clamped at 1).
    LogNLogLogN,
    /// `log₂² n`.
    LogSquaredN,
    /// `√n`.
    SqrtN,
    /// `n`.
    Linear,
}

impl GrowthModel {
    /// Evaluates the feature map at `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` (the asymptotic features are meaningless there and
    /// experiments never use such sizes).
    pub fn feature(self, n: usize) -> f64 {
        assert!(n >= 2, "growth models are evaluated at n >= 2, got {n}");
        let x = n as f64;
        let log = x.log2();
        match self {
            GrowthModel::Constant => 1.0,
            GrowthModel::LogN => log,
            GrowthModel::LogNLogLogN => log * log.log2().max(1.0),
            GrowthModel::LogSquaredN => log * log,
            GrowthModel::SqrtN => x.sqrt(),
            GrowthModel::Linear => x,
        }
    }

    /// All models the experiments compare.
    pub fn all() -> [GrowthModel; 6] {
        [
            GrowthModel::Constant,
            GrowthModel::LogN,
            GrowthModel::LogNLogLogN,
            GrowthModel::LogSquaredN,
            GrowthModel::SqrtN,
            GrowthModel::Linear,
        ]
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            GrowthModel::Constant => "1",
            GrowthModel::LogN => "log n",
            GrowthModel::LogNLogLogN => "log n·loglog n",
            GrowthModel::LogSquaredN => "log² n",
            GrowthModel::SqrtN => "√n",
            GrowthModel::Linear => "n",
        }
    }
}

impl std::fmt::Display for GrowthModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// An ordinary-least-squares fit `y ≈ intercept + slope · x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Intercept `a`.
    pub intercept: f64,
    /// Slope `b`.
    pub slope: f64,
    /// Coefficient of determination.
    pub r_squared: f64,
}

impl LinearFit {
    /// Fits `y ≈ a + b·x` by least squares.
    ///
    /// For degenerate inputs (constant `x`), the slope is 0 and the fit
    /// reduces to the mean of `y`.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length or have fewer than 2 points.
    pub fn fit(x: &[f64], y: &[f64]) -> LinearFit {
        assert_eq!(x.len(), y.len(), "x and y must pair up");
        assert!(x.len() >= 2, "need at least two points to fit a line");
        let n = x.len() as f64;
        let mx = x.iter().sum::<f64>() / n;
        let my = y.iter().sum::<f64>() / n;
        let sxx: f64 = x.iter().map(|v| (v - mx) * (v - mx)).sum();
        let sxy: f64 = x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)).sum();
        let syy: f64 = y.iter().map(|v| (v - my) * (v - my)).sum();
        let slope = if sxx > 0.0 { sxy / sxx } else { 0.0 };
        let intercept = my - slope * mx;
        let r_squared = if syy > 0.0 && sxx > 0.0 {
            (sxy * sxy) / (sxx * syy)
        } else if syy == 0.0 {
            1.0 // a constant y is explained perfectly by any line
        } else {
            0.0
        };
        LinearFit { intercept, slope, r_squared }
    }

    /// Predicted value at feature `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// The result of fitting one growth model to a `T(n)` curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitReport {
    /// The model fitted.
    pub model: GrowthModel,
    /// The least-squares fit in feature space.
    pub fit: LinearFit,
}

impl FitReport {
    /// Fits `model` to measured `(n, T)` pairs.
    ///
    /// # Panics
    ///
    /// See [`LinearFit::fit`] and [`GrowthModel::feature`].
    pub fn fit(model: GrowthModel, sizes: &[usize], times: &[f64]) -> FitReport {
        let x: Vec<f64> = sizes.iter().map(|&n| model.feature(n)).collect();
        FitReport { model, fit: LinearFit::fit(&x, times) }
    }

    /// Fits every candidate model and returns the reports ordered from best
    /// to worst `R²`.
    pub fn compare_all(sizes: &[usize], times: &[f64]) -> Vec<FitReport> {
        let mut reports: Vec<FitReport> =
            GrowthModel::all().into_iter().map(|m| FitReport::fit(m, sizes, times)).collect();
        reports.sort_by(|a, b| {
            b.fit.r_squared.partial_cmp(&a.fit.r_squared).expect("R² is never NaN")
        });
        reports
    }

    /// Predicted time at size `n`.
    pub fn predict(&self, n: usize) -> f64 {
        self.fit.predict(self.model.feature(n))
    }
}

impl std::fmt::Display for FitReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "T(n) ≈ {:.2} + {:.3}·{}   (R² = {:.4})",
            self.fit.intercept,
            self.fit.slope,
            self.model.name(),
            self.fit.r_squared
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [3.0, 5.0, 7.0, 9.0];
        let fit = LinearFit::fit(&x, &y);
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!((fit.intercept - 1.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!((fit.predict(10.0) - 21.0).abs() < 1e-12);
    }

    #[test]
    fn constant_x_degenerate() {
        let fit = LinearFit::fit(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]);
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.intercept, 2.0);
        assert_eq!(fit.r_squared, 0.0);
    }

    #[test]
    fn constant_y_perfect() {
        let fit = LinearFit::fit(&[1.0, 2.0, 3.0], &[4.0, 4.0, 4.0]);
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn features_ordering() {
        // For large n: log n < log n loglog n < log² n < √n < n.
        let n = 1 << 20;
        let values: Vec<f64> = [
            GrowthModel::LogN,
            GrowthModel::LogNLogLogN,
            GrowthModel::LogSquaredN,
            GrowthModel::SqrtN,
            GrowthModel::Linear,
        ]
        .iter()
        .map(|m| m.feature(n))
        .collect();
        for w in values.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn log_model_fits_log_data_best() {
        let sizes: Vec<usize> = (7..=16).map(|k| 1usize << k).collect();
        let times: Vec<f64> = sizes.iter().map(|&n| 5.0 + 3.0 * (n as f64).log2()).collect();
        let reports = FitReport::compare_all(&sizes, &times);
        assert_eq!(reports[0].model, GrowthModel::LogN);
        assert!(reports[0].fit.r_squared > 0.9999);
    }

    #[test]
    fn loglog_model_fits_loglog_data_best() {
        let sizes: Vec<usize> = (7..=20).map(|k| 1usize << k).collect();
        let times: Vec<f64> = sizes
            .iter()
            .map(|&n| {
                let l = (n as f64).log2();
                2.0 + 1.5 * l * l.log2()
            })
            .collect();
        let reports = FitReport::compare_all(&sizes, &times);
        assert_eq!(reports[0].model, GrowthModel::LogNLogLogN);
    }

    #[test]
    fn display_mentions_model() {
        let r = FitReport::fit(GrowthModel::LogN, &[128, 256, 512], &[10.0, 11.0, 12.0]);
        assert!(r.to_string().contains("log n"));
    }

    #[test]
    #[should_panic(expected = "n >= 2")]
    fn feature_rejects_tiny_n() {
        GrowthModel::LogN.feature(1);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn fit_rejects_single_point() {
        LinearFit::fit(&[1.0], &[1.0]);
    }
}
