//! Property-based tests for the statistics toolkit.

use analysis::histogram::{ccdf, Histogram};
use analysis::stats::{percentile, Summary};
use analysis::{FitReport, GrowthModel, LinearFit, Table};
use proptest::prelude::*;

fn arb_sample() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e6f64..1e6, 1..200)
}

proptest! {
    #[test]
    fn summary_bounds(data in arb_sample()) {
        let s = Summary::of(&data);
        prop_assert!(s.min <= s.median && s.median <= s.max);
        prop_assert!(s.median <= s.p95 && s.p95 <= s.max);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
        prop_assert!(s.stddev >= 0.0);
        prop_assert_eq!(s.n, data.len());
    }

    #[test]
    fn summary_shift_invariance(data in arb_sample(), shift in -1e3f64..1e3) {
        let s1 = Summary::of(&data);
        let shifted: Vec<f64> = data.iter().map(|x| x + shift).collect();
        let s2 = Summary::of(&shifted);
        prop_assert!((s2.mean - s1.mean - shift).abs() < 1e-6 * (1.0 + s1.mean.abs()));
        prop_assert!((s2.stddev - s1.stddev).abs() < 1e-6 * (1.0 + s1.stddev));
    }

    #[test]
    fn percentiles_monotone(data in arb_sample(), q1 in 0.0f64..100.0, q2 in 0.0f64..100.0) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(percentile(&data, lo) <= percentile(&data, hi) + 1e-9);
    }

    #[test]
    fn linear_fit_residual_orthogonality(
        pairs in proptest::collection::vec((-100f64..100.0, -100f64..100.0), 2..60)
    ) {
        let x: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let y: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let fit = LinearFit::fit(&x, &y);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&fit.r_squared));
        // OLS property: residuals sum to ~0 (when x is not degenerate).
        let residual_sum: f64 = x.iter().zip(&y).map(|(&a, &b)| b - fit.predict(a)).sum();
        prop_assert!(residual_sum.abs() < 1e-6 * (1.0 + y.iter().map(|v| v.abs()).sum::<f64>()));
    }

    #[test]
    fn fit_recovers_planted_model(
        a in 1.0f64..50.0,
        b in 0.5f64..20.0,
    ) {
        // Plant y = a + b·log2(n) over a wide n range; the LogN fit must be
        // near-perfect.
        let sizes: Vec<usize> = (7..=20).map(|k| 1usize << k).collect();
        let times: Vec<f64> = sizes.iter().map(|&n| a + b * (n as f64).log2()).collect();
        let fit = FitReport::fit(GrowthModel::LogN, &sizes, &times);
        prop_assert!(fit.fit.r_squared > 0.999999);
        prop_assert!((fit.fit.slope - b).abs() < 1e-6);
        prop_assert!((fit.fit.intercept - a).abs() < 1e-4);
    }

    #[test]
    fn histogram_conserves_mass(data in arb_sample(), lo in -10f64..0.0, width in 1f64..100.0) {
        let mut h = Histogram::new(lo, lo + width, 7);
        for &x in &data {
            h.add(x);
        }
        prop_assert_eq!(h.count(), data.len());
        let binned: usize = h.bin_counts().iter().sum();
        prop_assert_eq!(binned + h.underflow() + h.overflow(), data.len());
    }

    #[test]
    fn ccdf_is_monotone_nonincreasing(data in arb_sample()) {
        let thresholds: Vec<f64> = (0..10).map(|i| -1e6 + i as f64 * 2e5).collect();
        let tail = ccdf(&data, &thresholds);
        for w in tail.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
        prop_assert!(tail[0] <= 1.0 && *tail.last().unwrap() >= 0.0);
    }

    #[test]
    fn table_renders_all_cells(
        rows in proptest::collection::vec(("[a-z]{1,8}", 0u32..1000), 1..20)
    ) {
        let mut t = Table::new(["name", "value"]);
        for (name, value) in &rows {
            t.row([name.clone(), value.to_string()]);
        }
        let text = t.to_string();
        let csv = t.to_csv();
        for (name, value) in &rows {
            prop_assert!(text.contains(name.as_str()));
            prop_assert!(csv.contains(name.as_str()));
            prop_assert!(text.contains(&value.to_string()));
        }
        prop_assert_eq!(csv.lines().count(), rows.len() + 1);
    }
}
