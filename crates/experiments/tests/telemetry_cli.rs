//! End-to-end test of the `--telemetry <path>` CLI flag: the exported JSONL
//! must parse, and the per-round counters summed from the stream must equal
//! the accumulated `trace.*` counters in the final metrics snapshot (which
//! mirror the run's `Trace` totals).

use std::process::Command;

use telemetry::jsonl::{parse_jsonl, Value};

fn counter(metrics: &Value, name: &str) -> u64 {
    metrics
        .get("counters")
        .and_then(|c| c.get(name))
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("metrics snapshot missing counter {name}"))
}

#[test]
fn telemetry_jsonl_round_trips_trace_totals() {
    let out = std::env::temp_dir().join(format!("telemetry_cli_{}.jsonl", std::process::id()));
    let status = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(["DYN", "--quick", "--telemetry"])
        .arg(&out)
        .arg("--level-stride")
        .arg("4")
        .output()
        .expect("experiments binary runs");
    assert!(status.status.success(), "CLI failed: {}", String::from_utf8_lossy(&status.stderr));
    let text = std::fs::read_to_string(&out).expect("telemetry file written");
    let _ = std::fs::remove_file(&out);
    let docs = parse_jsonl(&text).expect("every line parses as JSON");

    let ty = |d: &Value| d.get("type").and_then(Value::as_str).unwrap_or_default().to_string();
    assert_eq!(ty(&docs[0]), "run_start");
    assert_eq!(docs[0].get("label").unwrap().as_str(), Some("runner"));
    assert_eq!(ty(docs.last().unwrap()), "metrics");
    assert!(docs.iter().any(|d| ty(d) == "run_end"));

    let rounds: Vec<&Value> = docs.iter().filter(|d| ty(d) == "round").collect();
    assert!(!rounds.is_empty(), "stream carries round events");
    // Histograms appear exactly on the sampled stride.
    for d in &rounds {
        let round = d.get("round").unwrap().as_u64().unwrap();
        assert_eq!(d.get("levels").is_some(), round % 4 == 0, "round {round}");
    }

    let metrics = docs.last().unwrap();
    let sum = |field: &str| -> u64 {
        rounds.iter().map(|d| d.get(field).and_then(Value::as_u64).unwrap_or(0)).sum()
    };
    assert_eq!(rounds.len() as u64, counter(metrics, "trace.rounds"));
    assert_eq!(sum("beeps_c1"), counter(metrics, "trace.beeps_c1"));
    assert_eq!(sum("beeps_c2"), counter(metrics, "trace.beeps_c2"));
    assert_eq!(sum("hearers_c1"), counter(metrics, "trace.hearers_c1"));
    assert_eq!(sum("hearers_c2"), counter(metrics, "trace.hearers_c2"));
    assert_eq!(sum("lone_c1"), counter(metrics, "trace.lone_c1"));
    assert_eq!(sum("lone_c2"), counter(metrics, "trace.lone_c2"));
}

#[test]
fn telemetry_flag_rejects_bad_stride() {
    let out = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(["F1", "--quick", "--level-stride", "nope"])
        .output()
        .expect("experiments binary runs");
    assert!(!out.status.success());
}
