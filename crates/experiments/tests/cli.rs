//! Integration tests of the two command-line binaries, driven end to end
//! through `std::process`.

use std::process::Command;

fn solve() -> Command {
    Command::new(env!("CARGO_BIN_EXE_solve"))
}

fn experiments_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_experiments"))
}

fn supervised() -> Command {
    Command::new(env!("CARGO_BIN_EXE_supervised"))
}

/// Pulls the `digest=<16 hex>` line out of a successful supervised run.
fn parse_digest(stdout: &str) -> String {
    stdout
        .lines()
        .find_map(|l| l.strip_prefix("digest="))
        .unwrap_or_else(|| panic!("no digest line in:\n{stdout}"))
        .to_string()
}

fn parse_mis_output(stdout: &str) -> (String, Vec<usize>) {
    let mut lines = stdout.lines();
    let header = lines.next().expect("stats header").to_string();
    assert!(header.starts_with("# "), "header line: {header}");
    let members = lines.map(|l| l.parse().expect("vertex id")).collect();
    (header, members)
}

#[test]
fn solve_generates_and_solves() {
    let out =
        solve().args(["--generate", "gnp:150:8", "--seed", "5"]).output().expect("solve runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let (header, members) = parse_mis_output(&String::from_utf8(out.stdout).unwrap());
    assert!(header.contains("n=150"));
    assert!(header.contains("algorithm=alg1"));
    assert!(!members.is_empty());
    // Independently verify against the same generated graph.
    let g = graphs::generators::random::gnp(150, 8.0 / 149.0, 5);
    let mut set = vec![false; 150];
    for v in members {
        set[v] = true;
    }
    assert!(graphs::mis::is_maximal_independent_set(&g, &set));
}

#[test]
fn solve_reads_edge_list_files_and_writes_dot() {
    let dir = std::env::temp_dir();
    let graph_path = dir.join("beeping_mis_cli_test.edges");
    let dot_path = dir.join("beeping_mis_cli_test.dot");
    let g = graphs::generators::classic::cycle(12);
    std::fs::write(&graph_path, graphs::edgelist::to_string(&g)).unwrap();

    let out = solve()
        .args([
            "--graph",
            graph_path.to_str().unwrap(),
            "--algorithm",
            "alg2",
            "--policy",
            "deg2",
            "--dot",
            dot_path.to_str().unwrap(),
        ])
        .output()
        .expect("solve runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let (header, members) = parse_mis_output(&String::from_utf8(out.stdout).unwrap());
    assert!(header.contains("algorithm=alg2"));
    let mut set = vec![false; 12];
    for v in members {
        set[v] = true;
    }
    assert!(graphs::mis::is_maximal_independent_set(&g, &set));
    let dot = std::fs::read_to_string(&dot_path).unwrap();
    assert!(dot.contains("graph beeping_mis"));
    assert!(dot.contains("style=filled"));
}

#[test]
fn solve_adaptive_algorithm() {
    let out = solve()
        .args(["--generate", "cycle:30", "--algorithm", "adaptive"])
        .output()
        .expect("solve runs");
    assert!(out.status.success());
    let (header, _) = parse_mis_output(&String::from_utf8(out.stdout).unwrap());
    assert!(header.contains("algorithm=adaptive"));
}

#[test]
fn solve_rejects_bad_arguments() {
    for args in [
        vec![] as Vec<&str>,
        vec!["--generate", "nope:10"],
        vec!["--generate", "gnp:10:4", "--algorithm", "quantum"],
        vec!["--generate", "gnp:10:4", "--policy", "psychic"],
        vec!["--graph", "/definitely/not/a/file"],
        vec!["--generate", "gnp:10:4", "--bogus-flag"],
    ] {
        let out = solve().args(&args).output().expect("solve runs");
        assert!(!out.status.success(), "args {args:?} should fail");
        assert!(!out.stderr.is_empty());
    }
}

#[test]
fn experiments_list_shows_registry() {
    let out = experiments_bin().arg("--list").output().expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    for id in ["T2.1", "C2.3", "SS-A", "EXT-WAKE"] {
        assert!(text.contains(id), "missing {id} in registry listing");
    }
}

#[test]
fn experiments_rejects_unknown_id() {
    let out = experiments_bin().arg("NOPE-42").output().expect("runs");
    assert!(!out.status.success());
}

#[test]
fn supervised_kill_then_resume_matches_uninterrupted() {
    let dir = std::env::temp_dir().join(format!("beeping_mis_supervised_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let workload = ["--family", "gnp", "--n", "64", "--seed", "11", "--max-rounds", "50000"];

    // Reference: one uninterrupted run, no checkpointing at all.
    let reference = supervised().args(workload).output().expect("runs");
    assert!(reference.status.success(), "stderr: {}", String::from_utf8_lossy(&reference.stderr));
    let expected = parse_digest(&String::from_utf8(reference.stdout).unwrap());

    // Same workload, checkpointing, killed mid-run: must fail and leave a snapshot.
    let killed = supervised()
        .args(workload)
        .args(["--checkpoint-dir", dir.to_str().unwrap(), "--checkpoint-every", "8"])
        .args(["--kill-at", "20"])
        .output()
        .expect("runs");
    assert!(!killed.status.success(), "kill-at should make the run fail");
    assert!(
        String::from_utf8_lossy(&killed.stderr).contains("--resume"),
        "failure message should point at --resume"
    );
    assert!(dir.join("checkpoint.snap").exists(), "snapshot should survive the crash");

    // Resume: picks the run back up and lands on the identical digest.
    let resumed = supervised()
        .args(workload)
        .args(["--checkpoint-dir", dir.to_str().unwrap(), "--checkpoint-every", "8"])
        .arg("--resume")
        .output()
        .expect("runs");
    assert!(resumed.status.success(), "stderr: {}", String::from_utf8_lossy(&resumed.stderr));
    let actual = parse_digest(&String::from_utf8(resumed.stdout).unwrap());
    assert_eq!(actual, expected, "resumed run must be bit-identical to uninterrupted");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn supervised_rejects_bad_arguments() {
    for args in [
        vec!["--resume"],            // --resume without --checkpoint-dir
        vec!["--family", "torus"],   // unknown family
        vec!["--algorithm", "alg3"], // unknown algorithm
        vec!["--engine", "quantum"], // unknown engine
        vec!["--n"],                 // missing value
        vec!["--bogus-flag"],        // unknown flag
    ] {
        let out = supervised().args(&args).output().expect("runs");
        assert!(!out.status.success(), "args {args:?} should fail");
        assert!(!out.stderr.is_empty());
    }
}

#[test]
fn experiments_runs_f1_quick_and_writes_out_dir() {
    let dir = std::env::temp_dir().join("beeping_mis_cli_out");
    let _ = std::fs::remove_dir_all(&dir);
    let out = experiments_bin()
        .args(["F1", "--quick", "--out", dir.to_str().unwrap()])
        .output()
        .expect("runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let report = std::fs::read_to_string(dir.join("F1.txt")).expect("report written");
    assert!(report.contains("Figure 1"));
}
