//! Experiment `DYN` — convergence trajectory (supplementary figure).
//!
//! The proofs track how the stable set `S_t`, the claiming set `I_t` and
//! the level distribution evolve; this experiment records an execution and
//! prints that evolution, the paper-style "what does a run actually look
//! like" figure:
//!
//! - from an all-claiming start, channel-1 beeping collapses from ≈ n to
//!   ≈ |MIS| within a few rounds (the back-off kicking in);
//! - `|S_t|` grows in waves (each MIS join silences a neighborhood);
//! - the ℓmax bucket of the level histogram fills up as silenced vertices
//!   park at their cap.
//!
//! The table is derived entirely from the run's telemetry round-event
//! stream (see `DESIGN.md` §9 "Observability") rather than from recorded
//! level histories — the same stream the CLI's `--telemetry <path>` flag
//! exports as JSONL.

use graphs::generators::GraphFamily;
use mis::runner::{InitialLevels, RunConfig};
use mis::{Algorithm1, LmaxPolicy};
use telemetry::{Config, MemorySink, RoundEvent, Telemetry};

/// Runs the experiment and returns the printed report.
pub fn run(quick: bool) -> String {
    run_with(quick, &Telemetry::disabled())
}

/// Telemetry-aware driver: streams the featured run into `external` when it
/// is enabled (the CLI `--telemetry` path), otherwise into a private
/// stride-1 handle. Either way the printed table is built from the
/// round-event stream, not from ad-hoc bookkeeping.
pub fn run_with(quick: bool, external: &Telemetry) -> String {
    let n = if quick { 128 } else { 1024 };
    let family = GraphFamily::Gnp { avg_degree: 8.0 };
    let g = family.generate(n, 0xD1);
    let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
    let mut out = crate::common::header("DYN", "Convergence trajectory of one execution");
    out.push_str(&format!(
        "workload: {family}, n = {}, Δ = {}; Algorithm 1, global-Δ policy, all-claiming start\n\n",
        g.len(),
        g.max_degree()
    ));
    let tele = if external.is_enabled() {
        external.clone()
    } else {
        Telemetry::enabled(Config { level_stride: 1 })
    };
    let (sink, handle) = MemorySink::new();
    tele.add_sink(Box::new(sink));
    let outcome = match algo.run(
        &g,
        RunConfig::new(7).with_init(InitialLevels::AllClaiming).with_telemetry(tele.clone()),
    ) {
        Ok(outcome) => outcome,
        Err(e) => {
            out.push_str(&format!("warning: skipping trajectory: {e}\n"));
            return out;
        }
    };
    let rounds = handle.rounds();

    // The histogram bucket at the (uniform, global-Δ) cap — vertices parked
    // at ℓmax, i.e. durably silenced.
    let cap = i64::from(algo.policy().lmax_values()[0]);
    let at_cap = |e: &RoundEvent| -> String {
        match &e.levels {
            Some(hist) => hist
                .iter()
                .find(|&&(level, _)| level == cap)
                .map_or(0, |&(_, count)| count)
                .to_string(),
            None => "-".to_string(),
        }
    };

    let mut table =
        analysis::Table::new(["round", "beeps c1", "lone c1", "|I|", "|S|", "S frac", "at ℓmax"]);
    let last_round = rounds.last().map_or(0, |e| e.round);
    for e in &rounds {
        let show = e.round <= 10
            || (e.round <= 40 && e.round % 5 == 0)
            || e.round % 10 == 0
            || e.round == last_round;
        if show {
            table.row([
                e.round.to_string(),
                e.beeps_channel1.to_string(),
                e.lone_beepers.to_string(),
                e.in_mis.map_or("-".into(), |v| v.to_string()),
                e.stable.map_or("-".into(), |v| v.to_string()),
                e.stable_fraction().map_or("-".into(), |f| format!("{f:.3}")),
                at_cap(e),
            ]);
        }
    }
    out.push_str(&table.to_string());
    let Some(last) = rounds.last() else {
        out.push_str("\nwarning: no round events streamed; trajectory summary unavailable\n");
        return out;
    };
    out.push_str(&format!(
        "\nstabilized at round {}: |MIS| = {}, stable fraction = {:.3} over {} streamed \
         round events\n",
        outcome.stabilization_round,
        last.in_mis.unwrap_or(0),
        last.stable_fraction().unwrap_or(0.0),
        rounds.len(),
    ));
    out.push_str(
        "\nexpected shape: channel-1 beeping collapses within the first rounds; |S| grows \
         in waves to n; the ℓmax bucket fills as neighborhoods are silenced.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis::dynamics::trajectory;

    #[test]
    fn report_reaches_full_stability() {
        let report = run(true);
        assert!(report.contains("DYN"));
        assert!(report.contains("stabilized at round"));
        assert!(report.contains("S frac"));
    }

    #[test]
    fn stream_matches_outcome_totals() {
        // The telemetry-derived table must agree with the run outcome: one
        // round event per executed round, and the final event's claiming
        // count equals the returned MIS size.
        let g = GraphFamily::Gnp { avg_degree: 8.0 }.generate(96, 0xD1);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let tele = Telemetry::enabled(Config { level_stride: 1 });
        let (sink, handle) = MemorySink::new();
        tele.add_sink(Box::new(sink));
        let outcome =
            algo.run(&g, RunConfig::new(3).with_telemetry(tele.clone())).expect("stabilizes");
        let rounds = handle.rounds();
        assert_eq!(rounds.len() as u64, outcome.rounds_run);
        let last = rounds.last().unwrap();
        assert_eq!(last.in_mis, Some(outcome.mis.iter().filter(|&&m| m).count() as u64));
        assert_eq!(last.stable, Some(g.len() as u64));
        assert!(last.levels.is_some(), "stride-1 stream carries histograms");
    }

    #[test]
    fn stream_agrees_with_recorded_trajectory() {
        // Cross-check the replacement: the telemetry stream reproduces the
        // |I|/|S|/at-cap series the old level-recording bookkeeping
        // computed.
        let g = GraphFamily::Gnp { avg_degree: 8.0 }.generate(64, 0xD1);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let tele = Telemetry::enabled(Config { level_stride: 1 });
        let (sink, handle) = MemorySink::new();
        tele.add_sink(Box::new(sink));
        let outcome = algo
            .run(&g, RunConfig::new(5).with_level_recording().with_telemetry(tele.clone()))
            .expect("stabilizes");
        let stats = trajectory(&g, algo.policy().lmax_values(), &outcome.level_history.unwrap());
        let cap = i64::from(algo.policy().lmax_values()[0]);
        // History entry 0 is the initial configuration; round event t maps
        // to history entry t.
        for e in handle.rounds() {
            let s = &stats[e.round as usize];
            assert_eq!(e.in_mis, Some(s.in_mis as u64), "round {}", e.round);
            assert_eq!(e.stable, Some(s.stable as u64), "round {}", e.round);
            let hist_at_cap = e
                .levels
                .as_ref()
                .unwrap()
                .iter()
                .find(|&&(level, _)| level == cap)
                .map_or(0, |&(_, c)| c);
            assert_eq!(hist_at_cap, s.at_cap as u64, "round {}", e.round);
        }
    }
}
