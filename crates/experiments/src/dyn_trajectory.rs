//! Experiment `DYN` — convergence trajectory (supplementary figure).
//!
//! The proofs track how the prominent set `PM_t`, the stable set `S_t` and
//! the potential `d_t` evolve; this experiment records an execution and
//! prints that evolution, the paper-style "what does a run actually look
//! like" figure:
//!
//! - from an all-claiming start, `mean d` collapses from ≈ deg to ≈ 0
//!   within a few rounds (the back-off kicking in);
//! - `|S_t|` grows in waves (each MIS join silences a neighborhood);
//! - `|PM_t|` converges to exactly `|I_t|` (the stable MIS members are the
//!   only prominent vertices left).

use graphs::generators::GraphFamily;
use mis::dynamics::trajectory;
use mis::runner::{InitialLevels, RunConfig};
use mis::{Algorithm1, LmaxPolicy};

/// Runs the experiment and returns the printed report.
pub fn run(quick: bool) -> String {
    let n = if quick { 128 } else { 1024 };
    let family = GraphFamily::Gnp { avg_degree: 8.0 };
    let g = family.generate(n, 0xD1);
    let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
    let mut out = crate::common::header("DYN", "Convergence trajectory of one execution");
    out.push_str(&format!(
        "workload: {family}, n = {}, Δ = {}; Algorithm 1, global-Δ policy, all-claiming start\n\n",
        g.len(),
        g.max_degree()
    ));
    let outcome = algo
        .run(&g, RunConfig::new(7).with_init(InitialLevels::AllClaiming).with_level_recording())
        .expect("stabilizes");
    let history = outcome.level_history.expect("recording enabled");
    let stats = trajectory(&g, algo.policy().lmax_values(), &history);

    let mut table = analysis::Table::new([
        "round",
        "|PM|",
        "|I|",
        "|S|",
        "at ℓmax",
        "mean p",
        "mean d",
        "max d",
    ]);
    // Print a readable subsample: every round early on, sparser later.
    for s in &stats {
        let show = s.round <= 10
            || (s.round <= 40 && s.round % 5 == 0)
            || s.round % 10 == 0
            || s.round == stats.len() - 1;
        if show {
            table.row([
                s.round.to_string(),
                s.prominent.to_string(),
                s.in_mis.to_string(),
                s.stable.to_string(),
                s.at_cap.to_string(),
                format!("{:.3}", s.mean_p),
                format!("{:.3}", s.mean_d),
                format!("{:.2}", s.max_d),
            ]);
        }
    }
    out.push_str(&table.to_string());
    let last = stats.last().unwrap();
    out.push_str(&format!(
        "\nstabilized at round {}: |MIS| = {}, |PM| = {} (every prominent vertex is a \
         stable MIS member), mean d = {:.3}\n",
        outcome.stabilization_round, last.in_mis, last.prominent, last.mean_d
    ));
    out.push_str(
        "\nexpected shape: mean d collapses within the first rounds; |S| grows in waves; \
         at stabilization |PM| = |I| and silence margin max d stays bounded.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_reaches_full_stability() {
        let report = run(true);
        assert!(report.contains("DYN"));
        assert!(report.contains("stabilized at round"));
        assert!(report.contains("mean d"));
    }

    #[test]
    fn prominent_equals_mis_at_the_end() {
        let g = GraphFamily::Gnp { avg_degree: 8.0 }.generate(96, 0xD1);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let outcome = algo.run(&g, RunConfig::new(3).with_level_recording()).unwrap();
        let history = outcome.level_history.unwrap();
        let stats = trajectory(&g, algo.policy().lmax_values(), &history);
        let last = stats.last().unwrap();
        assert_eq!(last.prominent, last.in_mis);
        assert_eq!(last.stable, g.len());
    }
}
