//! Experiment `ABL-LMAX` — the "`ℓmax` has a strong influence" remark.
//!
//! Paper §2: *"the value of `ℓmax(v)` … has a strong influence on the
//! analysis of the stabilization time"*, and §2's closing remark notes any
//! `ℓmax ∈ [log Δ + c1, c2 log n]` works for Theorem 2.1. This ablation
//! runs Algorithm 1 under a spectrum of `ℓmax` regimes on a
//! degree-heterogeneous graph:
//!
//! - small fixed constants (below the theorem's requirement),
//! - the three knowledge-derived policies of the paper,
//! - and a `⌈2 log₂ n⌉` regime (the top of the theorem's allowed range).
//!
//! Expected shape: degree-aware policies beat blanket large constants;
//! very small fixed `ℓmax` still converges on sparse instances but loses
//! the silence margin (longer tails); larger-than-needed `ℓmax` pays
//! linearly in the state-space diameter.

use graphs::generators::GraphFamily;
use graphs::Graph;
use mis::levels::log2_ceil;
use mis::runner::InitialLevels;
use mis::{Algorithm1, LmaxPolicy};

use crate::common;

/// The policies swept, for a given workload graph.
pub fn policies(g: &Graph) -> Vec<LmaxPolicy> {
    let n = g.len();
    vec![
        LmaxPolicy::fixed(n, 5),
        LmaxPolicy::fixed(n, 10),
        LmaxPolicy::fixed(n, 20),
        LmaxPolicy::fixed(n, 40),
        LmaxPolicy::global_delta(g),
        LmaxPolicy::own_degree(g),
        LmaxPolicy::two_hop_degree(g),
        LmaxPolicy::custom(
            format!("2·log₂ n (={})", 2 * log2_ceil(n)),
            vec![i32::try_from((2 * log2_ceil(n)).max(2)).unwrap_or(i32::MAX); n],
        ),
    ]
}

/// Runs the experiment and returns the printed report.
pub fn run(quick: bool) -> String {
    let (n, seeds) = if quick { (96, 5) } else { (512, 30) };
    let family = GraphFamily::BarabasiAlbert { m: 3 };
    let g = family.generate(n, 0x17A0);
    let mut out = crate::common::header("ABL-LMAX", "Ablation: ℓmax regimes (Algorithm 1)");
    out.push_str(&format!(
        "workload: {family}, n = {}, Δ = {}; random init\n\n",
        g.len(),
        g.max_degree()
    ));
    let mut table = analysis::Table::new(["policy", "max ℓmax", "mean rounds", "p95", "failures"]);
    for policy in policies(&g) {
        let algo = Algorithm1::new(&g, policy);
        let m = common::measure(&g, &algo, seeds, InitialLevels::Random, 2_000_000);
        let s = m.summary();
        table.row([
            algo.policy().name().to_string(),
            algo.policy().max_lmax().to_string(),
            format!("{:.1}", s.mean),
            format!("{:.0}", s.p95),
            m.failures.to_string(),
        ]);
    }
    out.push_str(&table.to_string());
    out.push_str(
        "\nexpected shape: time tracks max ℓmax among the fixed policies; the paper's \
         knowledge-derived policies sit in the sweet spot.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_policies_converge() {
        let g = GraphFamily::BarabasiAlbert { m: 3 }.generate(64, 3);
        for policy in policies(&g) {
            let algo = Algorithm1::new(&g, policy);
            let m = common::measure(&g, &algo, 3, InitialLevels::Random, 2_000_000);
            assert_eq!(m.failures, 0, "policy {}", algo.policy().name());
        }
    }

    #[test]
    fn bigger_fixed_lmax_is_slower() {
        let g = GraphFamily::BarabasiAlbert { m: 3 }.generate(96, 3);
        let mean = |lmax: i32| {
            let algo = Algorithm1::new(&g, LmaxPolicy::fixed(g.len(), lmax));
            common::measure(&g, &algo, 8, InitialLevels::Random, 2_000_000).summary().mean
        };
        assert!(mean(40) > mean(10));
    }

    #[test]
    fn report_lists_every_policy() {
        let report = run(true);
        for needle in ["fixed(5)", "fixed(40)", "global-Δ", "own-deg", "deg₂", "2·log₂ n"] {
            assert!(report.contains(needle), "missing {needle}");
        }
    }
}
