//! Experiment `SCEN` — scenario-space adversary search with certificates.
//!
//! *Claim under test*: `BYZ` searches over Byzantine placements on a
//! *static* graph. [`mis::scenario`] generalizes that hill-climb to the
//! joint space of **motion speed × churn period × placement** on a moving
//! geometric deployment — the worst *scenario*, not just the worst
//! adversary. This experiment drives the search and certifies its result.
//!
//! *Method*: [`mis::scenario::worst_scenario_search`] climbs the scenario
//! space (all candidates scored under one simulation seed, so score
//! differences come from the scenario alone), then the winning scenario is
//! **independently replayed** through [`mis::scenario::evaluate_scenario`]
//! and the replayed score is recorded next to the certified one — the
//! certificate is self-checking. Same seed → byte-identical certificate;
//! full runs persist it to `results/SCEN-certificate.json`, quick runs to
//! `results/SCEN-certificate.quick.json` (so CI smokes never clobber the
//! committed full artifact).
//!
//! *Expected shape*: the climb finds scenarios at least as bad as its
//! random starting point; `replay_score == score` always (the search is
//! deterministic and side-effect free); the worst scenario typically pairs
//! the fastest speed with a late churn period, maximizing post-churn
//! re-stabilization work.

use std::fmt::Write as _;

use beeping::churn::ChurnAction;
use graphs::generators::geometric::radius_for_expected_degree;
use mis::scenario::{churn_plan_for, evaluate_scenario, worst_scenario_search};
use mis::{Algorithm1, LmaxPolicy, ScenarioConfig, WorstScenario};

/// The search configuration of this experiment (public so tests and the CI
/// smoke reason about the same scenario space).
pub fn config(quick: bool) -> ScenarioConfig {
    let n = if quick { 24 } else { 96 };
    let comm_radius = radius_for_expected_degree(n, 6.0);
    let base = ScenarioConfig::new(0x5CE7, n, crate::common::graph_seed(0), comm_radius);
    if quick {
        base.with_byz_count(1)
            .with_iterations(6)
            .with_max_rounds(1_500)
            .with_churn_events(1)
            .with_speeds(vec![0.0, 0.02])
            .with_churn_periods(vec![30, 60])
    } else {
        base.with_byz_count(2)
            .with_iterations(40)
            .with_max_rounds(12_000)
            .with_churn_events(3)
            .with_speeds(vec![0.0, 0.01, 0.03, 0.06])
            .with_churn_periods(vec![50, 100, 200])
    }
}

fn f64_list(values: &[f64]) -> String {
    values.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(", ")
}

/// Renders the search result as a deterministic certificate JSON string
/// (hand-rolled; field order and formatting are fixed, so equal inputs
/// yield byte-identical output). `replay_score` is the score observed when
/// the winning scenario was re-evaluated from scratch; a reader verifies
/// the certificate by checking `replay_score == score`.
pub fn certificate_json(
    config: &ScenarioConfig,
    worst: &WorstScenario,
    replay_score: u64,
) -> String {
    let placement =
        worst.scenario.placement.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(", ");
    format!(
        "{{\n  \"experiment\": \"SCEN\",\n  \"n\": {n},\n  \"points_seed\": {points_seed},\n  \
         \"comm_radius\": {comm_radius},\n  \"pause\": {pause},\n  \"search_seed\": {seed},\n  \
         \"behavior\": \"{behavior}\",\n  \"byz_count\": {byz_count},\n  \"iterations\": \
         {iterations},\n  \"max_rounds\": {max_rounds},\n  \"churn_events\": {churn_events},\n  \
         \"containment_radius\": {containment_radius},\n  \"speeds\": [{speeds}],\n  \
         \"churn_periods\": [{periods}],\n  \"worst_speed\": {speed},\n  \"worst_churn_period\": \
         {churn_period},\n  \"placement\": [{placement}],\n  \"score\": {score},\n  \
         \"stabilized\": {stabilized},\n  \"replay_score\": {replay_score},\n  \"evaluations\": \
         {evaluations},\n  \"improvements\": {improvements}\n}}\n",
        n = config.n,
        points_seed = config.points_seed,
        comm_radius = config.comm_radius,
        pause = config.pause,
        seed = config.seed,
        behavior = config.behavior.label(),
        byz_count = config.byz_count,
        iterations = config.iterations,
        max_rounds = config.max_rounds,
        churn_events = config.churn_events,
        containment_radius = config.containment_radius,
        speeds = f64_list(&config.speeds),
        periods = config.churn_periods.iter().map(|p| p.to_string()).collect::<Vec<_>>().join(", "),
        speed = worst.speed,
        churn_period = worst.churn_period,
        score = worst.score,
        stabilized = worst.stabilized,
        evaluations = worst.evaluations,
        improvements = worst.improvements,
    )
}

/// Runs the experiment and returns the printed report.
pub fn run(quick: bool) -> String {
    let config = config(quick);
    let mut out = crate::common::header(
        "SCEN",
        "scenario-space adversary search: motion × churn × placement",
    );
    let _ = writeln!(
        out,
        "search space: n={n} moving deployment (points seed {points_seed:#x}, radius \
         {comm_radius:.4}), speeds [{speeds}] × churn periods [{periods}] ({events} leave/rejoin \
         pairs) × {byz} {behavior} placement(s); {iters} hill-climb iterations, {budget}-round \
         budget per candidate; score = first post-churn round of radius-{radius} containment \
         (budget+1 if never)",
        n = config.n,
        points_seed = config.points_seed,
        comm_radius = config.comm_radius,
        speeds = f64_list(&config.speeds),
        periods = config.churn_periods.iter().map(|p| p.to_string()).collect::<Vec<_>>().join(", "),
        events = config.churn_events,
        byz = config.byz_count,
        behavior = config.behavior.label(),
        iters = config.iterations,
        budget = config.max_rounds,
        radius = config.containment_radius,
    );

    let g = config.initial_graph();
    let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
    let worst = worst_scenario_search(&g, &algo, &config);

    out.push_str("\n## worst scenario found\n\n");
    let _ = writeln!(
        out,
        "speed={speed} churn_period={period} placement={placement:?}\nscore={score} \
         (stabilized={stabilized}) after {evals} evaluations, {improv} accepted improvements",
        speed = worst.speed,
        period = worst.churn_period,
        placement = worst.scenario.placement,
        score = worst.score,
        stabilized = worst.stabilized,
        evals = worst.evaluations,
        improv = worst.improvements,
    );

    // The schedule the worst scenario executes, for the record.
    out.push_str("\nchurn schedule of the worst scenario:\n");
    for event in churn_plan_for(&config, &worst.scenario).events() {
        let action = match &event.action {
            ChurnAction::NodeLeave(v) => format!("node {v} leaves"),
            ChurnAction::NodeJoin(v, _) => format!("node {v} rejoins (edges from motion)"),
            other => format!("{other:?}"),
        };
        let _ = writeln!(out, "  after round {:>5}: {action}", event.after_round);
    }

    // Independent replay: re-evaluate the certified scenario from scratch
    // and require the identical score. This is the acceptance criterion
    // "the worst scenario replays to the certified score", asserted on
    // every run.
    let replay = evaluate_scenario(&g, &algo, &config, &worst.scenario);
    assert_eq!(
        replay.score, worst.score,
        "certified scenario did not replay to the certified score"
    );
    let _ = writeln!(out, "\nreplay check: independent re-evaluation scored {}", replay.score);

    let certificate = certificate_json(&config, &worst, replay.score);
    out.push_str("\ncertificate:\n");
    out.push_str(&certificate);

    // Persist next to the text reports when the standard output directory
    // exists. Quick runs get their own file name so CI smokes can compare
    // two same-seed runs without touching the committed full certificate.
    let results = std::path::Path::new("results");
    if results.is_dir() {
        let name = if quick { "SCEN-certificate.quick.json" } else { "SCEN-certificate.json" };
        if let Err(e) = std::fs::write(results.join(name), &certificate) {
            let _ = writeln!(out, "warning: cannot write results/{name}: {e}");
        } else {
            let _ = writeln!(out, "\ncertificate written to results/{name}");
        }
    }

    out.push_str(
        "\nexpected shape: the climb only accepts strict score increases, replay_score equals \
         score, and the worst scenario couples fast motion with churn late in the budget.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_all_sections() {
        let report = run(true);
        for section in ["worst scenario found", "churn schedule", "replay check", "certificate:"] {
            assert!(report.contains(section), "missing section {section}");
        }
        assert!(report.contains("\"replay_score\""));
    }

    #[test]
    fn certificate_is_deterministic_and_reproducible() {
        // Acceptance criterion: same seed → byte-identical certificate,
        // and the certified scenario replays to the certified score.
        let config = config(true);
        let g = config.initial_graph();
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let a = worst_scenario_search(&g, &algo, &config);
        let b = worst_scenario_search(&g, &algo, &config);
        let replay_a = evaluate_scenario(&g, &algo, &config, &a.scenario);
        let replay_b = evaluate_scenario(&g, &algo, &config, &b.scenario);
        assert_eq!(replay_a.score, a.score);
        let ja = certificate_json(&config, &a, replay_a.score);
        let jb = certificate_json(&config, &b, replay_b.score);
        assert_eq!(ja, jb, "same-seed certificates must be byte-identical");
    }

    #[test]
    fn quick_and_full_configs_are_valid_spaces() {
        for quick in [true, false] {
            let c = config(quick);
            // The validation inside the search would panic on an invalid
            // space; reproduce its critical inequality here cheaply.
            for &p in &c.churn_periods {
                assert!(2 * c.churn_events as u64 * p < c.max_rounds);
            }
            assert!(c.byz_count < c.n);
        }
    }
}
