//! Experiment `T2.1` — Theorem 2.1.
//!
//! *Claim*: with every vertex knowing the same upper bound on the maximum
//! degree Δ and `ℓmax = log Δ + c1` (`c1 ≥ 15`), Algorithm 1 stabilizes
//! from an arbitrary configuration within `O(log n)` rounds w.h.p.
//!
//! *Measurement*: sweep `n` over powers of two across four graph families,
//! start every run from uniformly random levels, record the stabilization
//! round, and fit the mean curve against the candidate growth models. The
//! claim is reproduced if `log n` (or a slower model) wins the fit and the
//! per-size distributions stay tight (p95 close to the mean).

use graphs::generators::GraphFamily;
use mis::{Algorithm1, LmaxPolicy};

use crate::common;

/// Runs the experiment and returns the printed report.
pub fn run(quick: bool) -> String {
    let mut out = common::header("T2.1", "Theorem 2.1: O(log n) with global Δ knowledge");
    out.push_str(&format!(
        "policy: ℓmax = ⌈log₂ Δ⌉ + {}, identical for all vertices; init: uniform random levels\n",
        mis::policy::C1_GLOBAL_DELTA
    ));
    let sizes = common::sweep_sizes(quick);
    let seeds = common::seed_count(quick);
    for family in GraphFamily::standard_sweep() {
        let points = common::sweep(&family, &sizes, seeds, 1_000_000, |g| {
            Algorithm1::new(g, LmaxPolicy::global_delta(g))
        });
        common::render_sweep(&mut out, &family, &points);
    }
    out.push_str(
        "\nexpected shape: every family's best fit is `log n` (or flatter); zero failures.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_report() {
        let report = run(true);
        assert!(report.contains("T2.1"));
        assert!(report.contains("model fits"));
        // No run may fail its (huge) budget.
        assert!(!report.contains("panicked"));
    }

    #[test]
    fn growth_is_logarithmic_not_polynomial() {
        // A 16× size increase must cost well under the 4× that √n growth
        // would predict (log growth predicts ≈ 1.4×).
        let sizes = vec![32, 512];
        let points = common::sweep(&GraphFamily::Cycle, &sizes, 10, 1_000_000, |g| {
            Algorithm1::new(g, LmaxPolicy::global_delta(g))
        });
        let ratio = points[1].summary.mean / points[0].summary.mean;
        assert!(ratio < 2.5, "T(512)/T(32) = {ratio:.2} suggests polynomial growth");
        assert!(points.iter().all(|p| p.failures == 0));
    }
}
