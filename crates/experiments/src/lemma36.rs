//! Experiment `L3.6` — Lemma 3.6 (stopping times for platinum rounds).
//!
//! *Claim*: let `u` be prominent (`ℓ ≤ 0`) but not yet stable at round `t`
//! past the burn-in. Consider the episode until `u` either joins the MIS
//! (`σ_in`) or loses prominence (`σ_out`). Then
//!
//! - (a) `P[resolve into the MIS within max_{w∈N(u)} ℓmax(w) rounds] ≥ 3^{-η′_t(u)}`;
//! - (b) `P[escape ∧ σ > ℓmax(u) + x] ≤ η′_t(u) · 2^{-x}` — escape episodes
//!   longer than `ℓmax(u)` are exponentially rare, governed by `η′`.
//!
//! *Measurement*: run Algorithm 1 on Barabási–Albert graphs under two
//! policies: the paper's own-degree policy (where `η′ ≤ 2^{-30}` — the
//! bounds hold trivially and every episode must resolve into the MIS), and
//! the **minimal** policy `ℓmax(v) = ⌈log₂ deg(v)⌉ + 4` — the weakest the
//! lemma's precondition allows — where `η′` is macroscopic and part (b)'s
//! bound becomes non-trivial. Every prominence episode is recorded with
//! its starting `η′`, duration and resolution type, and the empirical
//! frequencies are compared against the two bounds.
//!
//! A structural observation sharpens the expectation: a vertex becomes
//! prominent by jumping to `-ℓmax`, and any round in which it hears nothing
//! resets it there; escaping therefore needs `ℓmax + 1` *consecutive*
//! heard rounds, each of probability ≤ 2^{-ℓmax(u)} per beeping neighbor —
//! so empirical escapes sit far below even the η′·2^{-x} bound. The
//! experiment verifies the direction of the inequalities, not tightness.

use beeping::Simulator;
use mis::observer::Snapshot;
use mis::runner::{initial_levels, RunConfig};
use mis::{Algorithm1, LmaxPolicy};

/// One recorded prominence episode.
#[derive(Debug, Clone, Copy)]
pub struct Episode {
    /// Duration in rounds from first prominent round to resolution.
    pub duration: u64,
    /// `true` if the episode resolved into stable MIS membership.
    pub resolved_in: bool,
    /// `ℓmax(u)` of the episode's vertex.
    pub lmax_u: i32,
    /// `max_{w ∈ N(u)} ℓmax(w)` (the lemma's part-(a) horizon); equals
    /// `ℓmax(u)` for isolated vertices.
    pub neighborhood_lmax: i32,
    /// `η′` at the episode start.
    pub eta_prime: f64,
}

/// The ℓmax regime an episode collection runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Regime {
    /// The paper's Theorem 2.2 policy (`2⌈log₂ deg⌉ + 30`): `η′`
    /// negligible, episodes must all resolve into the MIS.
    OwnDegree,
    /// The weakest policy Lemma 3.6 admits (`⌈log₂ deg⌉ + 4`): `η′` is
    /// macroscopic, so part (b)'s bound is non-trivial.
    Minimal,
}

impl Regime {
    fn policy(self, g: &graphs::Graph) -> LmaxPolicy {
        match self {
            Regime::OwnDegree => LmaxPolicy::own_degree(g),
            Regime::Minimal => LmaxPolicy::custom(
                "minimal(⌈log₂ deg⌉+4)",
                g.nodes()
                    .map(|v| {
                        i32::try_from(mis::levels::log2_ceil(g.degree(v)) + 4).unwrap_or(i32::MAX)
                    })
                    .collect(),
            ),
        }
    }
}

/// Collects prominence episodes from executions on a BA graph. Errors
/// (instead of panicking) when the BA parameters are invalid for this `n`.
pub fn collect_episodes(
    n: usize,
    seeds: u64,
    horizon: u64,
) -> Result<Vec<Episode>, graphs::GraphError> {
    collect_episodes_in(n, seeds, horizon, Regime::OwnDegree)
}

/// Collects prominence episodes under an explicit ℓmax regime.
pub fn collect_episodes_in(
    n: usize,
    seeds: u64,
    horizon: u64,
    regime: Regime,
) -> Result<Vec<Episode>, graphs::GraphError> {
    let g = graphs::generators::scale_free::barabasi_albert(n, 3, 0xAB)?;
    let mut episodes = Vec::new();
    for seed in 0..seeds {
        let algo = Algorithm1::new(&g, regime.policy(&g));
        let lmax = algo.policy().lmax_values().to_vec();
        let nbhd_lmax: Vec<i32> = g
            .nodes()
            .map(|v| g.neighbors(v).iter().map(|&w| lmax[w as usize]).max().unwrap_or(lmax[v]))
            .collect();
        let config = RunConfig::new(seed);
        let init = initial_levels(&algo, &config);
        let mut sim = Simulator::new(&g, algo.clone(), init, seed);
        sim.run(algo.policy().max_lmax() as u64 + 1);

        // Per-vertex open episode: (start_round, eta_prime at start).
        let mut open: Vec<Option<(u64, f64)>> = vec![None; g.len()];
        let snap = Snapshot::new(&g, &lmax, sim.states());
        for v in g.nodes() {
            if !snap.is_stable(v) && snap.is_prominent(v) {
                open[v] = Some((sim.round(), snap.eta_prime(v)));
            }
        }
        let mut t = 0u64;
        while t < horizon {
            sim.step();
            t += 1;
            let snap = Snapshot::new(&g, &lmax, sim.states());
            for v in g.nodes() {
                match open[v] {
                    Some((start, eta_prime)) => {
                        if snap.in_mis(v) {
                            episodes.push(Episode {
                                duration: sim.round() - start,
                                resolved_in: true,
                                lmax_u: lmax[v],
                                neighborhood_lmax: nbhd_lmax[v],
                                eta_prime,
                            });
                            open[v] = None;
                        } else if !snap.is_prominent(v) {
                            episodes.push(Episode {
                                duration: sim.round() - start,
                                resolved_in: false,
                                lmax_u: lmax[v],
                                neighborhood_lmax: nbhd_lmax[v],
                                eta_prime,
                            });
                            open[v] = None;
                        }
                    }
                    None => {
                        if !snap.is_stable(v) && snap.is_prominent(v) {
                            open[v] = Some((sim.round(), snap.eta_prime(v)));
                        }
                    }
                }
            }
            if snap.is_stabilized() {
                break;
            }
        }
    }
    Ok(episodes)
}

/// Runs the experiment and returns the printed report.
pub fn run(quick: bool) -> String {
    let (n, seeds, horizon) = if quick { (64, 3, 5_000) } else { (512, 20, 50_000) };
    let mut out = crate::common::header("L3.6", "Lemma 3.6: resolution of prominence episodes");
    for regime in [Regime::OwnDegree, Regime::Minimal] {
        out.push_str(&format!(
            "\n## regime {regime:?}: Barabási–Albert(n = {n}, m = 3), {seeds} seeds\n\n"
        ));
        let episodes = match collect_episodes_in(n, seeds, horizon, regime) {
            Ok(episodes) => episodes,
            Err(e) => {
                out.push_str(&format!("warning: skipping regime {regime:?}: {e}\n"));
                continue;
            }
        };
        let total = episodes.len().max(1);
        let resolved_in = episodes.iter().filter(|e| e.resolved_in).count();
        let within_horizon = episodes
            .iter()
            .filter(|e| e.resolved_in && e.duration < e.neighborhood_lmax as u64)
            .count();
        let mean_eta: f64 = episodes.iter().map(|e| e.eta_prime).sum::<f64>() / total as f64;
        let bound_a = 3f64.powf(-mean_eta);

        out.push_str(&format!("episodes recorded: {}\n", episodes.len()));
        out.push_str(&format!(
            "part (a): resolved into MIS: {resolved_in}/{} = {:.3}; of those within the \
             neighborhood-ℓmax horizon: {within_horizon} ({:.3} of all episodes)\n",
            episodes.len(),
            resolved_in as f64 / total as f64,
            within_horizon as f64 / total as f64
        ));
        out.push_str(&format!(
            "          lemma lower bound 3^(-η′) at the mean η′ = {mean_eta:.4}: {bound_a:.4}\n"
        ));

        // Part (b): escape episodes longer than ℓmax(u) + x.
        let escapes: Vec<&Episode> = episodes.iter().filter(|e| !e.resolved_in).collect();
        let mut table = analysis::Table::new(["x", "P[escape ∧ σ > ℓmax+x]", "bound η′·2^-x"]);
        for x in [0u64, 1, 2, 4, 8, 16] {
            let count = escapes.iter().filter(|e| e.duration > e.lmax_u as u64 + x).count();
            let p = count as f64 / total as f64;
            table.row([
                x.to_string(),
                format!("{p:.5}"),
                format!("{:.5}", mean_eta * 2f64.powi(-i32::try_from(x).unwrap_or(i32::MAX))),
            ]);
        }
        out.push_str(&format!(
            "\npart (b): escape-duration tail over all episodes ({} escapes)\n{table}",
            escapes.len()
        ));
    }
    out.push_str(
        "\nexpected shape: under OwnDegree, η′ ≈ 0 and every episode resolves into the \
         MIS (the bounds are trivially satisfied); under Minimal, η′ is macroscopic yet \
         the empirical escape frequency still sits far below η′·2^-x — escaping needs \
         ℓmax+1 consecutive heard rounds, so the paper's bound is valid with huge slack.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn episodes_are_recorded_and_consistent() {
        let eps = collect_episodes(48, 2, 5_000).expect("valid BA");
        assert!(!eps.is_empty());
        for e in &eps {
            assert!(e.duration >= 1);
            assert!(e.lmax_u >= 30); // own-degree policy floor
            assert!(e.neighborhood_lmax >= e.lmax_u || e.neighborhood_lmax >= 30);
            assert!(e.eta_prime >= 0.0);
        }
        // At least one episode must resolve into the MIS (the graph
        // stabilizes, and stabilization requires MIS joins).
        assert!(eps.iter().any(|e| e.resolved_in));
    }

    #[test]
    fn minimal_regime_has_macroscopic_eta_prime() {
        let eps = collect_episodes_in(96, 4, 10_000, Regime::Minimal).expect("valid BA");
        assert!(!eps.is_empty());
        // Part (b)'s bound must be non-trivial in this regime...
        assert!(
            eps.iter().any(|e| e.eta_prime > 1e-4),
            "minimal policy should produce macroscopic η′"
        );
        // ...and the empirical escape frequency must sit below it: count
        // escapes at x = 0 against the mean bound.
        let total = eps.len() as f64;
        let mean_eta: f64 = eps.iter().map(|e| e.eta_prime).sum::<f64>() / total;
        let escapes_beyond_lmax =
            eps.iter().filter(|e| !e.resolved_in && e.duration > e.lmax_u as u64).count() as f64;
        assert!(escapes_beyond_lmax / total <= mean_eta + 1e-9);
        // And stabilization still happens: some episodes resolve in.
        assert!(eps.iter().any(|e| e.resolved_in));
    }

    #[test]
    fn report_mentions_both_parts() {
        let report = run(true);
        assert!(report.contains("part (a)"));
        assert!(report.contains("part (b)"));
    }
}
