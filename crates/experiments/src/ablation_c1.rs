//! Experiment `ABL-C1` — sensitivity to the additive constant `c1`.
//!
//! Theorem 2.1 requires `ℓmax = log Δ + c1` with `c1 ≥ 15`; Theorem 2.2
//! requires `c1 ≥ 30`. These thresholds come from union bounds in the
//! analysis (e.g. `η ≤ 2^{-15} ≤ 0.0001`), not from an algorithmic cliff —
//! this ablation measures what actually happens for smaller constants.
//!
//! Two effects trade off: a larger `c1` inflates the state-space diameter
//! (a vertex needs `Θ(ℓmax)` silent rounds to decay from `ℓmax` back to
//! active probabilities, and stable detection waits for everyone to climb
//! to `ℓmax`), while a too-small `c1` leaves too little headroom between
//! "silenced" and "competing" vertices. Expected shape: stabilization time
//! grows roughly linearly in `c1` for large `c1`, with reliability
//! preserved across the whole range — i.e. the paper's constants are safe
//! but not tight.

use graphs::generators::GraphFamily;
use mis::runner::InitialLevels;
use mis::{Algorithm1, LmaxPolicy};

use crate::common;

/// The `c1` values swept.
pub fn c1_values() -> Vec<u32> {
    vec![0, 1, 2, 4, 8, 15, 22, 30]
}

/// Runs the experiment and returns the printed report.
pub fn run(quick: bool) -> String {
    let (n, seeds) = if quick { (96, 5) } else { (1024, 30) };
    let family = GraphFamily::Gnp { avg_degree: 8.0 };
    let g = family.generate(n, 0xC1);
    let mut out = crate::common::header("ABL-C1", "Ablation: sensitivity to the constant c1");
    out.push_str(&format!(
        "workload: {family}, n = {}, Δ = {}; Algorithm 1, ℓmax = ⌈log₂ Δ⌉ + c1, random init\n\n",
        g.len(),
        g.max_degree()
    ));
    let mut table = analysis::Table::new(["c1", "ℓmax", "mean rounds", "ci95", "p95", "failures"]);
    for c1 in c1_values() {
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta_with(&g, c1));
        let m = common::measure(&g, &algo, seeds, InitialLevels::Random, 2_000_000);
        let s = m.summary();
        table.row([
            c1.to_string(),
            algo.policy().max_lmax().to_string(),
            format!("{:.1}", s.mean),
            format!("±{:.1}", s.ci95_halfwidth()),
            format!("{:.0}", s.p95),
            m.failures.to_string(),
        ]);
    }
    out.push_str(&table.to_string());
    out.push_str(
        "\nexpected shape: zero failures everywhere; time grows with c1 (state-space \
         diameter), so the analysis constants c1 = 15/30 are sufficient, not necessary.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis::runner::RunConfig;

    #[test]
    fn small_c1_still_stabilizes() {
        let g = GraphFamily::Gnp { avg_degree: 8.0 }.generate(64, 0xC1);
        for c1 in [0, 4, 15] {
            let algo = Algorithm1::new(&g, LmaxPolicy::global_delta_with(&g, c1));
            let outcome = algo
                .run(&g, RunConfig::new(1).with_init(InitialLevels::Random))
                .expect("stabilizes even with tiny c1");
            assert!(graphs::mis::is_maximal_independent_set(&g, &outcome.mis), "c1 = {c1}");
        }
    }

    #[test]
    fn larger_c1_costs_more_rounds() {
        let g = GraphFamily::Gnp { avg_degree: 8.0 }.generate(96, 0xC1);
        let mean = |c1: u32| {
            let algo = Algorithm1::new(&g, LmaxPolicy::global_delta_with(&g, c1));
            common::measure(&g, &algo, 8, InitialLevels::Random, 2_000_000).summary().mean
        };
        assert!(mean(30) > mean(2), "bigger state space should be slower on average");
    }

    #[test]
    fn report_sweeps_all_values() {
        let report = run(true);
        assert!(report.contains("ABL-C1"));
        for c1 in c1_values() {
            assert!(report.lines().any(|l| l.trim_start().starts_with(&format!("{c1} "))));
        }
    }
}
