//! Experiment `ENERGY` — beep (radio-energy) complexity.
//!
//! In the wireless systems that motivate the beeping model (§1),
//! transmissions dominate the energy budget; round complexity alone
//! understates an algorithm's cost. This experiment measures **total
//! channel-1 beeps per node until stabilization** for both of the paper's
//! algorithms across sizes, and splits the converged cost into the
//! transient (pre-stabilization) part and the steady-state part — the
//! latter matters because the paper's algorithms deliberately keep MIS
//! members beeping forever (the health signal that buys
//! self-stabilization), an ongoing energy price the JSX baseline does not
//! pay.

use analysis::Summary;
use graphs::generators::GraphFamily;
use mis::runner::{InitialLevels, RunConfig, StabilizationError};
use mis::{Algorithm1, Algorithm2, LmaxPolicy};

/// Energy measurements for one algorithm at one size.
#[derive(Debug, Clone)]
pub struct EnergyPoint {
    /// Stabilization rounds.
    pub rounds: Summary,
    /// Total beeps per node until stabilization.
    pub beeps_per_node: Summary,
    /// Steady-state beeps per node per round after stabilization
    /// (= |MIS| / n; every member beeps once per round).
    pub steady_state_per_round: Summary,
}

/// Measures one `(algorithm, n)` cell. Errors (instead of panicking) when
/// any seed exhausts its stabilization budget.
pub fn measure_energy(
    g: &graphs::Graph,
    two_channel: bool,
    seeds: u64,
) -> Result<EnergyPoint, StabilizationError> {
    let mut rounds = Vec::new();
    let mut beeps = Vec::new();
    let mut steady = Vec::new();
    for seed in 0..seeds {
        let config = RunConfig::new(seed).with_init(InitialLevels::Random);
        let (stab, total_beeps, mis_size) = if two_channel {
            let algo = Algorithm2::new(g, LmaxPolicy::two_hop_degree(g));
            let o = algo.run(g, config)?;
            // For Algorithm 2 the steady-state signal is on channel 2; count
            // both channels for the transient total.
            let total: usize =
                o.trace.reports().iter().map(|r| r.beeps_channel1 + r.beeps_channel2).sum();
            (o.stabilization_round, total, graphs::mis::size(&o.mis))
        } else {
            let algo = Algorithm1::new(g, LmaxPolicy::global_delta(g));
            let o = algo.run(g, config)?;
            (o.stabilization_round, o.trace.total_beeps_channel1(), graphs::mis::size(&o.mis))
        };
        rounds.push(stab);
        beeps.push((total_beeps as f64 / g.len() as f64 * 1000.0) as u64); // milli-beeps
        steady.push((mis_size as f64 / g.len() as f64 * 1000.0) as u64);
    }
    Ok(EnergyPoint {
        rounds: Summary::of_counts(rounds),
        beeps_per_node: Summary::of_counts(beeps),
        steady_state_per_round: Summary::of_counts(steady),
    })
}

/// Runs the experiment and returns the printed report.
pub fn run(quick: bool) -> String {
    let sizes: Vec<usize> = if quick { vec![64, 128] } else { vec![256, 1024, 4096, 16384] };
    let seeds = crate::common::seed_count(quick);
    let family = GraphFamily::Geometric { avg_degree: 8.0 };
    let mut out = crate::common::header("ENERGY", "Beep (radio-energy) complexity");
    out.push_str(&format!("workload: {family}; random init; {seeds} seeds\n\n"));
    let mut table = analysis::Table::new([
        "n",
        "algorithm",
        "rounds",
        "beeps/node (transient)",
        "steady beeps/node/round",
    ]);
    for (i, &n) in sizes.iter().enumerate() {
        let g = family.generate(n, crate::common::graph_seed(i));
        for (label, two_channel) in [("Alg 1", false), ("Alg 2 (2ch)", true)] {
            let p = match measure_energy(&g, two_channel, seeds) {
                Ok(p) => p,
                Err(e) => {
                    out.push_str(&format!("warning: skipping n={n} {label}: {e}\n"));
                    continue;
                }
            };
            table.row([
                g.len().to_string(),
                label.to_string(),
                format!("{:.1}", p.rounds.mean),
                format!("{:.2}", p.beeps_per_node.mean / 1000.0),
                format!("{:.3}", p.steady_state_per_round.mean / 1000.0),
            ]);
        }
    }
    out.push_str(&table.to_string());
    out.push_str(
        "\nexpected shape: transient beeps per node stay O(rounds) = O(log n); the \
         steady-state cost is |MIS|/n beeps per node per round (≈ 0.2 on geometric \
         graphs) — the permanent price of the health signal that makes the algorithm \
         self-stabilizing.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_is_bounded_by_rounds() {
        let g = GraphFamily::Geometric { avg_degree: 8.0 }.generate(128, 1);
        let p = measure_energy(&g, false, 5).expect("stabilizes");
        // A node beeps at most once per round.
        assert!(p.beeps_per_node.mean / 1000.0 <= p.rounds.mean);
        assert!(p.beeps_per_node.mean > 0.0);
        // Steady-state fraction is the MIS density: strictly within (0, 1).
        let steady = p.steady_state_per_round.mean / 1000.0;
        assert!(steady > 0.0 && steady < 1.0);
    }

    #[test]
    fn report_covers_both_algorithms() {
        let report = run(true);
        assert!(report.contains("Alg 1"));
        assert!(report.contains("Alg 2"));
        assert!(report.contains("steady"));
    }
}
