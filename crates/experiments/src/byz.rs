//! Experiment `BYZ` — Byzantine containment and worst-case adversary search.
//!
//! *Claim under test*: self-stabilization (paper §1.1) promises recovery
//! from *transient* faults — arbitrary RAM corruption that eventually
//! stops. A permanently deviating (Byzantine) node is outside the theorem,
//! and no algorithm can stabilize at such a node. The strongest property
//! that survives is **containment**: the disruption stays within a small
//! graph radius of the Byzantine sites, and every correct node farther away
//! converges and stays converged (see `DESIGN.md` "Byzantine faults and
//! containment").
//!
//! *Measurements*:
//!
//! 1. **Containment table** — one Byzantine node (placed at the maximum-
//!    degree vertex — the placement a radius bound must survive) per graph
//!    family and behavior; reports the fraction of seeds certified
//!    contained at radius ≤ 2 after the paper's `O(ℓmax)` burn-in horizon,
//!    the mean certification round, and the worst disruption radius.
//! 2. **Behavior taxonomy** — all five behaviors (including crash-restart
//!    with an adversarial "resurrect claiming" RAM and the two-channel
//!    liar on Algorithm 2) on one G(n,p) instance.
//! 3. **Worst-case adversary** — [`mis::adversary::worst_case_search`]
//!    hill-climbs over placements and initial configurations; the result is
//!    emitted as a deterministic certificate JSON (same seed → byte-identical)
//!    and, when a `results/` directory exists, written to
//!    `results/BYZ-certificate.json`.
//!
//! *Expected shape*: stuck beepers integrate into the MIS (radius 0–1);
//! babblers keep their neighborhood churning but never push disruption past
//! radius 2; the worst case found by the search is still contained — the
//! adversary can delay certification, not escape the radius.

use std::fmt::Write as _;

use beeping::byzantine::{ByzantineBehavior, ByzantinePlan, Resurrect};
use graphs::generators::GraphFamily;
use graphs::Graph;
use mis::adversary::{worst_case_search, AdversaryConfig, SearchBehavior, WorstCase};
use mis::containment::{run_contained, ContainmentConfig};
use mis::levels::Level;
use mis::runner::SelfStabilizingMis;
use mis::theory::burn_in_horizon;
use mis::{Algorithm1, Algorithm2, LmaxPolicy};
use telemetry::Telemetry;

/// The graph families of the containment table.
pub fn families() -> Vec<GraphFamily> {
    vec![GraphFamily::Cycle, GraphFamily::Gnp { avg_degree: 8.0 }, GraphFamily::Regular { d: 4 }]
}

/// The certified containment radius of the table (acceptance bound).
pub const RADIUS: usize = 2;

fn max_degree_node(g: &Graph) -> usize {
    g.nodes().max_by_key(|&v| g.neighbors(v).len()).unwrap_or(0)
}

/// Containment statistics for one `(graph, behavior)` cell over seeds.
struct Cell {
    contained: usize,
    rounds: Vec<u64>,
    worst_radius: usize,
}

fn measure_contained<A: SelfStabilizingMis>(
    g: &Graph,
    algo: &A,
    plan: &ByzantinePlan<Level>,
    seeds: u64,
    budget: u64,
    radius: usize,
) -> Cell {
    measure_contained_streaming(g, algo, plan, seeds, budget, radius, &Telemetry::disabled())
}

/// [`measure_contained`] with the seed-0 run streamed into `tele` when it
/// is enabled (round events, the Byzantine-plan marker, and the final
/// `containment.final_radius` gauge). Telemetry is observational, so the
/// measured cell is identical either way.
#[allow(clippy::too_many_arguments)]
fn measure_contained_streaming<A: SelfStabilizingMis>(
    g: &Graph,
    algo: &A,
    plan: &ByzantinePlan<Level>,
    seeds: u64,
    budget: u64,
    radius: usize,
    tele: &Telemetry,
) -> Cell {
    let burn_in = burn_in_horizon(algo.policy());
    let mut cell = Cell { contained: 0, rounds: Vec::new(), worst_radius: 0 };
    for seed in 0..seeds {
        let mut config = ContainmentConfig::new(seed)
            .with_max_rounds(budget)
            .with_radius(radius)
            .with_burn_in(burn_in);
        if seed == 0 && tele.is_enabled() {
            config = config.with_telemetry(tele.clone());
        }
        let outcome = run_contained(g, algo, plan, &config);
        if let Some(r) = outcome.contained_round {
            cell.contained += 1;
            cell.rounds.push(r);
        }
        cell.worst_radius = cell.worst_radius.max(outcome.final_radius);
    }
    cell
}

fn cell_row(cell: &Cell, seeds: u64) -> [String; 3] {
    let mean = if cell.rounds.is_empty() {
        "-".to_string()
    } else {
        format!("{:.1}", analysis::Summary::of_counts(cell.rounds.iter().copied()).mean)
    };
    let radius = if cell.worst_radius == usize::MAX {
        "∞".to_string()
    } else {
        cell.worst_radius.to_string()
    };
    [format!("{}/{seeds}", cell.contained), mean, radius]
}

/// Renders the worst case found by the search as a deterministic
/// certificate JSON string (hand-rolled; field order and formatting are
/// fixed, so equal inputs yield byte-identical output).
pub fn certificate_json(
    family: &str,
    n: usize,
    graph_seed: u64,
    config: &AdversaryConfig,
    worst: &WorstCase,
    burn_in: u64,
) -> String {
    let placement = worst.placement.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(", ");
    let init_levels =
        worst.init_levels.iter().map(|l| l.to_string()).collect::<Vec<_>>().join(", ");
    format!(
        "{{\n  \"experiment\": \"BYZ\",\n  \"family\": \"{family}\",\n  \"n\": {n},\n  \
         \"graph_seed\": {graph_seed},\n  \"search_seed\": {seed},\n  \"behavior\": \
         \"{behavior}\",\n  \"byz_count\": {byz_count},\n  \"iterations\": {iterations},\n  \
         \"max_rounds\": {max_rounds},\n  \"radius\": {radius},\n  \"burn_in_horizon\": \
         {burn_in},\n  \"placement\": [{placement}],\n  \"init_levels\": [{init_levels}],\n  \
         \"score\": {score},\n  \"contained\": {contained},\n  \"final_radius\": \
         {final_radius},\n  \"evaluations\": {evaluations},\n  \"improvements\": \
         {improvements}\n}}\n",
        seed = config.seed,
        behavior = config.behavior.label(),
        byz_count = config.byz_count,
        iterations = config.iterations,
        max_rounds = config.max_rounds,
        radius = config.radius,
        score = worst.score,
        contained = worst.contained,
        final_radius = worst.final_radius,
        evaluations = worst.evaluations,
        improvements = worst.improvements,
    )
}

/// Runs the experiment and returns the printed report.
pub fn run(quick: bool) -> String {
    run_with(quick, &Telemetry::disabled())
}

/// Telemetry-aware driver: the featured stuck-beep taxonomy cell (seed 0,
/// section 2) streams its containment run into `tele` when enabled; the
/// aggregate tables are unchanged either way.
pub fn run_with(quick: bool, tele: &Telemetry) -> String {
    let n = if quick { 48 } else { 512 };
    let seeds = crate::common::seed_count(quick);
    let budget: u64 = if quick { 10_000 } else { 200_000 };
    let mut out = crate::common::header("BYZ", "Byzantine containment and worst-case adversary");
    let _ = writeln!(
        out,
        "workload: n={n}, {seeds} seeds, budget {budget} rounds; byz node at the \
         max-degree vertex; certified radius ≤ {RADIUS} after the O(ℓmax) burn-in"
    );

    // Section 1: containment table across families.
    out.push_str("\n## containment per family (Algorithm 1, global-Δ policy)\n\n");
    let mut table =
        analysis::Table::new(["family", "behavior", "contained", "mean round", "worst radius"]);
    for (i, family) in families().iter().enumerate() {
        let g = family.generate(n, crate::common::graph_seed(i));
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let site = max_degree_node(&g);
        for behavior in [ByzantineBehavior::StuckBeep, ByzantineBehavior::Babbler(0.5)] {
            let label = behavior.label();
            let plan = ByzantinePlan::new().with_behavior(site, behavior);
            let cell = measure_contained(&g, &algo, &plan, seeds, budget, RADIUS);
            let [contained, mean, radius] = cell_row(&cell, seeds);
            table.row([family.to_string(), label, contained, mean, radius]);
        }
    }
    out.push_str(&format!("{table}"));

    // Section 2: behavior taxonomy on one G(n,p) instance.
    out.push_str("\n## behavior taxonomy (single Byzantine node, G(n,p))\n\n");
    let family = GraphFamily::Gnp { avg_degree: 8.0 };
    let g = family.generate(n, crate::common::graph_seed(1));
    let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
    let site = max_degree_node(&g);
    // Adversarial reboot RAM: the node resurrects claiming MIS membership.
    let claim: Vec<Level> =
        algo.policy().lmax_values().iter().map(|&l| algo.claiming_level(l)).collect();
    let resurrect = Resurrect::new(move |v: usize, _round, _rng: &mut _| claim[v]);
    let mut table =
        analysis::Table::new(["behavior", "algorithm", "contained", "mean round", "worst radius"]);
    let disabled = Telemetry::disabled();
    for (i, behavior) in [
        ByzantineBehavior::StuckBeep,
        ByzantineBehavior::StuckSilent,
        ByzantineBehavior::Babbler(0.5),
        ByzantineBehavior::CrashRestart { period: 64, resurrect },
    ]
    .into_iter()
    .enumerate()
    {
        let label = behavior.label();
        let plan = ByzantinePlan::new().with_behavior(site, behavior);
        // The stuck-beep cell is the featured streaming run of the CLI's
        // `--telemetry` flag; the disabled default makes this a plain
        // measurement.
        let featured = if i == 0 { tele } else { &disabled };
        let cell = measure_contained_streaming(&g, &algo, &plan, seeds, budget, RADIUS, featured);
        let [contained, mean, radius] = cell_row(&cell, seeds);
        table.row([label, "Alg 1".into(), contained, mean, radius]);
    }
    // The two-channel liar only exists against Algorithm 2.
    let algo2 = Algorithm2::new(&g, LmaxPolicy::two_hop_degree(&g));
    let plan = ByzantinePlan::new().with_behavior(site, ByzantineBehavior::Channel2Liar);
    let cell = measure_contained(&g, &algo2, &plan, seeds, budget, RADIUS);
    let [contained, mean, radius] = cell_row(&cell, seeds);
    table.row(["channel2-liar".into(), "Alg 2".into(), contained, mean, radius]);
    out.push_str(&format!("{table}"));
    if tele.is_enabled() {
        out.push_str(
            "\ntelemetry: stuck-beep taxonomy cell (seed 0) streamed (round events + \
             byzantine marker + final-radius gauge).\n",
        );
    }

    // Section 3: adaptive worst-case adversary with certificate.
    out.push_str("\n## worst-case adversary search (hill-climbing, deterministic)\n\n");
    let search_graph_seed = crate::common::graph_seed(1);
    let burn_in = burn_in_horizon(algo.policy());
    let config = AdversaryConfig::new(0xB12A)
        .with_byz_count(if quick { 1 } else { 2 })
        .with_behavior(SearchBehavior::StuckBeep)
        .with_iterations(if quick { 8 } else { 48 })
        .with_max_rounds(budget)
        .with_radius(RADIUS)
        .with_burn_in(burn_in);
    let worst = worst_case_search(&g, &algo, &config);
    let _ = writeln!(
        out,
        "searched {} candidates ({} improvements) over {} byzantine node(s) + initial levels",
        worst.evaluations, worst.improvements, config.byz_count
    );
    let _ = writeln!(
        out,
        "worst case: placement {:?}, certified contained = {} at round {} (budget {}), \
         final radius {}",
        worst.placement,
        worst.contained,
        worst.score.min(config.max_rounds),
        config.max_rounds,
        worst.final_radius
    );
    let certificate =
        certificate_json(&family.to_string(), n, search_graph_seed, &config, &worst, burn_in);
    out.push_str("\ncertificate:\n");
    out.push_str(&certificate);
    // Persist the certificate next to the text reports when the standard
    // output directory exists (the harness creates it via `--out results`).
    // Quick runs (tests, CI smoke) only print it, so `cargo test` never
    // rewrites the recorded full-scale artifact.
    let results = std::path::Path::new("results");
    if !quick && results.is_dir() {
        if let Err(e) = std::fs::write(results.join("BYZ-certificate.json"), &certificate) {
            let _ = writeln!(out, "warning: cannot write results/BYZ-certificate.json: {e}");
        } else {
            out.push_str("\ncertificate written to results/BYZ-certificate.json\n");
        }
    }
    out.push_str(
        "\nexpected shape: stuck beepers integrate into the MIS (radius ≤ 1); babblers keep \
         their neighborhood churning but containment holds at radius ≤ 2; the searched worst \
         case delays certification without escaping the radius.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_all_sections() {
        let report = run(true);
        for section in
            ["containment per family", "behavior taxonomy", "worst-case adversary", "certificate:"]
        {
            assert!(report.contains(section), "missing section {section}");
        }
        assert!(report.contains("channel2-liar"));
        assert!(report.contains("crash-restart(64)"));
    }

    #[test]
    fn certificate_is_deterministic_and_reproducible() {
        // Acceptance criterion: same seed → byte-identical certificate.
        let family = GraphFamily::Gnp { avg_degree: 6.0 };
        let g = family.generate(32, 7);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let burn_in = burn_in_horizon(algo.policy());
        let config =
            AdversaryConfig::new(42).with_iterations(4).with_max_rounds(800).with_burn_in(burn_in);
        let a = worst_case_search(&g, &algo, &config);
        let b = worst_case_search(&g, &algo, &config);
        let ja = certificate_json(&family.to_string(), 32, 7, &config, &a, burn_in);
        let jb = certificate_json(&family.to_string(), 32, 7, &config, &b, burn_in);
        assert_eq!(ja, jb);
        assert!(ja.contains("\"experiment\": \"BYZ\""));
        assert!(ja.contains("\"placement\": ["));
        // Well-formed enough for downstream tooling: balanced braces and
        // one key per line.
        assert_eq!(ja.matches('{').count(), ja.matches('}').count());
    }

    #[test]
    fn streamed_containment_cell_matches_plain_measurement() {
        use telemetry::{Config as TeleConfig, Event, MarkerKind, MemorySink};
        let g = GraphFamily::Gnp { avg_degree: 8.0 }.generate(48, crate::common::graph_seed(1));
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let plan =
            ByzantinePlan::new().with_behavior(max_degree_node(&g), ByzantineBehavior::StuckBeep);
        let plain = measure_contained(&g, &algo, &plan, 2, 20_000, RADIUS);
        let tele = Telemetry::enabled(TeleConfig::default());
        let (sink, handle) = MemorySink::new();
        tele.add_sink(Box::new(sink));
        let streamed = measure_contained_streaming(&g, &algo, &plan, 2, 20_000, RADIUS, &tele);
        // Observational: same cell with or without the stream attached.
        assert_eq!(plain.contained, streamed.contained);
        assert_eq!(plain.rounds, streamed.rounds);
        assert_eq!(plain.worst_radius, streamed.worst_radius);
        let events = handle.events();
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::Marker(m) if m.kind == MarkerKind::Byzantine)));
        assert!(!handle.rounds().is_empty());
        assert!(tele.metrics().gauge("containment.final_radius").is_some());
    }

    #[test]
    fn single_stuck_beeper_contained_on_every_family() {
        // Tier-1 shadow of the acceptance test at small scale.
        for (i, family) in families().iter().enumerate() {
            let g = family.generate(48, crate::common::graph_seed(i));
            let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
            let plan = ByzantinePlan::new()
                .with_behavior(max_degree_node(&g), ByzantineBehavior::StuckBeep);
            let cell = measure_contained(&g, &algo, &plan, 3, 20_000, RADIUS);
            assert_eq!(cell.contained, 3, "family {family} failed containment");
            assert!(cell.worst_radius <= RADIUS);
        }
    }
}
