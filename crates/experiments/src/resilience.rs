//! Experiment `RESIL` — checkpoint overhead and crash-resume fidelity of
//! the resilient harness (`crates/harness`).
//!
//! *Claim under test*: supervising a run — periodic durable snapshots every
//! k rounds plus panic isolation — is cheap enough to leave on for every
//! long experiment (≤ 5% wall-clock overhead at k = 1024 on the PERF quick
//! workload), and a run killed at an arbitrary round and resumed from its
//! snapshot is bit-identical to one that never stopped.
//!
//! *Measurements*: a fixed-length Algorithm 1 workload (the stabilization
//! check is pinned past round R by a trailing one-node fault, so bare and
//! supervised executions cover exactly the same rounds) timed bare vs
//! supervised at several checkpoint cadences; then a kill/resume round trip
//! through the crash rig with a digest comparison against the straight run.
//!
//! *Artifacts*: the report table, plus `results/BENCH_HARNESS.json` (one
//! entry per cadence with both times and the overhead fraction) when a
//! `results/` directory exists — the resilience companion of
//! `BENCH_PERF.json`.
//!
//! *Expected shape*: overhead falls as the cadence grows; at k = 1024 it is
//! within the 5% acceptance bound, and the digests match exactly.

use std::fmt::Write as _;

use beeping::faults::{FaultPlan, FaultTarget};
use graphs::generators::GraphFamily;
use graphs::Graph;
use harness::crash::killed_then_resumed;
use harness::snapshot::fnv1a64;
use harness::supervisor::{supervise, RunOutcome, SupervisorConfig, SupervisorError};
use mis::resumable::{PlanError, ResumableConfig, ResumableOutcome, ResumableRun};
use mis::{Algorithm1, LmaxPolicy};
use telemetry::Stopwatch;

/// Workload size: the PERF quick scale (and one notch above for the full
/// run). Overhead is a ratio of snapshot cost (O(n + trace)) to round cost
/// (O(n·deg)), so the acceptance bound is only meaningful at sizes where a
/// round does real work — tiny graphs make any checkpoint look expensive.
pub fn workload_n(quick: bool) -> usize {
    if quick {
        1 << 12
    } else {
        1 << 14
    }
}

/// Fixed round count both the bare and the supervised run execute.
pub fn workload_rounds(quick: bool) -> u64 {
    if quick {
        2_048
    } else {
        4_096
    }
}

/// Timing repetitions per measurement (min is kept, the standard guard
/// against scheduler noise).
pub fn timing_reps(quick: bool) -> usize {
    if quick {
        2
    } else {
        3
    }
}

/// The cadences measured; 1024 is the acceptance point.
pub fn cadences(quick: bool) -> Vec<u64> {
    if quick {
        vec![256, 1024]
    } else {
        vec![128, 256, 1024, 4096]
    }
}

/// The run configuration of the workload: a trailing single-node fault at
/// round `rounds` pins `last_event_round`, so stabilization is not judged
/// (and the run cannot end) before the full `rounds` are executed — every
/// measured execution covers exactly the same work.
pub fn workload_config(seed: u64, rounds: u64) -> ResumableConfig {
    ResumableConfig::new(seed)
        .with_max_rounds(rounds * 4)
        .with_faults(FaultPlan::new().with_fault(rounds, FaultTarget::Nodes(vec![0])))
}

fn workload_graph(n: usize) -> Graph {
    GraphFamily::Gnp { avg_degree: 8.0 }.generate(n, crate::common::graph_seed(0))
}

/// A deterministic digest of a run's observables — levels, MIS,
/// participation and the full per-round trace — used to compare runs
/// across process boundaries (the CI smoke job greps for it).
pub fn outcome_digest(outcome: &ResumableOutcome) -> u64 {
    let mut canonical = String::new();
    let _ = write!(
        canonical,
        "rounds={};levels={:?};mis={:?};active={:?};trace=",
        outcome.rounds_run, outcome.levels, outcome.mis, outcome.active
    );
    for r in outcome.trace.reports() {
        let _ = write!(
            canonical,
            "[{},{},{},{},{},{},{}]",
            r.round,
            r.beeps_channel1,
            r.beeps_channel2,
            r.hearers_channel1,
            r.hearers_channel2,
            r.lone_beepers,
            r.lone_beepers_channel2
        );
    }
    fnv1a64(canonical.as_bytes())
}

/// One measured cadence point.
pub struct OverheadPoint {
    /// Checkpoint cadence in rounds.
    pub every: u64,
    /// Bare (unsupervised) wall-clock seconds.
    pub bare_secs: f64,
    /// Supervised wall-clock seconds (durable checkpoints to disk).
    pub supervised_secs: f64,
    /// Durable snapshots written.
    pub checkpoints: u64,
    /// Size of the final snapshot file in bytes.
    pub snapshot_bytes: u64,
}

impl OverheadPoint {
    /// Relative overhead of supervision, `(supervised - bare) / bare`.
    pub fn overhead_frac(&self) -> f64 {
        (self.supervised_secs - self.bare_secs) / self.bare_secs.max(1e-9)
    }
}

fn bare_run(
    g: &Graph,
    algo: &Algorithm1,
    config: ResumableConfig,
) -> Result<(ResumableOutcome, f64), SupervisorError> {
    let watch = Stopwatch::start();
    let mut run = ResumableRun::new(g, algo, config)?;
    run.run_to_completion();
    let secs = watch.elapsed_secs();
    match run.outcome() {
        Some(outcome) => Ok((outcome, secs)),
        // Unreachable after run_to_completion; surfaced as a typed error so
        // a surprise cannot abort the surrounding sweep.
        None => Err(SupervisorError::Plan(PlanError::Motion(
            "run finished without an outcome".to_string(),
        ))),
    }
}

/// Times the bare workload `reps` times and keeps the fastest (scheduler
/// noise only ever slows a run down). Errors when the workload
/// configuration is invalid.
pub fn measure_bare(
    g: &Graph,
    algo: &Algorithm1,
    config: &ResumableConfig,
    reps: usize,
) -> Result<(ResumableOutcome, f64), SupervisorError> {
    let mut best = bare_run(g, algo, config.clone())?;
    for _ in 1..reps.max(1) {
        let (outcome, secs) = bare_run(g, algo, config.clone())?;
        if secs < best.1 {
            best = (outcome, secs);
        }
    }
    Ok(best)
}

/// Measures one cadence (best of `reps` supervised runs) against the
/// already-timed bare outcome, asserting the observables agree before
/// trusting the timing. Errors when supervision itself fails (invalid
/// plans, unwritable snapshots).
pub fn measure_cadence(
    g: &Graph,
    algo: &Algorithm1,
    config: &ResumableConfig,
    every: u64,
    dir: &std::path::Path,
    bare: &(ResumableOutcome, f64),
    reps: usize,
) -> Result<OverheadPoint, SupervisorError> {
    let (bare_outcome, bare_secs) = bare;
    let sup = SupervisorConfig::new().with_checkpoint_every(every).with_checkpoint_dir(dir);
    let mut supervised_secs = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let watch = Stopwatch::start();
        let outcome = supervise(g, algo, config.clone(), &sup)?;
        let secs = watch.elapsed_secs();
        supervised_secs = supervised_secs.min(secs);

        let supervised_outcome = match outcome {
            RunOutcome::Completed(o) | RunOutcome::BudgetExhausted(o) => o,
            other => panic!("workload ended unexpectedly: {other:?}"),
        };
        assert_eq!(
            outcome_digest(&supervised_outcome),
            outcome_digest(bare_outcome),
            "supervision must be observationally free (cadence {every})"
        );
    }

    let snapshot = harness::supervisor::snapshot_path(dir);
    let snapshot_bytes = std::fs::metadata(&snapshot).map(|m| m.len()).unwrap_or(0);
    // +1 for the round-0 snapshot the supervisor always writes.
    let checkpoints = bare_outcome.rounds_run / every + 1;
    Ok(OverheadPoint { every, bare_secs: *bare_secs, supervised_secs, checkpoints, snapshot_bytes })
}

/// Renders the measured points as the committed JSON artifact (fixed field
/// order; wall-clock values vary run to run — a baseline record, not a
/// determinism artifact).
pub fn bench_json(points: &[OverheadPoint], quick: bool, git: &str) -> String {
    let mut out = String::from("{\n  \"experiment\": \"RESIL\",\n");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"git\": \"{}\",", telemetry::jsonl::escape(git));
    let _ = writeln!(out, "  \"unit\": \"seconds\",");
    let _ = writeln!(out, "  \"acceptance\": \"overhead_frac <= 0.05 at every=1024\",");
    out.push_str("  \"entries\": [\n");
    for (i, p) in points.iter().enumerate() {
        let sep = if i + 1 == points.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"every\": {}, \"bare_secs\": {:.4}, \"supervised_secs\": {:.4}, \
             \"overhead_frac\": {:.4}, \"checkpoints\": {}, \"snapshot_bytes\": {}}}{sep}",
            p.every,
            p.bare_secs,
            p.supervised_secs,
            p.overhead_frac(),
            p.checkpoints,
            p.snapshot_bytes
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Runs the experiment and returns the printed report.
pub fn run(quick: bool) -> String {
    let seed = 0xC4A5;
    let n = workload_n(quick);
    let rounds = workload_rounds(quick);
    let mut out = crate::common::header(
        "RESIL",
        "resilient harness: checkpoint overhead + crash-resume fidelity",
    );
    let _ = writeln!(
        out,
        "workload: Algorithm 1 (global-Δ) on G(n,p) avg-degree 8, n={n}, exactly {rounds} \
         rounds (stabilization pinned past the last scheduled event); snapshots to a scratch \
         directory under target/"
    );

    let g = workload_graph(n);
    let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
    let config = workload_config(seed, rounds);

    // Scratch under the workspace build tree regardless of the CWD the
    // binary or test harness runs from. `ancestors().nth(2)` of the crate
    // manifest dir always exists; fall back to the CWD if it somehow ends
    // at the filesystem root.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap_or_else(|| std::path::Path::new("."))
        .join("target")
        .join("resil-scratch");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        let _ = writeln!(out, "error: cannot create scratch dir {}: {e}", dir.display());
        return out;
    }

    // Overhead sweep: one bare timing (best of N), reused for every cadence.
    let reps = timing_reps(quick);
    let bare = match measure_bare(&g, &algo, &config, reps) {
        Ok(bare) => bare,
        Err(e) => {
            let _ = writeln!(out, "error: bare workload failed: {e}");
            return out;
        }
    };
    let mut points = Vec::new();
    let mut table =
        analysis::Table::new(["every", "bare s", "supervised s", "overhead", "ckpts", "snap KiB"]);
    for every in cadences(quick) {
        match measure_cadence(&g, &algo, &config, every, &dir, &bare, reps) {
            Ok(p) => {
                table.row([
                    p.every.to_string(),
                    format!("{:.3}", p.bare_secs),
                    format!("{:.3}", p.supervised_secs),
                    format!("{:+.1}%", p.overhead_frac() * 100.0),
                    p.checkpoints.to_string(),
                    format!("{:.1}", p.snapshot_bytes as f64 / 1024.0),
                ]);
                points.push(p);
            }
            Err(e) => {
                let _ = writeln!(out, "warning: skipping cadence {every}: {e}");
            }
        }
    }
    out.push_str("\n## supervision overhead (lower is better)\n\n");
    out.push_str(&format!("{table}"));

    // Crash/resume fidelity: kill mid-run, resume from disk, compare
    // digests against the uninterrupted run.
    let reference_digest = outcome_digest(&bare.0);
    let kill_at = rounds / 2;
    let report = killed_then_resumed(&g, &algo, config, kill_at, 1024, &dir);
    let resumed_digest = outcome_digest(&report.outcome);
    let _ = writeln!(
        out,
        "\n## crash-resume fidelity\n\nkill at round {kill_at}, checkpoint every 1024: \
         killed={}, straight digest={reference_digest:016x}, resumed digest={resumed_digest:016x}, \
         bit-identical={}",
        report.killed,
        resumed_digest == reference_digest
    );
    assert_eq!(resumed_digest, reference_digest, "crash-resume must be bit-identical");

    let json = bench_json(&points, quick, &crate::perf::git_describe());
    out.push_str("\nbench record:\n");
    out.push_str(&json);
    // Same convention as PERF: written only when the standard output
    // directory exists (CI smoke and full runs pass `--out results`).
    let results = std::path::Path::new("results");
    if results.is_dir() {
        if let Err(e) = std::fs::write(results.join("BENCH_HARNESS.json"), &json) {
            let _ = writeln!(out, "warning: cannot write results/BENCH_HARNESS.json: {e}");
        } else {
            out.push_str("\nrecord written to results/BENCH_HARNESS.json\n");
        }
    }
    std::fs::remove_dir_all(&dir).ok();

    out.push_str(
        "\nexpected shape: overhead falls with the cadence and is <= 5% at every=1024; \
         the kill/resume digest equals the straight-run digest exactly.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_deterministic_and_sensitive() {
        let g = workload_graph(64);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let (a, _) = bare_run(&g, &algo, workload_config(1, 64)).expect("valid");
        let (b, _) = bare_run(&g, &algo, workload_config(1, 64)).expect("valid");
        assert_eq!(outcome_digest(&a), outcome_digest(&b));
        let (c, _) = bare_run(&g, &algo, workload_config(2, 64)).expect("valid");
        assert_ne!(outcome_digest(&a), outcome_digest(&c));
    }

    #[test]
    fn workload_runs_exactly_the_pinned_rounds_or_more() {
        // The trailing fault pins the stabilization check past `rounds`.
        let g = workload_graph(48);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let (outcome, _) = bare_run(&g, &algo, workload_config(7, 100)).expect("valid");
        assert!(outcome.rounds_run >= 100, "ran only {}", outcome.rounds_run);
    }

    #[test]
    fn quick_report_passes_its_own_acceptance() {
        let report = run(true);
        assert!(report.contains("bit-identical=true"));
        assert!(report.contains("BENCH") || report.contains("bench record"));
    }
}
