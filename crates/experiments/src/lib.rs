//! Experiment drivers regenerating every claim of the paper.
//!
//! The reproduced paper is a brief announcement with no empirical section,
//! so the "tables and figures" to regenerate are its formal claims; each
//! gets an experiment id (see `DESIGN.md` §4):
//!
//! | id | claim |
//! |----|-------|
//! | `T2.1` ([`thm21`]) | Theorem 2.1: O(log n) with global Δ knowledge |
//! | `T2.2` ([`thm22`]) | Theorem 2.2: O(log n·log log n) with own-degree knowledge |
//! | `T2.2-L` ([`thm22_layers`]) | §5's layering: ℓmax classes stabilize in order |
//! | `C2.3` ([`cor23`]) | Corollary 2.3: O(log n) with two channels + deg₂ |
//! | `F1` ([`fig1`]) | Figure 1: the level→probability activation function |
//! | `L3.5` ([`lemma35`]) | Lemma 3.5: exponential tail on platinum-round waits |
//! | `L3.6` ([`lemma36`]) | Lemma 3.6: resolution of prominence episodes |
//! | `L6.7` ([`lemma67`]) | Lemma 6.7: golden rounds turn platinum |
//! | `SS-R` ([`recovery`]) | Self-stabilization: recovery from transient faults |
//! | `NOISE` ([`noise`]) | Unreliable network: channel noise, jammers, churn |
//! | `BYZ` ([`byz`]) | Byzantine containment + worst-case adversary search |
//! | `SS-A` ([`adversarial`]) | §2's motivation: JSX fails from adversarial states |
//! | `BASE` ([`baseline_cmp`]) | §1 positioning vs JSX / Afek et al. / Luby |
//! | `ABL-C1` ([`ablation_c1`]) | sensitivity to the constant `c1` |
//! | `ABL-LMAX` ([`ablation_lmax`]) | the "`ℓmax` has strong influence" remark of §2 |
//! | `ABL-HD` ([`ablation_duplex`]) | model ablation: full vs half duplex |
//! | `SCALE` ([`scale`]) | practicality at large n |
//! | `PERF` ([`perf`]) | round-engine throughput: scalar vs scatter |
//! | `ENERGY` ([`energy`]) | beep (radio-energy) complexity |
//! | `DYN` ([`dyn_trajectory`]) | convergence trajectory of one execution |
//! | `EXT-ADAPT` ([`ext_adaptive`]) | §8's open question: knowledge-free adaptive variant |
//! | `EXT-2STATE` ([`ext_two_state`]) | constant-state baseline \[16\] vs Algorithm 1 |
//! | `EXT-WAKE` ([`ext_wakeup`]) | adversarial wake-up schedules (the Afek et al. lower-bound model) |
//!
//! Run them with `cargo run -p experiments --release -- <id>|all [--quick]`.

pub mod ablation_c1;
pub mod ablation_duplex;
pub mod ablation_lmax;
pub mod adversarial;
pub mod baseline_cmp;
pub mod byz;
pub mod common;
pub mod cor23;
pub mod dyn_trajectory;
pub mod energy;
pub mod ext_adaptive;
pub mod ext_two_state;
pub mod ext_wakeup;
pub mod fig1;
pub mod lemma35;
pub mod lemma36;
pub mod lemma67;
pub mod noise;
pub mod perf;
pub mod recovery;
pub mod scale;
pub mod thm21;
pub mod thm22;
pub mod thm22_layers;

/// One runnable experiment: id, description, and driver.
pub struct Experiment {
    /// Experiment id, e.g. `"T2.1"`.
    pub id: &'static str,
    /// One-line description.
    pub title: &'static str,
    /// Driver: `quick` trades coverage for speed (used by tests/benches).
    pub run: fn(quick: bool) -> String,
}

/// The registry of all experiments, in DESIGN.md order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "T2.1",
            title: "Theorem 2.1: O(log n) with global Δ knowledge",
            run: thm21::run,
        },
        Experiment {
            id: "T2.2",
            title: "Theorem 2.2: O(log n·loglog n) with own-degree knowledge",
            run: thm22::run,
        },
        Experiment {
            id: "T2.2-L",
            title: "Theorem 2.2's layering: ℓmax classes stabilize in order",
            run: thm22_layers::run,
        },
        Experiment {
            id: "C2.3",
            title: "Corollary 2.3: O(log n) with two channels + deg₂",
            run: cor23::run,
        },
        Experiment { id: "F1", title: "Figure 1: beeping probability vs level", run: fig1::run },
        Experiment {
            id: "L3.5",
            title: "Lemma 3.5: tail of platinum-round waiting times",
            run: lemma35::run,
        },
        Experiment {
            id: "L3.6",
            title: "Lemma 3.6: resolution of prominence episodes",
            run: lemma36::run,
        },
        Experiment {
            id: "L6.7",
            title: "Lemma 6.7: golden rounds turn platinum",
            run: lemma67::run,
        },
        Experiment {
            id: "SS-R",
            title: "Self-stabilization: recovery from transient faults",
            run: recovery::run,
        },
        Experiment {
            id: "NOISE",
            title: "Unreliable network: channel noise, jammers, churn",
            run: noise::run,
        },
        Experiment {
            id: "BYZ",
            title: "Byzantine containment and worst-case adversary search",
            run: byz::run,
        },
        Experiment {
            id: "SS-A",
            title: "Adversarial initialization: JSX vs Algorithm 1",
            run: adversarial::run,
        },
        Experiment {
            id: "BASE",
            title: "Baseline comparison: Alg 1/2 vs JSX, Afek-style, Luby",
            run: baseline_cmp::run,
        },
        Experiment {
            id: "ABL-C1",
            title: "Ablation: sensitivity to the constant c1",
            run: ablation_c1::run,
        },
        Experiment { id: "ABL-LMAX", title: "Ablation: ℓmax regimes", run: ablation_lmax::run },
        Experiment {
            id: "ABL-HD",
            title: "Model ablation: full vs half duplex",
            run: ablation_duplex::run,
        },
        Experiment { id: "SCALE", title: "Scalability on large graphs", run: scale::run },
        Experiment {
            id: "PERF",
            title: "Round-engine throughput: scalar vs scatter",
            run: perf::run,
        },
        Experiment { id: "ENERGY", title: "Beep (radio-energy) complexity", run: energy::run },
        Experiment {
            id: "DYN",
            title: "Convergence trajectory of one execution",
            run: dyn_trajectory::run,
        },
        Experiment {
            id: "EXT-ADAPT",
            title: "Open question (§8): knowledge-free adaptive variant",
            run: ext_adaptive::run,
        },
        Experiment {
            id: "EXT-2STATE",
            title: "Constant-state baseline [16] vs Algorithm 1",
            run: ext_two_state::run,
        },
        Experiment { id: "EXT-WAKE", title: "Adversarial wake-up schedules", run: ext_wakeup::run },
    ]
}

/// Looks up an experiment by (case-insensitive) id.
pub fn find_experiment(id: &str) -> Option<Experiment> {
    all_experiments().into_iter().find(|e| e.id.eq_ignore_ascii_case(id))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_unique() {
        let ids: Vec<_> = all_experiments().iter().map(|e| e.id).collect();
        let mut dedup = ids.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(ids.len(), dedup.len());
    }

    #[test]
    fn lookup_case_insensitive() {
        assert!(find_experiment("t2.1").is_some());
        assert!(find_experiment("T2.1").is_some());
        assert!(find_experiment("nope").is_none());
    }
}
