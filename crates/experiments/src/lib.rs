//! Experiment drivers regenerating every claim of the paper.
//!
//! The reproduced paper is a brief announcement with no empirical section,
//! so the "tables and figures" to regenerate are its formal claims; each
//! gets an experiment id (see `DESIGN.md` §4):
//!
//! | id | claim |
//! |----|-------|
//! | `T2.1` ([`thm21`]) | Theorem 2.1: O(log n) with global Δ knowledge |
//! | `T2.2` ([`thm22`]) | Theorem 2.2: O(log n·log log n) with own-degree knowledge |
//! | `T2.2-L` ([`thm22_layers`]) | §5's layering: ℓmax classes stabilize in order |
//! | `C2.3` ([`cor23`]) | Corollary 2.3: O(log n) with two channels + deg₂ |
//! | `F1` ([`fig1`]) | Figure 1: the level→probability activation function |
//! | `L3.5` ([`lemma35`]) | Lemma 3.5: exponential tail on platinum-round waits |
//! | `L3.6` ([`lemma36`]) | Lemma 3.6: resolution of prominence episodes |
//! | `L6.7` ([`lemma67`]) | Lemma 6.7: golden rounds turn platinum |
//! | `SS-R` ([`recovery`]) | Self-stabilization: recovery from transient faults |
//! | `NOISE` ([`noise`]) | Unreliable network: channel noise, jammers, churn |
//! | `BYZ` ([`byz`]) | Byzantine containment + worst-case adversary search |
//! | `SS-A` ([`adversarial`]) | §2's motivation: JSX fails from adversarial states |
//! | `BASE` ([`baseline_cmp`]) | §1 positioning vs JSX / Afek et al. / Luby |
//! | `ABL-C1` ([`ablation_c1`]) | sensitivity to the constant `c1` |
//! | `ABL-LMAX` ([`ablation_lmax`]) | the "`ℓmax` has strong influence" remark of §2 |
//! | `ABL-HD` ([`ablation_duplex`]) | model ablation: full vs half duplex |
//! | `SCALE` ([`scale`]) | practicality at large n |
//! | `PERF` ([`perf`]) | round-engine throughput: scalar vs scatter vs frontier |
//! | `RESIL` ([`resilience`]) | resilient harness: checkpoint overhead + crash-resume fidelity |
//! | `ENERGY` ([`energy`]) | beep (radio-energy) complexity |
//! | `DYN` ([`dyn_trajectory`]) | convergence trajectory of one execution |
//! | `EXT-ADAPT` ([`ext_adaptive`]) | §8's open question: knowledge-free adaptive variant |
//! | `EXT-2STATE` ([`ext_two_state`]) | constant-state baseline \[16\] vs Algorithm 1 |
//! | `EXT-WAKE` ([`ext_wakeup`]) | adversarial wake-up schedules (the Afek et al. lower-bound model) |
//! | `MOB` ([`mob`]) | stabilization + Byzantine containment under sustained motion |
//! | `SCEN` ([`scen`]) | scenario-space adversary search (motion × churn × placement) with certificates |
//!
//! Run them with `cargo run -p experiments --release -- <id>|all [--quick]`.

pub mod ablation_c1;
pub mod ablation_duplex;
pub mod ablation_lmax;
pub mod adversarial;
pub mod baseline_cmp;
pub mod byz;
pub mod common;
pub mod cor23;
pub mod dyn_trajectory;
pub mod energy;
pub mod ext_adaptive;
pub mod ext_two_state;
pub mod ext_wakeup;
pub mod fig1;
pub mod lemma35;
pub mod lemma36;
pub mod lemma67;
pub mod mob;
pub mod noise;
pub mod perf;
pub mod recovery;
pub mod resilience;
pub mod scale;
pub mod scen;
pub mod thm21;
pub mod thm22;
pub mod thm22_layers;

/// One runnable experiment: id, description, and driver.
pub struct Experiment {
    /// Experiment id, e.g. `"T2.1"`.
    pub id: &'static str,
    /// One-line description.
    pub title: &'static str,
    /// Driver: `quick` trades coverage for speed (used by tests/benches).
    pub run: fn(quick: bool) -> String,
    /// Telemetry-aware driver, for experiments that stream their featured
    /// run into an enabled [`telemetry::Telemetry`] handle (the CLI's
    /// `--telemetry <path>` flag). `None` means the experiment has no
    /// streaming variant and falls back to [`Experiment::run`].
    pub run_telemetry: Option<fn(quick: bool, tele: &telemetry::Telemetry) -> String>,
}

impl Experiment {
    /// A registry entry without a telemetry-aware driver.
    pub fn new(id: &'static str, title: &'static str, run: fn(bool) -> String) -> Experiment {
        Experiment { id, title, run, run_telemetry: None }
    }

    /// Attaches the telemetry-aware driver.
    pub fn with_telemetry(
        mut self,
        run_telemetry: fn(bool, &telemetry::Telemetry) -> String,
    ) -> Experiment {
        self.run_telemetry = Some(run_telemetry);
        self
    }

    /// Runs the experiment, routing through the telemetry-aware driver when
    /// one exists and `tele` is enabled.
    pub fn run_with(&self, quick: bool, tele: &telemetry::Telemetry) -> String {
        match self.run_telemetry {
            Some(f) if tele.is_enabled() => f(quick, tele),
            _ => (self.run)(quick),
        }
    }
}

/// The registry of all experiments, in DESIGN.md order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        Experiment::new("T2.1", "Theorem 2.1: O(log n) with global Δ knowledge", thm21::run),
        Experiment::new(
            "T2.2",
            "Theorem 2.2: O(log n·loglog n) with own-degree knowledge",
            thm22::run,
        ),
        Experiment::new(
            "T2.2-L",
            "Theorem 2.2's layering: ℓmax classes stabilize in order",
            thm22_layers::run,
        ),
        Experiment::new("C2.3", "Corollary 2.3: O(log n) with two channels + deg₂", cor23::run),
        Experiment::new("F1", "Figure 1: beeping probability vs level", fig1::run),
        Experiment::new("L3.5", "Lemma 3.5: tail of platinum-round waiting times", lemma35::run),
        Experiment::new("L3.6", "Lemma 3.6: resolution of prominence episodes", lemma36::run),
        Experiment::new("L6.7", "Lemma 6.7: golden rounds turn platinum", lemma67::run),
        Experiment::new(
            "SS-R",
            "Self-stabilization: recovery from transient faults",
            recovery::run,
        ),
        Experiment::new("NOISE", "Unreliable network: channel noise, jammers, churn", noise::run)
            .with_telemetry(noise::run_with),
        Experiment::new("BYZ", "Byzantine containment and worst-case adversary search", byz::run)
            .with_telemetry(byz::run_with),
        Experiment::new("SS-A", "Adversarial initialization: JSX vs Algorithm 1", adversarial::run),
        Experiment::new(
            "BASE",
            "Baseline comparison: Alg 1/2 vs JSX, Afek-style, Luby",
            baseline_cmp::run,
        ),
        Experiment::new("ABL-C1", "Ablation: sensitivity to the constant c1", ablation_c1::run),
        Experiment::new("ABL-LMAX", "Ablation: ℓmax regimes", ablation_lmax::run),
        Experiment::new("ABL-HD", "Model ablation: full vs half duplex", ablation_duplex::run),
        Experiment::new("SCALE", "Scalability on large graphs", scale::run),
        Experiment::new(
            "PERF",
            "Round-engine throughput: scalar vs scatter vs frontier",
            perf::run,
        ),
        Experiment::new(
            "RESIL",
            "Resilient harness: checkpoint overhead + crash-resume fidelity",
            resilience::run,
        ),
        Experiment::new("ENERGY", "Beep (radio-energy) complexity", energy::run),
        Experiment::new("DYN", "Convergence trajectory of one execution", dyn_trajectory::run)
            .with_telemetry(dyn_trajectory::run_with),
        Experiment::new(
            "EXT-ADAPT",
            "Open question (§8): knowledge-free adaptive variant",
            ext_adaptive::run,
        ),
        Experiment::new(
            "EXT-2STATE",
            "Constant-state baseline [16] vs Algorithm 1",
            ext_two_state::run,
        ),
        Experiment::new("EXT-WAKE", "Adversarial wake-up schedules", ext_wakeup::run),
        Experiment::new("MOB", "Stabilization and containment under sustained motion", mob::run)
            .with_telemetry(mob::run_with),
        Experiment::new(
            "SCEN",
            "Scenario-space adversary search: motion × churn × placement",
            scen::run,
        ),
    ]
}

/// Looks up an experiment by (case-insensitive) id.
pub fn find_experiment(id: &str) -> Option<Experiment> {
    all_experiments().into_iter().find(|e| e.id.eq_ignore_ascii_case(id))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_unique() {
        let ids: Vec<_> = all_experiments().iter().map(|e| e.id).collect();
        let mut dedup = ids.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(ids.len(), dedup.len());
    }

    #[test]
    fn lookup_case_insensitive() {
        assert!(find_experiment("t2.1").is_some());
        assert!(find_experiment("T2.1").is_some());
        assert!(find_experiment("nope").is_none());
    }

    #[test]
    fn telemetry_drivers_registered() {
        for id in ["DYN", "NOISE", "BYZ", "MOB"] {
            assert!(
                find_experiment(id).unwrap().run_telemetry.is_some(),
                "{id} should have a telemetry-aware driver"
            );
        }
        assert!(find_experiment("F1").unwrap().run_telemetry.is_none());
    }

    #[test]
    fn run_with_falls_back_when_disabled() {
        // A disabled handle must route through the plain driver even for
        // wired experiments (and never panic for unwired ones).
        let e = find_experiment("F1").unwrap();
        let tele = telemetry::Telemetry::disabled();
        assert!(!e.run_with(true, &tele).is_empty());
    }
}
