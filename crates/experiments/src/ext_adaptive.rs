//! Experiment `EXT-ADAPT` — the open question of §8, explored.
//!
//! *Question* (paper conclusion): can a fast self-stabilizing beeping MIS
//! work with **no** topology knowledge at all?
//!
//! *Exploration*: [`mis::adaptive::AdaptiveMis`] learns its level cap from
//! collision evidence instead of being told `ℓmax`. This experiment
//! measures, against the knowledge-based policies on the same graphs:
//!
//! 1. reliability (does it always stabilize to a valid MIS from random
//!    states?),
//! 2. the round cost of learning (how much slower than Theorem 2.1?),
//! 3. what the caps converge to, compared with the knowledge-derived
//!    values `2⌈log₂ deg(v)⌉ + c` the theorems would prescribe.

use analysis::Summary;
use graphs::generators::GraphFamily;
use mis::adaptive::AdaptiveMis;
use mis::runner::InitialLevels;
use mis::{Algorithm1, LmaxPolicy};

use crate::common;

/// Runs the experiment and returns the printed report.
pub fn run(quick: bool) -> String {
    let sizes: Vec<usize> = if quick { vec![64, 128] } else { vec![128, 512, 2048, 8192] };
    let seeds = common::seed_count(quick);
    let mut out =
        common::header("EXT-ADAPT", "Open question (§8): knowledge-free adaptive variant");
    out.push_str(
        "AdaptiveMis learns its cap from collisions (no Δ / deg / deg₂ / n knowledge);\n\
         compared against Algorithm 1 with the Thm 2.1 policy on the same graphs.\n\n",
    );
    let mut table = analysis::Table::new([
        "family",
        "n",
        "adaptive mean",
        "adaptive p95",
        "fail",
        "Thm2.1 mean",
        "adaptive/Thm2.1",
    ]);
    for family in [GraphFamily::Gnp { avg_degree: 8.0 }, GraphFamily::BarabasiAlbert { m: 3 }] {
        for (i, &n) in sizes.iter().enumerate() {
            let g = family.generate(n, common::graph_seed(i));
            // Adaptive runs.
            let adaptive = AdaptiveMis::new();
            let mut rounds = Vec::new();
            let mut failures = 0usize;
            for seed in 0..seeds {
                match adaptive.run_random_init(&g, seed, 2_000_000) {
                    Some((mis, r)) => {
                        assert!(graphs::mis::is_maximal_independent_set(&g, &mis));
                        rounds.push(r);
                    }
                    None => failures += 1,
                }
            }
            let sa = Summary::of_counts(rounds);
            // Reference runs.
            let reference = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
            let sr =
                common::measure(&g, &reference, seeds, InitialLevels::Random, 2_000_000).summary();
            table.row([
                family.name(),
                g.len().to_string(),
                format!("{:.1}", sa.mean),
                format!("{:.0}", sa.p95),
                failures.to_string(),
                format!("{:.1}", sr.mean),
                format!("{:.2}×", sa.mean / sr.mean),
            ]);
        }
    }
    out.push_str(&table.to_string());

    // Cap learning in isolation: start every vertex from the minimal cap
    // (fresh state, not random — random initial caps would mask what the
    // collision rule actually learns) and see what the caps grow to.
    let g = GraphFamily::BarabasiAlbert { m: 3 }.generate(if quick { 128 } else { 1024 }, 0xEA);
    let adaptive = AdaptiveMis::new();
    let fresh = vec![mis::adaptive::AdaptiveState::fresh(); g.len()];
    let mut sim = beeping::Simulator::new(&g, adaptive, fresh, 1);
    if sim.run_until(2_000_000, |s| adaptive.is_stabilized(&g, s.states())).is_none() {
        out.push_str(
            "\nwarning: skipping cap-learning section: the fresh-cap run did not \
             stabilize within its 2000000-round budget\n",
        );
        return out;
    }
    let caps: Vec<f64> = sim.states().iter().map(|s| s.cap as f64).collect();
    let prescribed: Vec<f64> =
        g.nodes().map(|v| 2.0 * (mis::levels::log2_ceil(g.degree(v)) as f64) + 30.0).collect();
    out.push_str(&format!(
        "\ncap learning from fresh minimal caps on {} (n = {}):\n  learned    {}\n  Thm 2.2    {}\n",
        GraphFamily::BarabasiAlbert { m: 3 },
        g.len(),
        Summary::of(&caps),
        Summary::of(&prescribed)
    ));
    out.push_str(
        "\nexpected shape: zero failures (the variant is empirically self-stabilizing); \
         a modest constant-factor round overhead versus the knowledge-based policy \
         (the price of learning); caps grown from the minimum stay below the \
         conservative Thm 2.2 prescriptions — the open question looks answerable in \
         practice, though without a proof.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_has_comparison_and_caps() {
        let report = run(true);
        assert!(report.contains("EXT-ADAPT"));
        assert!(report.contains("adaptive/Thm2.1"));
        assert!(report.contains("cap learning"));
    }

    #[test]
    fn adaptive_never_fails_in_quick_sweep() {
        let g = GraphFamily::Gnp { avg_degree: 8.0 }.generate(96, 1);
        let adaptive = AdaptiveMis::new();
        for seed in 0..5 {
            let (mis, _) = adaptive.run_random_init(&g, seed, 2_000_000).expect("stabilizes");
            assert!(graphs::mis::is_maximal_independent_set(&g, &mis));
        }
    }
}
