//! Experiment `T2.2` — Theorem 2.2.
//!
//! *Claim*: with each vertex knowing only an upper bound on its **own**
//! degree and `ℓmax(v) = 2 log deg(v) + c1` (`c1 ≥ 30`), Algorithm 1
//! stabilizes within `O(log n · log log n)` rounds w.h.p.
//!
//! *Measurement*: same protocol as `T2.1` but with the own-degree policy
//! and with two extra degree-heterogeneous families (Barabási–Albert and
//! star-of-cliques) where the per-vertex `ℓmax` genuinely varies — the
//! regime in which Theorem 2.2's analysis (stabilizing low-`ℓmax` vertices
//! before high-`ℓmax` ones, in O(log log n) layers) actually bites.
//! Reproduced if the best fit is `log n` or `log n·log log n` — i.e. no
//! polynomial blow-up from the weaker knowledge — and the cost relative to
//! `T2.1` stays within a modest factor.

use graphs::generators::GraphFamily;
use mis::{Algorithm1, LmaxPolicy};

use crate::common;

/// The workload families: the standard sweep plus strongly heterogeneous
/// graphs.
pub fn families() -> Vec<GraphFamily> {
    let mut fs = GraphFamily::standard_sweep();
    fs.push(GraphFamily::StarOfCliques { clique: 8 });
    fs
}

/// Runs the experiment and returns the printed report.
pub fn run(quick: bool) -> String {
    let mut out =
        common::header("T2.2", "Theorem 2.2: O(log n·loglog n) with own-degree knowledge");
    out.push_str(&format!(
        "policy: ℓmax(v) = 2⌈log₂ deg(v)⌉ + {}; init: uniform random levels\n",
        mis::policy::C1_OWN_DEGREE
    ));
    let sizes = common::sweep_sizes(quick);
    let seeds = common::seed_count(quick);
    for family in families() {
        let points = common::sweep(&family, &sizes, seeds, 2_000_000, |g| {
            Algorithm1::new(g, LmaxPolicy::own_degree(g))
        });
        common::render_sweep(&mut out, &family, &points);
    }
    out.push_str("\nexpected shape: best fits are `log n` or `log n·loglog n`; never √n or n.\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_report() {
        let report = run(true);
        assert!(report.contains("T2.2"));
        assert!(report.contains("starcliq"));
    }

    #[test]
    fn growth_is_logarithmic_not_polynomial() {
        // 16× more nodes must cost well under 4× the rounds.
        let sizes = vec![45, 720];
        let points =
            common::sweep(&GraphFamily::StarOfCliques { clique: 8 }, &sizes, 10, 2_000_000, |g| {
                Algorithm1::new(g, LmaxPolicy::own_degree(g))
            });
        let ratio = points[1].summary.mean / points[0].summary.mean;
        assert!(ratio < 2.5, "T(720)/T(45) = {ratio:.2} suggests polynomial growth");
        assert!(points.iter().all(|p| p.failures == 0));
    }
}
