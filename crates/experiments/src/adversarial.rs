//! Experiment `SS-A` — why JSX is not self-stabilizing (§2's motivation).
//!
//! *Claim* (paper §2): the original Jeavons–Scott–Xu algorithm fails from
//! adversarial initial configurations for two reasons: it depends on the
//! clean start `p₁(v) = ½`, and on the two-round phases being synchronized
//! modulo 2; moreover its stabilized vertices are silent, so corrupted
//! "done" states are undetectable. Algorithm 1 converges from *every*
//! configuration.
//!
//! *Measurement*: run both algorithms from matched adversarial
//! initialization classes and count (completed, valid-MIS) outcomes.

use baselines::jeavons::{JsxMis, JsxState, JsxStatus};
use beeping::rng::aux_rng;
use graphs::Graph;
use mis::runner::{InitialLevels, RunConfig};
use mis::{Algorithm1, LmaxPolicy};
use rand::Rng;

/// Adversarial initialization classes for JSX.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JsxInit {
    /// The clean start the analysis assumes.
    Clean,
    /// Random parity only (phase desynchronization).
    DesyncParity,
    /// Fully random states (status, parity, probability).
    RandomStates,
    /// Two adjacent vertices already believe they are in the MIS.
    AdjacentInMis,
    /// Every vertex believes it is out of the MIS.
    AllOut,
}

impl JsxInit {
    /// All classes, in report order.
    pub fn all() -> [JsxInit; 5] {
        [
            JsxInit::Clean,
            JsxInit::DesyncParity,
            JsxInit::RandomStates,
            JsxInit::AdjacentInMis,
            JsxInit::AllOut,
        ]
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            JsxInit::Clean => "clean start",
            JsxInit::DesyncParity => "desynced phases",
            JsxInit::RandomStates => "random states",
            JsxInit::AdjacentInMis => "adjacent InMis pair",
            JsxInit::AllOut => "all OutOfMis",
        }
    }

    /// Builds the initial states for `g`.
    pub fn states(self, g: &Graph, seed: u64) -> Vec<JsxState> {
        let mut rng = aux_rng(seed, 0xADE);
        let n = g.len();
        match self {
            JsxInit::Clean => vec![JsxState::clean(); n],
            JsxInit::DesyncParity => (0..n)
                .map(|_| JsxState { parity: rng.gen_range(0..2), ..JsxState::clean() })
                .collect(),
            JsxInit::RandomStates => (0..n)
                .map(|_| JsxState {
                    prob_exp: rng.gen_range(1..20),
                    parity: rng.gen_range(0..2),
                    heard_in_competition: rng.gen_bool(0.5),
                    status: match rng.gen_range(0..4) {
                        0 => JsxStatus::Active,
                        1 => JsxStatus::Joining,
                        2 => JsxStatus::InMis,
                        _ => JsxStatus::OutOfMis,
                    },
                })
                .collect(),
            JsxInit::AdjacentInMis => {
                let mut states = vec![JsxState::clean(); n];
                if let Some((u, v)) = g.edges().next() {
                    states[u].status = JsxStatus::InMis;
                    states[v].status = JsxStatus::InMis;
                }
                states
            }
            JsxInit::AllOut => {
                vec![JsxState { status: JsxStatus::OutOfMis, ..JsxState::clean() }; n]
            }
        }
    }
}

/// Outcome counts of one (algorithm, init class) cell.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Cell {
    /// Runs attempted.
    pub runs: u32,
    /// Runs that reached the algorithm's own termination/stabilization
    /// criterion within the budget.
    pub completed: u32,
    /// Runs whose final output was a valid MIS.
    pub valid: u32,
}

/// Measures JSX under one init class.
pub fn measure_jsx(g: &Graph, init: JsxInit, seeds: u64, max_rounds: u64) -> Cell {
    let jsx = JsxMis::new();
    let mut cell = Cell::default();
    for seed in 0..seeds {
        cell.runs += 1;
        if let Some((mis, _)) = jsx.run_from(g, init.states(g, seed), seed, max_rounds) {
            cell.completed += 1;
            if graphs::mis::is_maximal_independent_set(g, &mis) {
                cell.valid += 1;
            }
        }
    }
    cell
}

/// Measures Algorithm 1 under one matched init class.
pub fn measure_alg1(g: &Graph, init: InitialLevels, seeds: u64, max_rounds: u64) -> Cell {
    let algo = Algorithm1::new(g, LmaxPolicy::global_delta(g));
    let mut cell = Cell::default();
    for seed in 0..seeds {
        cell.runs += 1;
        let config = RunConfig::new(seed).with_init(init.clone()).with_max_rounds(max_rounds);
        if let Ok(outcome) = algo.run(g, config) {
            cell.completed += 1;
            if graphs::mis::is_maximal_independent_set(g, &outcome.mis) {
                cell.valid += 1;
            }
        }
    }
    cell
}

/// Runs the experiment and returns the printed report.
pub fn run(quick: bool) -> String {
    let (n, seeds, budget) = if quick { (48, 5, 50_000u64) } else { (256, 30, 200_000u64) };
    let g = graphs::generators::random::gnp(n, 8.0 / (n as f64 - 1.0), 0xAD);
    let mut out = crate::common::header("SS-A", "Adversarial initialization: JSX vs Algorithm 1");
    out.push_str(&format!(
        "workload: G({n}, 8/(n-1)); budget {budget} rounds; {seeds} seeds per cell\n\n"
    ));
    let mut table = analysis::Table::new([
        "algorithm",
        "initial configuration",
        "runs",
        "completed",
        "valid MIS",
    ]);
    for init in JsxInit::all() {
        let cell = measure_jsx(&g, init, seeds, budget);
        table.row([
            "JSX [17]".to_string(),
            init.label().to_string(),
            cell.runs.to_string(),
            cell.completed.to_string(),
            cell.valid.to_string(),
        ]);
    }
    for (label, init) in [
        ("random levels", InitialLevels::Random),
        ("all claiming MIS", InitialLevels::AllClaiming),
        ("all at ℓmax", InitialLevels::AllMax),
        ("all at ℓ = 1 (clean-ish)", InitialLevels::AllOne),
    ] {
        let cell = measure_alg1(&g, init, seeds, budget);
        table.row([
            "Algorithm 1".to_string(),
            label.to_string(),
            cell.runs.to_string(),
            cell.completed.to_string(),
            cell.valid.to_string(),
        ]);
    }
    out.push_str(&table.to_string());
    out.push_str(
        "\nexpected shape: JSX is perfect from the clean start but loses validity (or \
         completion) under corrupted statuses — silent InMis/OutOfMis states are frozen and \
         unverifiable; Algorithm 1 completes with a valid MIS from every class.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsx_clean_is_always_valid() {
        let g = graphs::generators::random::gnp(48, 0.15, 1);
        let cell = measure_jsx(&g, JsxInit::Clean, 5, 100_000);
        assert_eq!(cell.valid, cell.runs);
    }

    #[test]
    fn jsx_adjacent_inmis_never_valid() {
        let g = graphs::generators::random::gnp(48, 0.15, 1);
        let cell = measure_jsx(&g, JsxInit::AdjacentInMis, 5, 100_000);
        assert_eq!(cell.valid, 0, "two frozen adjacent InMis vertices violate independence");
    }

    #[test]
    fn jsx_all_out_never_valid() {
        let g = graphs::generators::random::gnp(48, 0.15, 1);
        let cell = measure_jsx(&g, JsxInit::AllOut, 5, 100_000);
        assert_eq!(cell.completed, cell.runs, "all-out terminates immediately");
        assert_eq!(cell.valid, 0, "the empty set is not maximal");
    }

    #[test]
    fn algorithm1_valid_from_every_class() {
        let g = graphs::generators::random::gnp(48, 0.15, 1);
        for init in [
            InitialLevels::Random,
            InitialLevels::AllClaiming,
            InitialLevels::AllMax,
            InitialLevels::AllOne,
        ] {
            let cell = measure_alg1(&g, init.clone(), 5, 500_000);
            assert_eq!(cell.valid, cell.runs, "init {init:?}");
        }
    }

    #[test]
    fn report_has_both_algorithms() {
        let report = run(true);
        assert!(report.contains("JSX"));
        assert!(report.contains("Algorithm 1"));
    }
}
