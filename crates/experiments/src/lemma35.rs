//! Experiment `L3.5` — Lemma 3.5 (lower bound on platinum rounds).
//!
//! *Claim*: fix a vertex `v` and a round `t` past the burn-in horizon
//! (`t > max_w ℓmax(w)`, Lemma 3.1) that is not platinum for `v`, with
//! `η_t(v) ≤ 0.0001`. Then the waiting time `τ(v)(t)` until `v`'s first
//! platinum round satisfies `P[τ ≥ k] ≤ e^{-γk}` for `k ≥ 2γ⁻¹ℓmax(v)` —
//! an *exponential tail*.
//!
//! *Measurement*: run Algorithm 1 (global-Δ policy, so `η′ = 0` and
//! `η ≤ 2^{-15}` always) on G(n, p) graphs; after the burn-in, record for
//! every vertex the wait until its first platinum round. Report the
//! empirical CCDF `P[τ ≥ k]` and the fitted exponential rate. The paper's
//! `γ = e⁻³⁰` is a worst-case analysis constant; reproduction means the
//! tail *is* exponential (straight line in log scale), with an empirical
//! rate far better than the proven bound.

use analysis::histogram::ccdf;
use analysis::LinearFit;
use beeping::Simulator;
use mis::observer::Snapshot;
use mis::runner::{initial_levels, RunConfig};
use mis::{Algorithm1, LmaxPolicy};

/// The waiting times `τ(v)` collected from one or more executions.
pub fn collect_waits(n: usize, seeds: u64, horizon: u64) -> Vec<f64> {
    let g = graphs::generators::random::gnp(n, 8.0 / (n as f64 - 1.0), 0xBEE);
    let mut waits = Vec::new();
    for seed in 0..seeds {
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let config = RunConfig::new(seed);
        let init = initial_levels(&algo, &config);
        let mut sim = Simulator::new(&g, algo.clone(), init, seed);
        let lmax = algo.policy().lmax_values().to_vec();
        // Burn-in: Lemma 3.1's horizon.
        let burn_in = algo.policy().max_lmax() as u64 + 1;
        sim.run(burn_in);
        // Track vertices that are NOT in a platinum round at measurement
        // start (the lemma's precondition).
        let start = Snapshot::new(&g, &lmax, sim.states());
        let mut pending: Vec<bool> = g.nodes().map(|v| !start.is_platinum_for(v)).collect();
        let mut outstanding = pending.iter().filter(|&&p| p).count();
        let mut k = 0u64;
        while outstanding > 0 && k < horizon {
            sim.step();
            k += 1;
            let snap = Snapshot::new(&g, &lmax, sim.states());
            for v in g.nodes() {
                if pending[v] && snap.is_platinum_for(v) {
                    pending[v] = false;
                    outstanding -= 1;
                    waits.push(k as f64);
                }
            }
        }
        // Censored vertices (none expected: stabilization forces platinum
        // rounds) are recorded at the horizon.
        for v in g.nodes() {
            if pending[v] {
                waits.push(horizon as f64);
            }
        }
    }
    waits
}

/// Runs the experiment and returns the printed report.
pub fn run(quick: bool) -> String {
    let (n, seeds, horizon) = if quick { (64, 3, 2_000) } else { (512, 20, 20_000) };
    let mut out =
        crate::common::header("L3.5", "Lemma 3.5: exponential tail on platinum-round waits");
    out.push_str(&format!(
        "workload: G(n, 8/(n-1)) with n = {n}, global-Δ policy (η′ = 0), {seeds} seeds\n\n"
    ));
    let waits = collect_waits(n, seeds, horizon);
    let max_wait = waits.iter().fold(0.0f64, |a, &b| a.max(b));
    let thresholds: Vec<f64> = (0..=12).map(|i| (i as f64) * (max_wait / 12.0).max(1.0)).collect();
    let tail = ccdf(&waits, &thresholds);
    let mut table = analysis::Table::new(["k", "P[τ ≥ k]", "ln P"]);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for (&k, &p) in thresholds.iter().zip(&tail) {
        let lnp = if p > 0.0 { p.ln() } else { f64::NEG_INFINITY };
        table.row([
            format!("{k:.0}"),
            format!("{p:.4}"),
            if p > 0.0 { format!("{lnp:.2}") } else { "-inf".into() },
        ]);
        if p > 0.0 && p < 1.0 {
            xs.push(k);
            ys.push(lnp);
        }
    }
    out.push_str(&table.to_string());
    if xs.len() >= 2 {
        let fit = LinearFit::fit(&xs, &ys);
        out.push_str(&format!(
            "\nexponential-tail fit: ln P[τ ≥ k] ≈ {:.2} - {:.4}·k  (R² = {:.3})\n",
            fit.intercept, -fit.slope, fit.r_squared
        ));
        out.push_str(&format!(
            "empirical rate γ̂ = {:.4}; the paper proves the loose worst-case γ = e⁻³⁰ ≈ {:.2e}\n",
            -fit.slope,
            (-30.0f64).exp()
        ));
    }
    out.push_str(&format!(
        "\n{} waits collected, mean {:.1}, max {:.0}\n",
        waits.len(),
        waits.iter().sum::<f64>() / waits.len() as f64,
        max_wait
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waits_are_finite_and_positive() {
        let waits = collect_waits(48, 2, 5_000);
        assert_eq!(waits.len(), 2 * 48 - count_initially_platinum(48, 2),);
        assert!(waits.iter().all(|&w| (1.0..5_000.0).contains(&w)), "no censoring expected");
    }

    /// Vertices already platinum at measurement start produce no sample.
    fn count_initially_platinum(n: usize, seeds: u64) -> usize {
        let g = graphs::generators::random::gnp(n, 8.0 / (n as f64 - 1.0), 0xBEE);
        let mut count = 0;
        for seed in 0..seeds {
            let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
            let config = RunConfig::new(seed);
            let init = initial_levels(&algo, &config);
            let mut sim = Simulator::new(&g, algo.clone(), init, seed);
            let lmax = algo.policy().lmax_values().to_vec();
            sim.run(algo.policy().max_lmax() as u64 + 1);
            let snap = Snapshot::new(&g, &lmax, sim.states());
            count += g.nodes().filter(|&v| snap.is_platinum_for(v)).count();
        }
        count
    }

    #[test]
    fn report_contains_tail_table() {
        let report = run(true);
        assert!(report.contains("P[τ ≥ k]"));
        assert!(report.contains("exponential-tail fit"));
    }
}
