//! Experiment `BASE` — positioning against prior work (paper §1).
//!
//! Columns, all measured in beeping/communication rounds on the same
//! graphs:
//!
//! - **Alg 1** (this paper, Thm 2.1): self-stabilizing, O(log n), measured
//!   from *random* (adversarial) initial levels;
//! - **Alg 2** (this paper, Cor 2.3): self-stabilizing, two channels;
//! - **JSX \[17\]**: not self-stabilizing, measured from its required clean
//!   start — the "price of self-stabilization" reference;
//! - **Afek-style \[1\]**: knows an upper bound N on the size and pays
//!   Θ(log N)-long epochs — measured once with the tight bound N = n and
//!   once with a loose bound N = 4096·n;
//! - **Luby (LOCAL)**: full message passing, 2 rounds per iteration — the
//!   strong-model reference line.
//!
//! Expected shape: all columns scale logarithmically; Alg 1 ≈ JSX up to a
//! constant (self-stabilization is almost free); the Afek-style baseline is
//! competitive when N is tight but degrades proportionally as the bound
//! loosens (the log N factor the paper's algorithm avoids); Luby is fastest
//! (stronger model).

use std::fmt::Write as _;

use analysis::Summary;
use baselines::{luby_mis, AfekStyleMis, JsxMis};
use graphs::generators::GraphFamily;
use mis::runner::{InitialLevels, RunConfig, StabilizationError};
use mis::{Algorithm1, Algorithm2, LmaxPolicy};

/// Why one comparison row could not be measured: some algorithm exhausted
/// its round budget on some seed. One bad row warns-and-skips; it must not
/// abort the whole sweep.
#[derive(Debug)]
pub enum BaselineError {
    /// Algorithm 1/2 exhausted the stabilization budget.
    Stabilization(StabilizationError),
    /// A clean-start baseline failed to terminate within the budget.
    BudgetExhausted {
        /// Column label of the failing baseline.
        algorithm: &'static str,
        /// The seed it failed on.
        seed: u64,
    },
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::Stabilization(e) => write!(f, "{e}"),
            BaselineError::BudgetExhausted { algorithm, seed } => {
                write!(f, "{algorithm} did not terminate within budget (seed {seed})")
            }
        }
    }
}

impl std::error::Error for BaselineError {}

impl From<StabilizationError> for BaselineError {
    fn from(e: StabilizationError) -> BaselineError {
        BaselineError::Stabilization(e)
    }
}

/// Mean rounds for each algorithm at one size.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Network size.
    pub n: usize,
    /// Algorithm 1 (random init).
    pub alg1: Summary,
    /// Algorithm 2 (random init).
    pub alg2: Summary,
    /// JSX from clean start.
    pub jsx: Summary,
    /// Afek-style with the tight bound N = n.
    pub afek: Summary,
    /// Afek-style with the loose bound N = 4096·n.
    pub afek_loose: Summary,
    /// Luby rounds (2 per iteration).
    pub luby: Summary,
}

/// Measures one comparison row. Errors (instead of panicking) when any
/// algorithm exhausts its budget on any seed.
pub fn compare_at(n: usize, seeds: u64, graph_seed: u64) -> Result<ComparisonRow, BaselineError> {
    let family = GraphFamily::Gnp { avg_degree: 8.0 };
    let g = family.generate(n, graph_seed);
    let alg1 = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
    let alg2 = Algorithm2::new(&g, LmaxPolicy::two_hop_degree(&g));
    let afek = AfekStyleMis::new(g.len());
    let afek_loose = AfekStyleMis::new(g.len() << 12);
    let jsx = JsxMis::new();
    let budget = 10_000_000;

    let mut rounds1 = Vec::new();
    let mut rounds2 = Vec::new();
    let mut rounds_jsx = Vec::new();
    let mut rounds_afek = Vec::new();
    let mut rounds_afek_loose = Vec::new();
    let mut rounds_luby = Vec::new();
    let exhausted =
        |algorithm: &'static str, seed| BaselineError::BudgetExhausted { algorithm, seed };
    for seed in 0..seeds {
        let config = RunConfig::new(seed).with_init(InitialLevels::Random).with_max_rounds(budget);
        rounds1.push(alg1.run(&g, config.clone())?.stabilization_round);
        rounds2.push(alg2.run(&g, config)?.stabilization_round);
        rounds_jsx.push(jsx.run_clean(&g, seed, budget).ok_or(exhausted("jsx", seed))?.1);
        rounds_afek.push(afek.run(&g, seed, budget).ok_or(exhausted("afek", seed))?.1);
        rounds_afek_loose
            .push(afek_loose.run(&g, seed, budget).ok_or(exhausted("afek (loose)", seed))?.1);
        let (_, iters) = luby_mis(&g, seed, budget).ok_or(exhausted("luby", seed))?;
        rounds_luby.push(2 * iters);
    }
    Ok(ComparisonRow {
        n: g.len(),
        alg1: Summary::of_counts(rounds1),
        alg2: Summary::of_counts(rounds2),
        jsx: Summary::of_counts(rounds_jsx),
        afek: Summary::of_counts(rounds_afek),
        afek_loose: Summary::of_counts(rounds_afek_loose),
        luby: Summary::of_counts(rounds_luby),
    })
}

/// Runs the experiment and returns the printed report.
pub fn run(quick: bool) -> String {
    let sizes: Vec<usize> =
        if quick { vec![64, 128] } else { vec![128, 256, 512, 1024, 2048, 4096] };
    let seeds = crate::common::seed_count(quick);
    let mut out = crate::common::header(
        "BASE",
        "Baseline comparison on G(n, 8/(n-1)) — mean rounds to a stable/terminal MIS",
    );
    out.push_str(
        "\nAlg 1/2 start from adversarial random levels; JSX/Afek/Luby from their clean starts.\n\n",
    );
    let mut table = analysis::Table::new([
        "n",
        "Alg 1 (selfstab)",
        "Alg 2 (selfstab, 2ch)",
        "JSX (clean)",
        "Afek (N=n)",
        "Afek (N=4096n)",
        "Luby (LOCAL)",
        "AfekLoose/Alg1",
    ]);
    for (i, &n) in sizes.iter().enumerate() {
        match compare_at(n, seeds, crate::common::graph_seed(i)) {
            Ok(row) => {
                table.row([
                    row.n.to_string(),
                    format!("{:.1}", row.alg1.mean),
                    format!("{:.1}", row.alg2.mean),
                    format!("{:.1}", row.jsx.mean),
                    format!("{:.1}", row.afek.mean),
                    format!("{:.1}", row.afek_loose.mean),
                    format!("{:.1}", row.luby.mean),
                    format!("{:.1}×", row.afek_loose.mean / row.alg1.mean),
                ]);
            }
            Err(e) => {
                let _ = writeln!(out, "warning: skipping n={n}: {e}");
            }
        }
    }
    out.push_str(&table.to_string());
    out.push_str(
        "\nexpected shape: every column grows ≈ log n; Alg 1 within a small constant of \
         JSX; the Afek-style baseline degrades with a loose N bound (its Θ(log N) epoch \
         length) while Alg 1 is unaffected; Luby fastest (strong model).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_row_is_complete() {
        let row = compare_at(64, 3, 0).expect("terminates");
        assert_eq!(row.n, 64);
        for s in [&row.alg1, &row.alg2, &row.jsx, &row.afek, &row.afek_loose, &row.luby] {
            assert!(s.mean > 0.0);
            assert_eq!(s.n, 3);
        }
    }

    #[test]
    fn luby_beats_afek_in_rounds() {
        // The LOCAL model is strictly stronger; Luby should need far fewer
        // rounds than the epoch-structured beeping baseline.
        let row = compare_at(128, 5, 1).expect("terminates");
        assert!(row.luby.mean < row.afek.mean);
    }

    #[test]
    fn report_contains_all_columns() {
        let report = run(true);
        for col in ["Alg 1", "Alg 2", "JSX", "Afek", "Luby"] {
            assert!(report.contains(col), "missing column {col}");
        }
    }
}
