//! Experiment `T2.2-L` — the layering mechanism behind Theorem 2.2 (§5).
//!
//! The proof of Theorem 2.2 splits the vertices into `O(log log n)` classes
//! `V_i = {v : ℓmax(v) ∈ [2^i, 2^{i+1})}` and argues each class stabilizes
//! within `O(log n)` rounds *after* all lower classes have
//! (`T_i = min{t : ∪_{j≤i} V_j ⊆ S_t}`) — low-`ℓmax` (low-degree) vertices
//! first, hubs last, giving the `log n · log log n` product.
//!
//! This experiment runs Algorithm 1 with the own-degree policy on
//! heavy-tailed graphs, records for every vertex the round at which it
//! became (permanently) stable, and reports per-class stabilization
//! percentiles. At practical sizes the additive constant `c1 = 30`
//! dominates `ℓmax`, so the paper's dyadic classes all collapse into one;
//! we therefore bucket by the distinct `ℓmax` *values*
//! (`34, 36, 38, …` on a BA graph) — the same ordering the dyadic classes
//! induce asymptotically.
//!
//! Measured outcome (recorded in EXPERIMENTS.md): empirically the classes
//! do **not** stabilize in the proof's sequence — all of them settle
//! concurrently, and hubs are on average *earlier* (their many beeping
//! neighbors silence them quickly, and a large neighborhood is covered by
//! some MIS join sooner). The proof's "wait for `T_i`" schedule is thus a
//! worst-case accounting device, not a description of the dynamics —
//! which is also why the measured T2.2 times look like plain `O(log n)`
//! rather than showing a visible `log log n` factor.

use analysis::Summary;
use beeping::Simulator;
use mis::observer::Snapshot;
use mis::runner::{initial_levels, RunConfig};
use mis::{Algorithm1, LmaxPolicy};

/// Per-class stabilization data of one execution set.
#[derive(Debug, Clone)]
pub struct LayerReport {
    /// The class's `ℓmax` value.
    pub class: u32,
    /// Number of vertices in the class.
    pub size: usize,
    /// Summary of per-vertex stabilization rounds across vertices & seeds.
    pub vertex_rounds: Summary,
    /// Summary over seeds of `T_i` (the round the whole class completed).
    pub completion: Summary,
}

/// Runs the layering measurement. Errors (instead of panicking) when the
/// Barabási–Albert parameters are invalid for this `n`.
pub fn measure_layers(n: usize, seeds: u64) -> Result<Vec<LayerReport>, graphs::GraphError> {
    let g = graphs::generators::scale_free::barabasi_albert(n, 3, 0x22)?;
    let algo = Algorithm1::new(&g, LmaxPolicy::own_degree(&g));
    let lmax = algo.policy().lmax_values().to_vec();
    let class_of: Vec<u32> = lmax.iter().map(|&l| u32::try_from(l).unwrap_or(0)).collect();
    let max_class = class_of.iter().copied().max().unwrap_or(0);

    // per class: vertex stabilization rounds (across seeds), completion per seed
    let mut vertex_rounds: Vec<Vec<u64>> = vec![Vec::new(); (max_class + 1) as usize];
    let mut completions: Vec<Vec<u64>> = vec![Vec::new(); (max_class + 1) as usize];

    for seed in 0..seeds {
        let config = RunConfig::new(seed);
        let init = initial_levels(&algo, &config);
        let mut sim = Simulator::new(&g, algo.clone(), init, seed);
        let mut stable_at: Vec<Option<u64>> = vec![None; g.len()];
        // Because S_t is monotone (no faults), first-stable = permanent.
        loop {
            sim.step();
            let snap = Snapshot::new(&g, &lmax, sim.states());
            for v in g.nodes() {
                if stable_at[v].is_none() && snap.is_stable(v) {
                    stable_at[v] = Some(sim.round());
                }
            }
            if snap.is_stabilized() {
                break;
            }
            assert!(sim.round() < 2_000_000, "budget exceeded");
        }
        // `is_stabilized` broke the loop, so every vertex was marked
        // stable; the final round is the only consistent fallback.
        let final_round = sim.round();
        let mut class_completion = vec![0u64; (max_class + 1) as usize];
        for v in g.nodes() {
            let r = stable_at[v].unwrap_or(final_round);
            vertex_rounds[class_of[v] as usize].push(r);
            let c = &mut class_completion[class_of[v] as usize];
            *c = (*c).max(r);
        }
        for (i, &c) in class_completion.iter().enumerate() {
            if !vertex_rounds[i].is_empty() {
                completions[i].push(c);
            }
        }
    }

    Ok((0..=max_class)
        .filter(|&i| !vertex_rounds[i as usize].is_empty())
        .map(|i| LayerReport {
            class: i,
            size: class_of.iter().filter(|&&c| c == i).count(),
            vertex_rounds: Summary::of_counts(vertex_rounds[i as usize].iter().copied()),
            completion: Summary::of_counts(completions[i as usize].iter().copied()),
        })
        .collect())
}

/// Runs the experiment and returns the printed report.
pub fn run(quick: bool) -> String {
    let (n, seeds) = if quick { (128, 5) } else { (2048, 30) };
    let mut out =
        crate::common::header("T2.2-L", "Theorem 2.2's layering: ℓmax classes stabilize in order");
    out.push_str(&format!(
        "workload: Barabási–Albert(n = {n}, m = 3), own-degree policy, {seeds} seeds; \
         classes = distinct ℓmax values (low ℓmax ⇔ low degree)\n\n"
    ));
    let layers = match measure_layers(n, seeds) {
        Ok(layers) => layers,
        Err(e) => {
            out.push_str(&format!("warning: skipping layer measurement: {e}\n"));
            return out;
        }
    };
    let mut table = analysis::Table::new([
        "ℓmax class",
        "|V_i|",
        "vertex stab. mean",
        "vertex p95",
        "class completion T_i (mean)",
    ]);
    for l in &layers {
        table.row([
            l.class.to_string(),
            l.size.to_string(),
            format!("{:.1}", l.vertex_rounds.mean),
            format!("{:.0}", l.vertex_rounds.p95),
            format!("{:.1}", l.completion.mean),
        ]);
    }
    out.push_str(&table.to_string());
    out.push_str(
        "\nmeasured shape: all classes stabilize concurrently within the same O(log n) \
         window, hubs on average slightly earlier — the proof's layer-by-layer schedule \
         is an analysis device (a sufficient condition), not the actual dynamics.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_classes_settle_in_the_same_logarithmic_window() {
        let layers = measure_layers(256, 8).expect("valid BA");
        assert!(layers.len() >= 2, "BA graphs must produce multiple ℓmax classes");
        // Every class's mean stabilization time is within a small factor of
        // every other's — the concurrent-settling observation.
        let means: Vec<f64> = layers.iter().map(|l| l.vertex_rounds.mean).collect();
        let min = means.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = means.iter().cloned().fold(0.0f64, f64::max);
        assert!(max <= 3.0 * min, "class means spread too wide: min {min:.1}, max {max:.1}");
    }

    #[test]
    fn report_lists_classes() {
        let report = run(true);
        assert!(report.contains("T2.2-L"));
        assert!(report.contains("|V_i|"));
    }
}
