//! Supervised long-run driver: one resumable Algorithm 1/2 run under the
//! resilient harness, with durable checkpoints, crash injection and
//! resume-from-snapshot — the CLI face of `crates/harness`.
//!
//! ```text
//! # start a long run, checkpointing every 1024 rounds
//! cargo run -p experiments --release --bin supervised -- \
//!     --family gnp --n 4096 --seed 7 --checkpoint-dir ckpt --checkpoint-every 1024
//!
//! # the process died (or was --kill-at'ed); pick the run back up
//! cargo run -p experiments --release --bin supervised -- \
//!     --family gnp --n 4096 --seed 7 --checkpoint-dir ckpt --checkpoint-every 1024 --resume
//! ```
//!
//! On success the last stdout line is a deterministic digest of the run's
//! observables (`digest=<16 hex>`); a killed-then-resumed run prints the
//! same digest as an uninterrupted one, which is exactly what the CI
//! crash-resume smoke job asserts.

use std::path::PathBuf;
use std::process::ExitCode;

use beeping::dynamic::MotionSpec;
use beeping::EngineMode;
use experiments::resilience::outcome_digest;
use graphs::generators::geometric::radius_for_expected_degree;
use graphs::generators::GraphFamily;
use graphs::motion::MotionModel;
use graphs::Graph;
use harness::supervisor::{supervise, supervise_resume, RunOutcome, SupervisorConfig};
use mis::resumable::ResumableConfig;
use mis::{Algorithm1, Algorithm2, LmaxPolicy};

fn usage() -> &'static str {
    "usage: supervised [--family cycle|regular|gnp] [--n <nodes>] [--seed <u64>]\n\
     \x20                 [--algorithm alg1|alg2] [--engine scalar|scatter|frontier|par[:N]]\n\
     \x20                 [--max-rounds <r>] [--motion <speed>] [--checkpoint-dir <dir>]\n\
     \x20                 [--checkpoint-every <rounds>] [--resume] [--kill-at <round>]\n\
     \x20                 [--wall-clock-limit <secs>] [--max-retries <k>]\n\
     \n\
     Runs one self-stabilization run under the resilient harness. With\n\
     --checkpoint-dir, a durable snapshot (checkpoint.snap) is kept current\n\
     every --checkpoint-every rounds; --resume continues from it instead of\n\
     starting over. --kill-at simulates a crash immediately before the given\n\
     round (test instrumentation for the CI smoke job). --motion replaces\n\
     the static graph with a moving geometric deployment (random waypoint at\n\
     the given speed; --family is ignored); snapshots then carry positions\n\
     and motion-RNG state, so resumed moving runs stay bit-identical too.\n\
     Prints the outcome and a deterministic digest=<hex> line."
}

struct Args {
    family: String,
    n: usize,
    seed: u64,
    algorithm: String,
    engine: EngineMode,
    max_rounds: u64,
    motion: Option<f64>,
    checkpoint_dir: Option<PathBuf>,
    checkpoint_every: Option<u64>,
    resume: bool,
    kill_at: Option<u64>,
    wall_clock_limit: Option<f64>,
    max_retries: u32,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        family: "gnp".to_string(),
        n: 1 << 10,
        seed: 7,
        algorithm: "alg1".to_string(),
        engine: EngineMode::default(),
        max_rounds: 1_000_000,
        motion: None,
        checkpoint_dir: None,
        checkpoint_every: None,
        resume: false,
        kill_at: None,
        wall_clock_limit: None,
        max_retries: 0,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = || it.next().ok_or_else(|| format!("{flag} expects a value"));
        match flag.as_str() {
            "--family" => args.family = value()?.clone(),
            "--n" => args.n = value()?.parse().map_err(|_| "--n expects an integer")?,
            "--seed" => args.seed = value()?.parse().map_err(|_| "--seed expects a u64")?,
            "--algorithm" => args.algorithm = value()?.clone(),
            "--engine" => args.engine = parse_engine(value()?)?,
            "--max-rounds" => {
                args.max_rounds = value()?.parse().map_err(|_| "--max-rounds expects a u64")?
            }
            "--motion" => {
                let speed: f64 =
                    value()?.parse().map_err(|_| "--motion expects a speed in [0, 1]")?;
                if !(0.0..=1.0).contains(&speed) {
                    return Err("--motion expects a speed in [0, 1]".to_string());
                }
                args.motion = Some(speed);
            }
            "--checkpoint-dir" => args.checkpoint_dir = Some(PathBuf::from(value()?)),
            "--checkpoint-every" => {
                args.checkpoint_every =
                    Some(value()?.parse().map_err(|_| "--checkpoint-every expects a u64")?)
            }
            "--resume" => args.resume = true,
            "--kill-at" => {
                args.kill_at = Some(value()?.parse().map_err(|_| "--kill-at expects a u64")?)
            }
            "--wall-clock-limit" => {
                args.wall_clock_limit =
                    Some(value()?.parse().map_err(|_| "--wall-clock-limit expects seconds")?)
            }
            "--max-retries" => {
                args.max_retries = value()?.parse().map_err(|_| "--max-retries expects a u32")?
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

/// Parses `--engine`: `scalar`, `scatter`, `frontier`, or `par[:N]` where
/// `N` is the worker-thread count (defaults to the machine's available
/// parallelism). All engines are bit-identical per seed, so the choice
/// never changes the printed digest — only the wall-clock.
fn parse_engine(name: &str) -> Result<EngineMode, String> {
    match name {
        "scalar" => return Ok(EngineMode::Scalar),
        "scatter" => return Ok(EngineMode::Scatter),
        "frontier" => return Ok(EngineMode::Frontier),
        "par" => {
            let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
            return Ok(EngineMode::ParScatter { threads });
        }
        _ => {}
    }
    if let Some(spec) = name.strip_prefix("par:") {
        let threads: usize =
            spec.parse().map_err(|_| format!("par:{spec}: thread count must be an integer"))?;
        if threads == 0 {
            return Err("par:0: thread count must be at least 1".to_string());
        }
        return Ok(EngineMode::ParScatter { threads });
    }
    Err(format!("unknown engine {name:?} (scalar|scatter|frontier|par[:N])"))
}

fn family(name: &str) -> Result<GraphFamily, String> {
    match name {
        "cycle" => Ok(GraphFamily::Cycle),
        "regular" => Ok(GraphFamily::Regular { d: 4 }),
        "gnp" => Ok(GraphFamily::Gnp { avg_degree: 8.0 }),
        other => Err(format!("unknown family {other:?} (cycle|regular|gnp)")),
    }
}

fn report(outcome: RunOutcome) -> ExitCode {
    match outcome {
        RunOutcome::Completed(o) => {
            println!(
                "completed: stabilized after {} rounds (stabilization_round={})",
                o.rounds_run,
                o.stabilization_round.unwrap_or(0)
            );
            println!("digest={:016x}", outcome_digest(&o));
            ExitCode::SUCCESS
        }
        RunOutcome::BudgetExhausted(o) => {
            println!(
                "budget-exhausted after {} rounds (resume with a larger --max-rounds)",
                o.rounds_run
            );
            println!("digest={:016x}", outcome_digest(&o));
            ExitCode::SUCCESS
        }
        RunOutcome::WallClockExceeded { rounds_run, snapshot } => {
            match snapshot {
                Some(path) => println!(
                    "wall-clock limit hit at round {rounds_run}; resume point: {}",
                    path.display()
                ),
                None => println!(
                    "wall-clock limit hit at round {rounds_run}; no snapshot (no --checkpoint-dir)"
                ),
            }
            ExitCode::SUCCESS
        }
        RunOutcome::Panicked { message, round, retries_used } => {
            eprintln!(
                "run panicked ({message}); last good checkpoint at round {round}, \
                 {retries_used} retries used — rerun with --resume"
            );
            ExitCode::FAILURE
        }
        RunOutcome::CorruptSnapshot { error } => {
            eprintln!("cannot resume: {error}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("error: {message}\n");
            }
            eprintln!("{}", usage());
            return ExitCode::FAILURE;
        }
    };

    if args.resume && args.checkpoint_dir.is_none() {
        eprintln!("error: --resume requires --checkpoint-dir\n\n{}", usage());
        return ExitCode::FAILURE;
    }

    let fam = match family(&args.family) {
        Ok(f) => f,
        Err(message) => {
            eprintln!("error: {message}\n\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    // A moving deployment replaces the static family: the graph is the
    // spec's initial radius graph and every run/resume attaches the spec,
    // so snapshots round-trip positions and motion-RNG state.
    let motion_spec = args.motion.map(|speed| {
        MotionSpec::new(
            0x6000,
            radius_for_expected_degree(args.n, 8.0),
            MotionModel::RandomWaypoint { speed, pause: 2 },
        )
    });
    let g: Graph = match &motion_spec {
        Some(spec) => spec.initial_graph(args.n),
        None => fam.generate(args.n, 0x6000),
    };
    let workload = match args.motion {
        Some(speed) => format!("moving-rgg(speed={speed})"),
        None => fam.to_string(),
    };

    if let Some(dir) = &args.checkpoint_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create checkpoint dir {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }

    let mut sup = SupervisorConfig::new().with_max_retries(args.max_retries);
    if let Some(every) = args.checkpoint_every {
        sup = sup.with_checkpoint_every(every);
    }
    if let Some(dir) = &args.checkpoint_dir {
        sup = sup.with_checkpoint_dir(dir.clone());
    }
    if let Some(limit) = args.wall_clock_limit {
        sup = sup.with_wall_clock_limit_secs(limit);
    }
    if let Some(round) = args.kill_at {
        sup = sup.with_kill_at(round);
    }

    println!(
        "{} of alg={} on {workload} n={} seed={} engine={:?} (checkpoints: {})",
        if args.resume { "resume" } else { "run" },
        args.algorithm,
        g.len(),
        args.seed,
        args.engine,
        match (&args.checkpoint_dir, args.checkpoint_every) {
            (Some(dir), Some(k)) => format!("every {k} rounds -> {}", dir.display()),
            (Some(dir), None) => format!("on demand -> {}", dir.display()),
            _ => "in-memory only".to_string(),
        },
    );

    let make_config = || {
        let mut config = ResumableConfig::new(args.seed)
            .with_max_rounds(args.max_rounds)
            .with_engine(args.engine);
        if let Some(spec) = motion_spec {
            config = config.with_motion(spec);
        }
        config
    };
    let result = match args.algorithm.as_str() {
        "alg1" => {
            let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
            if args.resume {
                supervise_resume(&algo, make_config(), &sup, None)
            } else {
                supervise(&g, &algo, make_config(), &sup)
            }
        }
        "alg2" => {
            let algo = Algorithm2::new(&g, LmaxPolicy::two_hop_degree(&g));
            if args.resume {
                supervise_resume(&algo, make_config(), &sup, None)
            } else {
                supervise(&g, &algo, make_config(), &sup)
            }
        }
        other => {
            eprintln!("error: unknown algorithm {other:?} (alg1|alg2)\n\n{}", usage());
            return ExitCode::FAILURE;
        }
    };

    match result {
        Ok(outcome) => report(outcome),
        Err(e) => {
            eprintln!("harness error: {e}");
            ExitCode::FAILURE
        }
    }
}
