//! `solve` — compute a self-stabilizing MIS for a graph given as an
//! edge-list file (or a named generator), printing the members.
//!
//! ```text
//! solve --graph network.edges [--algorithm alg1|alg2|adaptive]
//!       [--policy global|own|deg2] [--seed N] [--max-rounds N] [--dot out.dot]
//! solve --generate gnp:1000:8 --seed 3      # built-in workload instead of a file
//! ```
//!
//! Exit code 0 on success; the MIS is printed one vertex id per line after
//! a `# …` stats header.

use std::process::ExitCode;

use graphs::Graph;
use mis::adaptive::AdaptiveMis;
use mis::runner::{InitialLevels, RunConfig};
use mis::{Algorithm1, Algorithm2, LmaxPolicy};

struct Options {
    graph_file: Option<String>,
    generate: Option<String>,
    algorithm: String,
    policy: String,
    seed: u64,
    max_rounds: u64,
    dot: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        graph_file: None,
        generate: None,
        algorithm: "alg1".into(),
        policy: "global".into(),
        seed: 0,
        max_rounds: 10_000_000,
        dot: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("missing value for {name}"));
        match arg.as_str() {
            "--graph" => opts.graph_file = Some(value("--graph")?),
            "--generate" => opts.generate = Some(value("--generate")?),
            "--algorithm" => opts.algorithm = value("--algorithm")?,
            "--policy" => opts.policy = value("--policy")?,
            "--seed" => {
                opts.seed = value("--seed")?.parse().map_err(|e| format!("bad seed: {e}"))?
            }
            "--max-rounds" => {
                opts.max_rounds =
                    value("--max-rounds")?.parse().map_err(|e| format!("bad max-rounds: {e}"))?
            }
            "--dot" => opts.dot = Some(value("--dot")?),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if opts.graph_file.is_none() && opts.generate.is_none() {
        return Err("one of --graph <file> or --generate <spec> is required".into());
    }
    Ok(opts)
}

fn load_graph(opts: &Options) -> Result<Graph, String> {
    if let Some(path) = &opts.graph_file {
        let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
        return graphs::edgelist::read_edge_list(std::io::BufReader::new(file))
            .map_err(|e| format!("cannot parse {path}: {e}"));
    }
    let spec = opts
        .generate
        .as_deref()
        .ok_or_else(|| "one of --graph <file> or --generate <spec> is required".to_string())?;
    let parts: Vec<&str> = spec.split(':').collect();
    let parse_n = |s: &str| s.parse::<usize>().map_err(|e| format!("bad size in {spec}: {e}"));
    match parts.as_slice() {
        ["gnp", n, d] => {
            let n = parse_n(n)?;
            let d: f64 = d.parse().map_err(|e| format!("bad degree in {spec}: {e}"))?;
            let p = if n > 1 { (d / (n as f64 - 1.0)).min(1.0) } else { 0.0 };
            Ok(graphs::generators::random::gnp(n, p, opts.seed))
        }
        ["geo", n, d] => {
            let n = parse_n(n)?;
            let d: f64 = d.parse().map_err(|e| format!("bad degree in {spec}: {e}"))?;
            Ok(graphs::generators::geometric::random_geometric_expected_degree(n, d, opts.seed))
        }
        ["ba", n, m] => {
            let n = parse_n(n)?;
            let m = parse_n(m)?;
            graphs::generators::scale_free::barabasi_albert(n, m, opts.seed)
                .map_err(|e| e.to_string())
        }
        ["cycle", n] => Ok(graphs::generators::classic::cycle(parse_n(n)?)),
        ["grid", r, c] => Ok(graphs::generators::lattice::grid(parse_n(r)?, parse_n(c)?)),
        _ => Err(format!(
            "unknown generator spec {spec}; try gnp:N:AVGDEG, geo:N:AVGDEG, ba:N:M, cycle:N, grid:R:C"
        )),
    }
}

fn pick_policy(g: &Graph, name: &str) -> Result<LmaxPolicy, String> {
    match name {
        "global" => Ok(LmaxPolicy::global_delta(g)),
        "own" => Ok(LmaxPolicy::own_degree(g)),
        "deg2" => Ok(LmaxPolicy::two_hop_degree(g)),
        other => Err(format!("unknown policy {other}; try global|own|deg2")),
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprintln!(
                "usage: solve (--graph FILE | --generate SPEC) [--algorithm alg1|alg2|adaptive]\n\
                 \x20            [--policy global|own|deg2] [--seed N] [--max-rounds N] [--dot FILE]"
            );
            return ExitCode::FAILURE;
        }
    };
    let g = match load_graph(&opts) {
        Ok(g) => g,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };

    let (mis, rounds) = match opts.algorithm.as_str() {
        "alg1" | "alg2" => {
            let policy = match pick_policy(&g, &opts.policy) {
                Ok(p) => p,
                Err(msg) => {
                    eprintln!("error: {msg}");
                    return ExitCode::FAILURE;
                }
            };
            let config = RunConfig::new(opts.seed)
                .with_init(InitialLevels::Random)
                .with_max_rounds(opts.max_rounds);
            let outcome = if opts.algorithm == "alg1" {
                Algorithm1::new(&g, policy).run(&g, config)
            } else {
                Algorithm2::new(&g, policy).run(&g, config)
            };
            match outcome {
                Ok(o) => (o.mis, o.stabilization_round),
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        "adaptive" => match AdaptiveMis::new().run_random_init(&g, opts.seed, opts.max_rounds) {
            Some(result) => result,
            None => {
                eprintln!("error: not stabilized within {} rounds", opts.max_rounds);
                return ExitCode::FAILURE;
            }
        },
        other => {
            eprintln!("error: unknown algorithm {other}; try alg1|alg2|adaptive");
            return ExitCode::FAILURE;
        }
    };

    if let Some(v) = graphs::mis::explain_violation(&g, &mis) {
        eprintln!("internal error: output is not an MIS ({v})");
        return ExitCode::FAILURE;
    }
    println!(
        "# n={} m={} algorithm={} policy={} seed={} rounds={} mis_size={}",
        g.len(),
        g.num_edges(),
        opts.algorithm,
        opts.policy,
        opts.seed,
        rounds,
        graphs::mis::size(&mis)
    );
    for v in graphs::mis::members(&mis) {
        println!("{v}");
    }
    if let Some(path) = &opts.dot {
        if let Err(e) = std::fs::write(path, graphs::dot::mis_to_dot(&g, &mis)) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    ExitCode::SUCCESS
}
