//! Experiment runner CLI.
//!
//! ```text
//! cargo run -p experiments --release -- all            # every experiment
//! cargo run -p experiments --release -- T2.1 C2.3      # selected ids
//! cargo run -p experiments --release -- all --quick    # reduced sizes/seeds
//! cargo run -p experiments --release -- --list         # show the registry
//! cargo run -p experiments --release -- all --out results  # also write results/<id>.txt
//! cargo run -p experiments --release -- DYN --telemetry run.jsonl  # stream run telemetry
//! ```
//!
//! `--telemetry <path>` opens a JSONL sink and hands one shared
//! [`telemetry::Telemetry`] handle to every selected experiment that has a
//! streaming driver (`DYN`, `NOISE`, `BYZ`); the file ends with a
//! `metrics` snapshot of the accumulated counters/gauges/timers. Level
//! histograms are sampled every `--level-stride <k>` rounds (default 8;
//! 0 disables them).

use std::process::ExitCode;

use telemetry::{Config as TelemetryConfig, JsonlSink, Telemetry};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let list = args.iter().any(|a| a == "--list");
    let value_of = |flag: &str| -> Option<&String> {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1))
    };
    let out_dir: Option<std::path::PathBuf> = value_of("--out").map(std::path::PathBuf::from);
    let telemetry_path: Option<std::path::PathBuf> =
        value_of("--telemetry").map(std::path::PathBuf::from);
    let level_stride: u64 = match value_of("--level-stride").map(|s| s.parse()) {
        None => 8,
        Some(Ok(k)) => k,
        Some(Err(_)) => {
            eprintln!("--level-stride expects a non-negative integer");
            return ExitCode::FAILURE;
        }
    };
    let flags_with_value = ["--out", "--telemetry", "--level-stride"];
    let mut skip_next = false;
    let ids: Vec<&String> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if flags_with_value.contains(&a.as_str()) {
                skip_next = true;
                return false;
            }
            !a.starts_with("--")
        })
        .collect();
    if let Some(dir) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create output directory {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    let tele = match &telemetry_path {
        Some(path) => match JsonlSink::create(path) {
            Ok(sink) => {
                Telemetry::enabled(TelemetryConfig { level_stride }).with_sink(Box::new(sink))
            }
            Err(e) => {
                eprintln!("cannot create telemetry file {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        },
        None => Telemetry::disabled(),
    };

    if list || (ids.is_empty() && !quick) && args.is_empty() {
        eprintln!("usage: experiments <id>... | all [--quick] [--list] [--out <dir>]");
        eprintln!("                   [--telemetry <path.jsonl>] [--level-stride <k>]\n");
        eprintln!("available experiments:");
        for e in experiments::all_experiments() {
            eprintln!("  {:<9} {}", e.id, e.title);
        }
        return if list { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }

    let run_all = ids.iter().any(|id| id.eq_ignore_ascii_case("all")) || ids.is_empty();
    let selected: Vec<experiments::Experiment> = if run_all {
        experiments::all_experiments()
    } else {
        let mut chosen = Vec::new();
        for id in &ids {
            match experiments::find_experiment(id) {
                Some(e) => chosen.push(e),
                None => {
                    eprintln!("unknown experiment id: {id} (try --list)");
                    return ExitCode::FAILURE;
                }
            }
        }
        chosen
    };

    for e in selected {
        let watch = telemetry::Stopwatch::start();
        let report = e.run_with(quick, &tele);
        println!("{report}");
        println!("[{} finished in {:.1}s]\n", e.id, watch.elapsed_secs());
        if let Some(dir) = &out_dir {
            let path = dir.join(format!("{}.txt", e.id.replace('.', "_")));
            if let Err(err) = std::fs::write(&path, &report) {
                eprintln!("cannot write {}: {err}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    tele.finish();
    if let Some(path) = &telemetry_path {
        println!("telemetry written to {}", path.display());
    }
    ExitCode::SUCCESS
}
