//! Experiment runner CLI.
//!
//! ```text
//! cargo run -p experiments --release -- all            # every experiment
//! cargo run -p experiments --release -- T2.1 C2.3      # selected ids
//! cargo run -p experiments --release -- all --quick    # reduced sizes/seeds
//! cargo run -p experiments --release -- --list         # show the registry
//! cargo run -p experiments --release -- all --out results  # also write results/<id>.txt
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let list = args.iter().any(|a| a == "--list");
    let out_dir: Option<std::path::PathBuf> = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);
    let mut skip_next = false;
    let ids: Vec<&String> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--out" {
                skip_next = true;
                return false;
            }
            !a.starts_with("--")
        })
        .collect();
    if let Some(dir) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create output directory {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }

    if list || (ids.is_empty() && !quick) && args.is_empty() {
        eprintln!("usage: experiments <id>... | all [--quick] [--list]\n");
        eprintln!("available experiments:");
        for e in experiments::all_experiments() {
            eprintln!("  {:<9} {}", e.id, e.title);
        }
        return if list { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }

    let run_all = ids.iter().any(|id| id.eq_ignore_ascii_case("all")) || ids.is_empty();
    let selected: Vec<experiments::Experiment> = if run_all {
        experiments::all_experiments()
    } else {
        let mut chosen = Vec::new();
        for id in &ids {
            match experiments::find_experiment(id) {
                Some(e) => chosen.push(e),
                None => {
                    eprintln!("unknown experiment id: {id} (try --list)");
                    return ExitCode::FAILURE;
                }
            }
        }
        chosen
    };

    for e in selected {
        let started = std::time::Instant::now();
        let report = (e.run)(quick);
        println!("{report}");
        println!("[{} finished in {:.1}s]\n", e.id, started.elapsed().as_secs_f64());
        if let Some(dir) = &out_dir {
            let path = dir.join(format!("{}.txt", e.id.replace('.', "_")));
            if let Err(err) = std::fs::write(&path, &report) {
                eprintln!("cannot write {}: {err}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
