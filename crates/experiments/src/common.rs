//! Shared plumbing for the experiment drivers: workload sweeps, repeated
//! stabilization measurements, and report assembly.

use analysis::{FitReport, GrowthModel, Summary};
use graphs::generators::GraphFamily;
use graphs::Graph;
use mis::runner::{self, InitialLevels, RunConfig, SelfStabilizingMis};

/// Sweep sizes for the theorem experiments: powers of two.
pub fn sweep_sizes(quick: bool) -> Vec<usize> {
    if quick {
        vec![64, 128, 256]
    } else {
        vec![128, 256, 512, 1024, 2048, 4096, 8192, 16384]
    }
}

/// Number of random seeds per configuration.
pub fn seed_count(quick: bool) -> u64 {
    if quick {
        5
    } else {
        50
    }
}

/// Generation seed for the workload graph at sweep position `i` (kept
/// disjoint from the execution seeds).
pub fn graph_seed(i: usize) -> u64 {
    0x6000 + i as u64
}

/// Measured stabilization times for one `(graph, algorithm)` pair over
/// `seeds` independent executions from `init`, plus the number of runs that
/// blew the budget.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Stabilization rounds of the successful runs.
    pub rounds: Vec<u64>,
    /// Runs that exhausted the round budget.
    pub failures: usize,
    /// Budget used.
    pub max_rounds: u64,
}

impl Measurement {
    /// Summary of the successful rounds.
    ///
    /// # Panics
    ///
    /// Panics if every run failed.
    pub fn summary(&self) -> Summary {
        Summary::of_counts(self.rounds.iter().copied())
    }
}

/// Runs `algo` on `graph` for seeds `0..seeds` and collects stabilization
/// times. Every successful run's output is verified to be an MIS (a
/// violated invariant is a bug, so it panics loudly).
pub fn measure<A: SelfStabilizingMis>(
    graph: &Graph,
    algo: &A,
    seeds: u64,
    init: InitialLevels,
    max_rounds: u64,
) -> Measurement {
    let mut rounds = Vec::with_capacity(seeds as usize);
    let mut failures = 0;
    for seed in 0..seeds {
        let config = RunConfig::new(seed).with_init(init.clone()).with_max_rounds(max_rounds);
        match runner::run(graph, algo, config) {
            Ok(outcome) => {
                assert!(
                    graphs::mis::is_maximal_independent_set(graph, &outcome.mis),
                    "algorithm produced a non-MIS (graph n={}, seed {seed})",
                    graph.len()
                );
                rounds.push(outcome.stabilization_round);
            }
            Err(_) => failures += 1,
        }
    }
    Measurement { rounds, failures, max_rounds }
}

/// One row of a theorem-experiment sweep: mean stabilization time at one
/// `(family, n)` point.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Network size.
    pub n: usize,
    /// Max degree of the generated instance.
    pub delta: usize,
    /// Summary over seeds.
    pub summary: Summary,
    /// Budget failures.
    pub failures: usize,
}

/// Runs a full `T(n)` sweep of `make_algo` over `family` and the given
/// sizes.
pub fn sweep<A, F>(
    family: &GraphFamily,
    sizes: &[usize],
    seeds: u64,
    max_rounds: u64,
    make_algo: F,
) -> Vec<SweepPoint>
where
    A: SelfStabilizingMis,
    F: Fn(&Graph) -> A,
{
    sizes
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            let g = family.generate(n, graph_seed(i));
            let algo = make_algo(&g);
            let m = measure(&g, &algo, seeds, InitialLevels::Random, max_rounds);
            SweepPoint {
                n: g.len(),
                delta: g.max_degree(),
                summary: m.summary(),
                failures: m.failures,
            }
        })
        .collect()
}

/// Renders a sweep as table rows plus the model-comparison fit lines; the
/// standard output block of the theorem experiments.
pub fn render_sweep(out: &mut String, family: &GraphFamily, points: &[SweepPoint]) {
    let mut table =
        analysis::Table::new(["n", "Δ", "mean", "ci95", "median", "p95", "max", "fail"]);
    for p in points {
        table.row([
            p.n.to_string(),
            p.delta.to_string(),
            format!("{:.1}", p.summary.mean),
            format!("±{:.1}", p.summary.ci95_halfwidth()),
            format!("{:.0}", p.summary.median),
            format!("{:.0}", p.summary.p95),
            format!("{:.0}", p.summary.max),
            p.failures.to_string(),
        ]);
    }
    out.push_str(&format!("\n## family: {family}\n\n{table}"));
    if points.len() >= 3 {
        let sizes: Vec<usize> = points.iter().map(|p| p.n).collect();
        let means: Vec<f64> = points.iter().map(|p| p.summary.mean).collect();
        out.push_str("\nmodel fits (best R² first):\n");
        for report in FitReport::compare_all(&sizes, &means).iter().take(3) {
            out.push_str(&format!("  {report}\n"));
        }
    }
}

/// The best-fitting growth model for a sweep's means.
pub fn best_model(points: &[SweepPoint]) -> GrowthModel {
    let sizes: Vec<usize> = points.iter().map(|p| p.n).collect();
    let means: Vec<f64> = points.iter().map(|p| p.summary.mean).collect();
    FitReport::compare_all(&sizes, &means)[0].model
}

/// Standard report header.
pub fn header(id: &str, title: &str) -> String {
    format!("# [{id}] {title}\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis::{Algorithm1, LmaxPolicy};

    #[test]
    fn measure_counts_and_verifies() {
        let g = GraphFamily::Cycle.generate(32, 0);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let m = measure(&g, &algo, 4, InitialLevels::Random, 100_000);
        assert_eq!(m.rounds.len() + m.failures, 4);
        assert_eq!(m.failures, 0);
        assert!(m.summary().mean > 0.0);
    }

    #[test]
    fn sweep_produces_point_per_size() {
        let family = GraphFamily::Cycle;
        let points = sweep(&family, &[16, 32], 3, 100_000, |g| {
            Algorithm1::new(g, LmaxPolicy::global_delta(g))
        });
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].n, 16);
        assert_eq!(points[1].delta, 2);
    }

    #[test]
    fn render_sweep_includes_fits_for_three_points() {
        let family = GraphFamily::Cycle;
        let points = sweep(&family, &[16, 32, 64], 3, 100_000, |g| {
            Algorithm1::new(g, LmaxPolicy::global_delta(g))
        });
        let mut out = String::new();
        render_sweep(&mut out, &family, &points);
        assert!(out.contains("model fits"));
        assert!(out.contains("cycle"));
    }

    #[test]
    fn quick_knobs() {
        assert!(sweep_sizes(true).len() < sweep_sizes(false).len());
        assert!(seed_count(true) < seed_count(false));
    }
}
