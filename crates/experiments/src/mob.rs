//! Experiment `MOB` — stabilization and containment under sustained motion.
//!
//! *Claim under test*: the paper's guarantees are proved for a static
//! topology. On a *moving* geometric deployment ([`beeping::dynamic`]) the
//! edge set changes every round, so classic stabilization ("reach a valid
//! MIS and stay there") is unattainable; the operative questions become
//! (1) how quickly the protocol reaches a configuration that is a valid
//! MIS *on the current graph* as motion speed grows, and (2) whether
//! Byzantine disruption stays contained when the adversary's neighborhood
//! is itself in flux.
//!
//! *Measurements*:
//!
//! 1. **Stabilization vs speed** — random-waypoint and drift deployments
//!    across a speed grid; fraction of seeds reaching an instantaneously
//!    valid MIS within budget and the mean round of first validity.
//! 2. **Containment under motion** — one stuck-beep Byzantine node at the
//!    densest initial site; fraction of seeds certified stable outside
//!    radius 2 of the (moving) adversary, with hop distances recomputed on
//!    the current graph every round, plus the worst final disruption
//!    radius.
//! 3. **Determinism digests** — the same moving run executed under the
//!    scalar, scatter, and frontier engines, and with telemetry attached,
//!    must produce one digest; these are the PR's bit-identity acceptance
//!    criteria asserted inside the experiment on every run.
//!
//! Measurement helpers return [`MobError`] instead of panicking on an
//! invalid plan or an unfinished run; the report skips the affected cell
//! with a `warning:` line, mirroring `PERF`'s error handling.
//!
//! *Expected shape*: zero speed reproduces the static behavior exactly.
//! For nonzero speed the governing quantity is the *aggregate* edge-event
//! rate (≈ n · speed / radius) relative to the recovery time: on small
//! deployments (the `--quick` profile, n = 48) slow motion delays first
//! validity without preventing it and fast motion makes validity instants
//! vanish, while at the full profile's n = 256 even the slowest nonzero
//! speed keeps some edge event perpetually in flight, so *global*
//! instantaneous validity is a small-deployment phenomenon — at scale the
//! meaningful target is per-neighborhood validity. All three digests agree
//! in every profile.

use std::fmt::Write as _;

use beeping::byzantine::{ByzantineBehavior, ByzantinePlan};
use beeping::dynamic::MotionSpec;
use beeping::EngineMode;
use graphs::generators::geometric::radius_for_expected_degree;
use graphs::motion::MotionModel;
use graphs::Graph;
use mis::containment::{byz_distances, disruption_radius, stabilized_except};
use mis::resumable::{PlanError, ResumableConfig, ResumableRun, RunStatus};
use mis::runner::SelfStabilizingMis;
use mis::{Algorithm1, LmaxPolicy};
use telemetry::Telemetry;

use crate::resilience::outcome_digest;

/// The certified containment radius of the motion table (matches the
/// static `BYZ` experiment's bound).
pub const RADIUS: usize = 2;

/// Why a motion measurement could not be taken. Mirrors `PERF`'s
/// [`mis::runner::StabilizationError`] pattern: measurement helpers return
/// `Result` and the report skips the affected cell with a warning line
/// instead of panicking mid-experiment.
#[derive(Debug, Clone, PartialEq)]
pub enum MobError {
    /// The run's motion/fault plans were rejected by the resumable runner.
    Plan(PlanError),
    /// The run ended while still `Running`, so there is no outcome to
    /// digest (a budget/supervision misconfiguration, not a protocol
    /// behavior).
    Unfinished,
}

impl std::fmt::Display for MobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MobError::Plan(e) => write!(f, "{e}"),
            MobError::Unfinished => write!(f, "run ended without leaving the Running state"),
        }
    }
}

impl std::error::Error for MobError {}

impl From<PlanError> for MobError {
    fn from(e: PlanError) -> MobError {
        MobError::Plan(e)
    }
}

/// The motion models of the sweep at a given speed.
pub fn models(speed: f64) -> Vec<MotionModel> {
    vec![MotionModel::RandomWaypoint { speed, pause: 2 }, MotionModel::Drift { speed, turn: 0.3 }]
}

/// The speed grid (unit-square distance per round). The interesting
/// transition sits where a node needs hundreds of rounds to cross its
/// communication radius — comparable to the recovery time after each edge
/// flip; much faster motion outpaces stabilization entirely. Where on this
/// grid the transition lands depends on deployment size: the aggregate
/// edge-event rate grows with `n`, so the quick profile (n = 48) crosses
/// it mid-grid while the full profile (n = 256) sits past it at every
/// nonzero speed.
pub fn speeds() -> Vec<f64> {
    vec![0.0, 0.0005, 0.002, 0.01]
}

fn max_degree_node(g: &Graph) -> usize {
    g.nodes().max_by_key(|&v| g.neighbors(v).len()).unwrap_or(0)
}

/// First round at which the run's configuration is a valid MIS on the
/// *current* graph outside `radius` hops of `placement` (empty placement
/// degenerates to plain instantaneous validity), or `None` on budget
/// exhaustion; paired with the disruption radius at the stopping point.
fn first_valid_round<A: SelfStabilizingMis>(
    g: &Graph,
    algo: &A,
    config: ResumableConfig,
    placement: &[usize],
    radius: usize,
) -> Result<(Option<u64>, usize), MobError> {
    let mut run = ResumableRun::new(g, algo, config)?;
    loop {
        let status = run.tick();
        let current = run.graph();
        let dist = byz_distances(current, placement);
        if stabilized_except(algo, current, run.levels(), run.active(), &dist, radius) {
            let final_radius =
                disruption_radius(algo, current, run.levels(), run.active(), placement);
            return Ok((Some(run.round()), final_radius));
        }
        if status != RunStatus::Running {
            let final_radius =
                disruption_radius(algo, run.graph(), run.levels(), run.active(), placement);
            return Ok((None, final_radius));
        }
    }
}

#[derive(Debug)]
struct Cell {
    ok: usize,
    rounds: Vec<u64>,
    worst_radius: usize,
}

fn measure_cell<A: SelfStabilizingMis>(
    g: &Graph,
    algo: &A,
    spec: MotionSpec,
    placement: &[usize],
    seeds: u64,
    budget: u64,
    radius: usize,
) -> Result<Cell, MobError> {
    let mut cell = Cell { ok: 0, rounds: Vec::new(), worst_radius: 0 };
    for seed in 0..seeds {
        let mut config = ResumableConfig::new(seed).with_max_rounds(budget).with_motion(spec);
        if !placement.is_empty() {
            let mut plan = ByzantinePlan::new();
            for &v in placement {
                plan.set_behavior(v, ByzantineBehavior::StuckBeep);
            }
            config = config.with_byzantine(plan);
        }
        let (round, final_radius) = first_valid_round(g, algo, config, placement, radius)?;
        if let Some(r) = round {
            cell.ok += 1;
            cell.rounds.push(r);
        }
        cell.worst_radius = cell.worst_radius.max(final_radius);
    }
    Ok(cell)
}

fn cell_row(cell: &Cell, seeds: u64) -> [String; 3] {
    let mean = if cell.rounds.is_empty() {
        "-".to_string()
    } else {
        format!("{:.1}", analysis::Summary::of_counts(cell.rounds.iter().copied()).mean)
    };
    let radius = if cell.worst_radius == usize::MAX {
        "∞".to_string()
    } else {
        cell.worst_radius.to_string()
    };
    [format!("{}/{seeds}", cell.ok), mean, radius]
}

/// One full moving run for the digest section, optionally streamed into
/// `tele`. Telemetry is observational, so the digest must not change.
fn digest_run(
    g: &Graph,
    algo: &Algorithm1,
    spec: MotionSpec,
    engine: EngineMode,
    budget: u64,
    tele: &Telemetry,
) -> Result<u64, MobError> {
    let mut config =
        ResumableConfig::new(0xD16E).with_max_rounds(budget).with_motion(spec).with_engine(engine);
    if tele.is_enabled() {
        config = config.with_telemetry(tele.clone());
    }
    let mut run = ResumableRun::new(g, algo, config)?;
    run.run_to_completion();
    match run.outcome() {
        Some(outcome) => Ok(outcome_digest(&outcome)),
        None => Err(MobError::Unfinished),
    }
}

/// Runs the experiment and returns the printed report.
pub fn run(quick: bool) -> String {
    run_with(quick, &Telemetry::disabled())
}

/// Telemetry-aware driver: the scalar leg of the digest section streams
/// into `tele` when enabled (round events plus `motion` markers); the
/// digests must agree with the un-streamed legs regardless.
pub fn run_with(quick: bool, tele: &Telemetry) -> String {
    let n = if quick { 48 } else { 256 };
    let seeds: u64 = if quick { 3 } else { 10 };
    let budget: u64 = if quick { 4_000 } else { 30_000 };
    let comm_radius = radius_for_expected_degree(n, 6.0);
    let points_seed = crate::common::graph_seed(0);
    let mut out =
        crate::common::header("MOB", "stabilization and containment under sustained motion");
    let _ = writeln!(
        out,
        "workload: n={n} uniform deployment (points seed {points_seed:#x}, radius {comm_radius:.4} \
         ≈ expected degree 6), {seeds} seeds, budget {budget} rounds; \"stabilized\" means the \
         configuration is a valid MIS on the *current* graph"
    );

    // Section 1: stabilization vs speed, both models, no adversary.
    out.push_str("\n## time to instantaneous validity vs motion speed (Algorithm 1)\n\n");
    let mut table = analysis::Table::new(["model", "speed", "stabilized", "mean round", "radius"]);
    let mut warnings = String::new();
    for speed in speeds() {
        for model in models(speed) {
            let spec = MotionSpec::new(points_seed, comm_radius, model);
            let g = spec.initial_graph(n);
            let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
            match measure_cell(&g, &algo, spec, &[], seeds, budget, RADIUS) {
                Ok(cell) => {
                    let [ok, mean, radius] = cell_row(&cell, seeds);
                    table.row([model.label().to_string(), format!("{speed}"), ok, mean, radius]);
                }
                Err(e) => {
                    let label = model.label();
                    let _ = writeln!(warnings, "warning: skipping ({label}, speed {speed}): {e}");
                }
            }
        }
    }
    out.push_str(&format!("{table}"));
    out.push_str(&warnings);

    // Section 2: containment while the adversary's neighborhood moves.
    out.push_str("\n## containment under motion (1 stuck beeper, random waypoint)\n\n");
    let mut table =
        analysis::Table::new(["speed", "contained", "mean round", "worst final radius"]);
    let mut warnings = String::new();
    for speed in speeds() {
        let spec = MotionSpec::new(
            points_seed,
            comm_radius,
            MotionModel::RandomWaypoint { speed, pause: 2 },
        );
        let g = spec.initial_graph(n);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let site = max_degree_node(&g);
        match measure_cell(&g, &algo, spec, &[site], seeds, budget, RADIUS) {
            Ok(cell) => {
                let [ok, mean, radius] = cell_row(&cell, seeds);
                table.row([format!("{speed}"), ok, mean, radius]);
            }
            Err(e) => {
                let _ = writeln!(warnings, "warning: skipping (containment, speed {speed}): {e}");
            }
        }
    }
    out.push_str(&format!("{table}"));
    out.push_str(&warnings);

    // Section 3: the PR's bit-identity acceptance criteria, asserted on
    // every run: scalar vs scatter vs frontier, and telemetry on vs off.
    out.push_str("\n## determinism digests (same seed, moving graph)\n\n");
    let spec = MotionSpec::new(
        points_seed,
        comm_radius,
        MotionModel::RandomWaypoint { speed: 0.02, pause: 2 },
    );
    let g = spec.initial_graph(n);
    let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
    let digest_budget = budget.min(2_000);
    let disabled = Telemetry::disabled();
    let digests = (|| -> Result<[u64; 4], MobError> {
        let scalar = digest_run(&g, &algo, spec, EngineMode::Scalar, digest_budget, tele)?;
        let scatter = digest_run(&g, &algo, spec, EngineMode::Scatter, digest_budget, &disabled)?;
        let frontier = digest_run(&g, &algo, spec, EngineMode::Frontier, digest_budget, &disabled)?;
        let streamed = {
            let mem = Telemetry::enabled(telemetry::Config::default());
            let (sink, _handle) = telemetry::MemorySink::new();
            mem.add_sink(Box::new(sink));
            digest_run(&g, &algo, spec, EngineMode::Scalar, digest_budget, &mem)?
        };
        Ok([scalar, scatter, frontier, streamed])
    })();
    match digests {
        Ok([scalar, scatter, frontier, streamed]) => {
            assert_eq!(scalar, scatter, "scalar and scatter engines diverged on the moving graph");
            assert_eq!(scalar, frontier, "frontier engine diverged on the moving graph");
            assert_eq!(scalar, streamed, "attaching telemetry changed a moving run");
            let _ = writeln!(out, "scalar engine:       digest={scalar:016x}");
            let _ = writeln!(out, "scatter engine:      digest={scatter:016x}");
            let _ = writeln!(out, "frontier engine:     digest={frontier:016x}");
            let _ = writeln!(out, "telemetry attached:  digest={streamed:016x}");
            out.push_str("all four digests identical — engine and telemetry transparency hold.\n");
        }
        Err(e) => {
            let _ = writeln!(out, "warning: skipping determinism digests: {e}");
        }
    }
    if tele.is_enabled() {
        out.push_str("\ntelemetry: scalar digest leg streamed (round events + motion markers).\n");
    }

    out.push_str(
        "\nexpected shape: speed 0 matches the static protocol; whether validity instants occur \
         under motion is governed by the aggregate edge-event rate (~ n*speed/radius) relative \
         to recovery time — small deployments reach delayed validity at slow speeds, while at \
         n=256 even the slowest nonzero speed keeps some edge event in flight and global \
         instantaneous validity never occurs; digests agree.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::{Config as TeleConfig, Event, MarkerKind, MemorySink};

    #[test]
    fn report_covers_all_sections() {
        let report = run(true);
        for section in [
            "time to instantaneous validity",
            "containment under motion",
            "determinism digests",
            "digests identical",
        ] {
            assert!(report.contains(section), "missing section {section}");
        }
        assert!(report.contains("rwp"));
        assert!(report.contains("drift"));
    }

    #[test]
    fn zero_speed_always_stabilizes() {
        // Speed 0 is the static protocol: every seed must reach validity.
        let comm_radius = radius_for_expected_degree(48, 6.0);
        let spec = MotionSpec::new(
            crate::common::graph_seed(0),
            comm_radius,
            MotionModel::RandomWaypoint { speed: 0.0, pause: 2 },
        );
        let g = spec.initial_graph(48);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let cell =
            measure_cell(&g, &algo, spec, &[], 3, 100_000, RADIUS).expect("static plans are valid");
        assert_eq!(cell.ok, 3);
        assert_eq!(cell.worst_radius, 0);
    }

    #[test]
    fn mismatched_deployment_is_an_error_not_a_panic() {
        // A graph that is not the spec's initial deployment must surface as
        // a typed plan error from the measurement helpers.
        let comm_radius = radius_for_expected_degree(32, 6.0);
        let spec = MotionSpec::new(
            crate::common::graph_seed(0),
            comm_radius,
            MotionModel::RandomWaypoint { speed: 0.01, pause: 2 },
        );
        let g = Graph::empty(32);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let err = digest_run(&g, &algo, spec, EngineMode::Scalar, 100, &Telemetry::disabled())
            .expect_err("an empty graph is not the spec's deployment");
        assert!(matches!(err, MobError::Plan(PlanError::Motion(_))), "got {err:?}");
        assert!(err.to_string().contains("invalid motion spec"));
        let err = measure_cell(&g, &algo, spec, &[], 1, 100, RADIUS)
            .expect_err("measure_cell must propagate the same error");
        assert!(matches!(err, MobError::Plan(PlanError::Motion(_))));
    }

    #[test]
    fn streamed_digest_leg_emits_motion_markers() {
        let comm_radius = radius_for_expected_degree(32, 6.0);
        let spec = MotionSpec::new(
            crate::common::graph_seed(0),
            comm_radius,
            MotionModel::RandomWaypoint { speed: 0.05, pause: 0 },
        );
        let g = spec.initial_graph(32);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let tele = Telemetry::enabled(TeleConfig::default());
        let (sink, handle) = MemorySink::new();
        tele.add_sink(Box::new(sink));
        let a = digest_run(&g, &algo, spec, EngineMode::Scalar, 300, &tele).unwrap();
        let b =
            digest_run(&g, &algo, spec, EngineMode::Scalar, 300, &Telemetry::disabled()).unwrap();
        assert_eq!(a, b, "telemetry must be observational");
        assert!(
            handle
                .events()
                .iter()
                .any(|e| matches!(e, Event::Marker(m) if m.kind == MarkerKind::Motion)),
            "a speed-0.05 run must emit motion markers"
        );
    }
}
