//! Experiment `ABL-HD` — the model ablation: why full duplex matters.
//!
//! The paper's model is the *full-duplex* beeping model ("with collision
//! detection"): a beeping node still hears its neighbors. Algorithm 1's
//! join rule — "I beeped and heard nothing, so my claim is uncontested" —
//! leans on exactly that capability. Under **half duplex** (transmitting
//! drowns out reception), a beeping vertex always hears silence, so *any*
//! beeping vertex immediately believes its claim succeeded; two adjacent
//! claimants both jump to `-ℓmax`, keep beeping at probability 1, never
//! hear each other, and the pair deadlocks forever.
//!
//! This experiment runs Algorithm 1 under both duplex modes and counts
//! stabilization successes and (for half duplex) the terminal deadlock
//! pattern — adjacent vertices frozen in the prominent region.

use beeping::sim::DuplexMode;
use beeping::Simulator;
use graphs::generators::GraphFamily;
use mis::observer::Snapshot;
use mis::runner::{initial_levels, RunConfig};
use mis::{Algorithm1, LmaxPolicy};

/// Result of one run under a duplex mode.
#[derive(Debug, Clone, Copy)]
pub struct DuplexOutcome {
    /// Did the run reach `S_t = V` within the budget?
    pub stabilized: bool,
    /// Rounds executed (stabilization round, or the full budget).
    pub rounds: u64,
    /// Pairs of adjacent prominent vertices in the final configuration —
    /// the half-duplex deadlock signature (always 0 in a legal state).
    pub adjacent_prominent_pairs: usize,
}

/// Runs Algorithm 1 on `g` under `mode`.
pub fn run_once(g: &graphs::Graph, mode: DuplexMode, seed: u64, budget: u64) -> DuplexOutcome {
    let algo = Algorithm1::new(g, LmaxPolicy::global_delta(g));
    let config = RunConfig::new(seed);
    let init = initial_levels(&algo, &config);
    let mut sim = Simulator::new(g, algo.clone(), init, seed).with_duplex(mode);
    let stabilized = sim.run_until(budget, |s| algo.is_stabilized(g, s.states())).is_some();
    let lmax = algo.policy().lmax_values().to_vec();
    let snap = Snapshot::new(g, &lmax, sim.states());
    let deadlocked =
        g.edges().filter(|&(u, v)| snap.is_prominent(u) && snap.is_prominent(v)).count();
    DuplexOutcome { stabilized, rounds: sim.round(), adjacent_prominent_pairs: deadlocked }
}

/// Runs the experiment and returns the printed report.
pub fn run(quick: bool) -> String {
    let (n, seeds, budget) = if quick { (64, 5, 20_000u64) } else { (512, 30, 100_000u64) };
    let family = GraphFamily::Gnp { avg_degree: 8.0 };
    let g = family.generate(n, 0xD0);
    let mut out = crate::common::header("ABL-HD", "Model ablation: full vs half duplex");
    out.push_str(&format!(
        "workload: {family}, n = {}; Algorithm 1, global-Δ policy, random init, budget {budget}\n\n",
        g.len()
    ));
    let mut table = analysis::Table::new([
        "duplex",
        "stabilized",
        "mean rounds (stabilized runs)",
        "mean adjacent-prominent pairs at end",
    ]);
    for mode in [DuplexMode::Full, DuplexMode::Half] {
        let mut ok = 0u32;
        let mut rounds = Vec::new();
        let mut deadlocks = 0usize;
        for seed in 0..seeds {
            let o = run_once(&g, mode, seed, budget);
            if o.stabilized {
                ok += 1;
                rounds.push(o.rounds);
            }
            deadlocks += o.adjacent_prominent_pairs;
        }
        table.row([
            format!("{mode:?}"),
            format!("{ok}/{seeds}"),
            if rounds.is_empty() {
                "—".into()
            } else {
                format!("{:.1}", analysis::Summary::of_counts(rounds).mean)
            },
            format!("{:.1}", deadlocks as f64 / seeds as f64),
        ]);
    }
    out.push_str(&table.to_string());
    out.push_str(
        "\nexpected shape: full duplex stabilizes always; half duplex essentially never \
         — runs end with adjacent vertices frozen in the prominent region (mutual blind \
         claims), demonstrating that the collision-detection capability is load-bearing.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_duplex_stabilizes_half_does_not() {
        let g = GraphFamily::Gnp { avg_degree: 8.0 }.generate(64, 1);
        let full = run_once(&g, DuplexMode::Full, 3, 100_000);
        assert!(full.stabilized);
        assert_eq!(full.adjacent_prominent_pairs, 0);
        let half = run_once(&g, DuplexMode::Half, 3, 20_000);
        assert!(!half.stabilized, "half duplex must deadlock on a dense-enough graph");
        assert!(
            half.adjacent_prominent_pairs > 0,
            "the deadlock signature (adjacent blind claimants) must be visible"
        );
    }

    #[test]
    fn report_covers_both_modes() {
        let report = run(true);
        assert!(report.contains("Full"));
        assert!(report.contains("Half"));
    }
}
