//! Experiment `C2.3` — Corollary 2.3.
//!
//! *Claim*: in the beeping model with **two channels**, with each vertex
//! knowing an upper bound on the maximum degree of its 1-hop neighborhood
//! (`deg₂`) and `ℓmax(v) = 2 log deg₂(v) + c1` (`c1 ≥ 15`), Algorithm 2
//! stabilizes within `O(log n)` rounds w.h.p.
//!
//! *Measurement*: same sweep as `T2.2` (including the heterogeneous
//! families) with Algorithm 2 + the deg₂ policy. Reproduced if the best
//! fit is `log n` everywhere — in particular on the heterogeneous families
//! where the single-channel own-degree variant pays its `log log n` factor.

use mis::{Algorithm2, LmaxPolicy};

use crate::common;

/// Runs the experiment and returns the printed report.
pub fn run(quick: bool) -> String {
    let mut out =
        common::header("C2.3", "Corollary 2.3: O(log n) with two channels + deg₂ knowledge");
    out.push_str(&format!(
        "policy: ℓmax(v) = 2⌈log₂ deg₂(v)⌉ + {}; two beeping channels; init: uniform random\n",
        mis::policy::C1_TWO_HOP
    ));
    let sizes = common::sweep_sizes(quick);
    let seeds = common::seed_count(quick);
    for family in crate::thm22::families() {
        let points = common::sweep(&family, &sizes, seeds, 1_000_000, |g| {
            Algorithm2::new(g, LmaxPolicy::two_hop_degree(g))
        });
        common::render_sweep(&mut out, &family, &points);
    }
    out.push_str("\nexpected shape: best fit `log n` on every family, including starcliq.\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::generators::GraphFamily;

    #[test]
    fn quick_run_produces_report() {
        let report = run(true);
        assert!(report.contains("C2.3"));
        assert!(report.contains("two beeping channels"));
    }

    #[test]
    fn growth_is_logarithmic_not_polynomial() {
        let sizes = vec![32, 512];
        let points =
            common::sweep(&GraphFamily::Gnp { avg_degree: 8.0 }, &sizes, 10, 1_000_000, |g| {
                Algorithm2::new(g, LmaxPolicy::two_hop_degree(g))
            });
        let ratio = points[1].summary.mean / points[0].summary.mean;
        assert!(ratio < 2.5, "T(512)/T(32) = {ratio:.2} suggests polynomial growth");
    }
}
