//! Experiment `NOISE` — stabilization under an unreliable network.
//!
//! *Claim under test*: the paper's model assumes a perfectly reliable
//! beeping channel. This experiment probes how far that assumption can be
//! relaxed before self-stabilization breaks: per-delivery beep loss,
//! spurious beeps, jammer nodes, and topology churn composed with channel
//! noise (see `DESIGN.md` "Fault & adversary model").
//!
//! *Measurements*:
//!
//! 1. **Beep-loss sweep** — stabilization time vs drop probability per
//!    graph family, with divergence counting and threshold detection (the
//!    lowest tested rate at which any seed exhausts its budget). The
//!    zero-noise column is asserted to match the noise-free runner
//!    bit-for-bit.
//! 2. **Spurious-beep sweep** — false positives instead of false
//!    negatives.
//! 3. **Jammers** — always-beeping and always-silent Byzantine radios.
//! 4. **Churn under noise** — a leave/join/edge-flip schedule on a noisy
//!    channel, with per-event re-stabilization times and MIS-validity
//!    violation counts from [`mis::recovery::run_noisy`].
//!
//! *Expected shape*: mild loss (p ≤ 0.05) stabilizes on every tested
//! family with a graceful slowdown; heavy loss diverges. Always-beep
//! jammers integrate into the MIS (their neighbors are silenced); an
//! always-silent jammer can leave itself uncovered — a dead radio cannot
//! claim membership, so divergence there is correct behavior, not a bug.
//! Every churn event re-stabilizes in finite time, and violations are
//! confined to the transients.

use std::fmt::Write as _;

use beeping::channel::{ChannelFault, JammerKind};
use beeping::churn::{ChurnAction, ChurnPlan};
use graphs::generators::GraphFamily;
use graphs::Graph;
use mis::recovery::{run_noisy, Disturbance, NoisyRunConfig};
use mis::runner::{RunConfig, StabilizationError};
use mis::{Algorithm1, LmaxPolicy};
use telemetry::Telemetry;

/// Why one noise cell could not be measured. One bad cell warns-and-skips
/// instead of aborting the whole sweep.
#[derive(Debug)]
pub enum NoiseError {
    /// The zero-noise acceptance baseline exhausted its round budget.
    Stabilization(StabilizationError),
    /// A run that claimed to stabilize carries no recovered initial
    /// segment — a recovery-subsystem inconsistency, not a workload fact.
    MissingRecovery {
        /// The seed the inconsistent run used.
        seed: u64,
    },
}

impl std::fmt::Display for NoiseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NoiseError::Stabilization(e) => write!(f, "{e}"),
            NoiseError::MissingRecovery { seed } => {
                write!(f, "stabilized run has no recovered initial segment (seed {seed})")
            }
        }
    }
}

impl std::error::Error for NoiseError {}

impl From<StabilizationError> for NoiseError {
    fn from(e: StabilizationError) -> NoiseError {
        NoiseError::Stabilization(e)
    }
}

/// The drop probabilities of the sweep (section 1).
pub fn drop_rates() -> Vec<f64> {
    vec![0.0, 0.01, 0.02, 0.05, 0.10, 0.20, 0.35]
}

/// The spurious-beep probabilities of the sweep (section 2).
pub fn spurious_rates() -> Vec<f64> {
    vec![0.001, 0.01, 0.05]
}

/// The graph families of the sweep.
pub fn families() -> Vec<GraphFamily> {
    vec![
        GraphFamily::Geometric { avg_degree: 8.0 },
        GraphFamily::Gnp { avg_degree: 8.0 },
        GraphFamily::Cycle,
    ]
}

fn label(d: &Disturbance) -> String {
    match d {
        Disturbance::Initial => "initial".into(),
        Disturbance::TransientFault { corrupted } => format!("fault x{corrupted}"),
        Disturbance::Churn(ChurnAction::AddEdge(u, v)) => format!("+edge ({u},{v})"),
        Disturbance::Churn(ChurnAction::RemoveEdge(u, v)) => format!("-edge ({u},{v})"),
        Disturbance::Churn(ChurnAction::NodeLeave(v)) => format!("leave {v}"),
        Disturbance::Churn(ChurnAction::NodeJoin(v, _)) => format!("join {v}"),
    }
}

/// Initial-convergence statistics for one `(graph, channel)` cell.
struct Cell {
    rounds: Vec<u64>,
    diverged: usize,
}

fn measure_noisy(
    g: &Graph,
    algo: &Algorithm1,
    channel: &ChannelFault,
    seeds: u64,
    budget: u64,
    check_zero_noise: bool,
) -> Result<Cell, NoiseError> {
    let mut rounds = Vec::new();
    let mut diverged = 0;
    for seed in 0..seeds {
        let config =
            NoisyRunConfig::new(seed).with_max_rounds(budget).with_channel(channel.clone());
        let outcome = run_noisy(g, algo, &config);
        if outcome.stabilized {
            let stab = outcome.events[0]
                .outcome
                .recovered_rounds()
                .ok_or(NoiseError::MissingRecovery { seed })?;
            if check_zero_noise {
                // Acceptance check: the noise subsystem at zero noise is
                // bit-identical to the noise-free runner.
                let base = mis::runner::run(g, algo, RunConfig::new(seed).with_max_rounds(budget))?;
                assert_eq!(
                    stab, base.stabilization_round,
                    "zero-noise NOISE run diverged from the reliable runner (seed {seed})"
                );
            }
            rounds.push(stab);
        } else {
            diverged += 1;
        }
    }
    Ok(Cell { rounds, diverged })
}

/// Runs the experiment and returns the printed report.
pub fn run(quick: bool) -> String {
    run_with(quick, &Telemetry::disabled())
}

/// Telemetry-aware driver: the featured churn-under-noise composite (seed
/// 0, section 4) streams its round events plus churn/fault markers into
/// `tele` when enabled; the sweep sections are aggregate-only and stay
/// silent.
pub fn run_with(quick: bool, tele: &Telemetry) -> String {
    let n = if quick { 48 } else { 512 };
    let seeds = crate::common::seed_count(quick);
    let budget: u64 = if quick { 10_000 } else { 500_000 };
    let mut out = crate::common::header("NOISE", "Unreliable network: noise, jammers, churn");
    out.push_str(&format!(
        "workload: n={n}, {seeds} seeds, budget {budget} rounds; Algorithm 1, global-Δ policy\n"
    ));

    // Section 1: beep-loss sweep with threshold detection.
    out.push_str("\n## beep-loss sweep (false negatives)\n\n");
    let mut table = analysis::Table::new(["family", "drop p", "mean", "p95", "diverged"]);
    for (i, family) in families().iter().enumerate() {
        let g = family.generate(n, crate::common::graph_seed(i));
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let mut threshold: Option<f64> = None;
        for &p in &drop_rates() {
            let channel = ChannelFault::reliable().with_drop(p);
            let cell = match measure_noisy(&g, &algo, &channel, seeds, budget, p == 0.0) {
                Ok(cell) => cell,
                Err(e) => {
                    let _ = writeln!(out, "warning: skipping {family} drop p={p:.3}: {e}");
                    continue;
                }
            };
            if cell.diverged > 0 && threshold.is_none() {
                threshold = Some(p);
            }
            let (mean, p95) = if cell.rounds.is_empty() {
                ("-".to_string(), "-".to_string())
            } else {
                let s = analysis::Summary::of_counts(cell.rounds.iter().copied());
                (format!("{:.1}", s.mean), format!("{:.0}", s.p95))
            };
            table.row([
                family.to_string(),
                format!("{p:.3}"),
                mean,
                p95,
                format!("{}/{seeds}", cell.diverged),
            ]);
        }
        out.push_str(&match threshold {
            Some(p) => format!("threshold[{family}]: first divergence at drop p = {p:.3}\n"),
            None => format!("threshold[{family}]: no divergence at any tested rate\n"),
        });
    }
    out.push_str(&format!("\n{table}"));

    // Section 2: spurious beeps.
    out.push_str("\n## spurious-beep sweep (false positives)\n\n");
    let mut table = analysis::Table::new(["family", "spurious p", "mean", "p95", "diverged"]);
    for (i, family) in families().iter().enumerate() {
        let g = family.generate(n, crate::common::graph_seed(i));
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        for &p in &spurious_rates() {
            let channel = ChannelFault::reliable().with_spurious(p);
            let cell = match measure_noisy(&g, &algo, &channel, seeds, budget, false) {
                Ok(cell) => cell,
                Err(e) => {
                    let _ = writeln!(out, "warning: skipping {family} spurious p={p:.3}: {e}");
                    continue;
                }
            };
            let (mean, p95) = if cell.rounds.is_empty() {
                ("-".to_string(), "-".to_string())
            } else {
                let s = analysis::Summary::of_counts(cell.rounds.iter().copied());
                (format!("{:.1}", s.mean), format!("{:.0}", s.p95))
            };
            table.row([
                family.to_string(),
                format!("{p:.3}"),
                mean,
                p95,
                format!("{}/{seeds}", cell.diverged),
            ]);
        }
    }
    out.push_str(&format!("{table}"));

    // Section 3: jammers.
    out.push_str("\n## jammer nodes (Byzantine radios)\n\n");
    let mut table =
        analysis::Table::new(["kind", "jammers", "stabilized", "mean", "jammer in MIS"]);
    let family = GraphFamily::Geometric { avg_degree: 8.0 };
    let g = family.generate(n, crate::common::graph_seed(0));
    let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
    for kind in [JammerKind::AlwaysBeep, JammerKind::AlwaysSilent] {
        for k in [1usize, 4] {
            let mut channel = ChannelFault::reliable();
            for v in 0..k {
                channel = channel.with_jammer(v, kind);
            }
            let mut rounds = Vec::new();
            let mut stabilized = 0;
            let mut jammer_in_mis = 0usize;
            for seed in 0..seeds {
                let config = NoisyRunConfig::new(seed)
                    .with_max_rounds(budget.min(50_000))
                    .with_channel(channel.clone());
                let outcome = run_noisy(&g, &algo, &config);
                if outcome.stabilized {
                    // A stabilized run without a recovered segment is a
                    // recovery-subsystem inconsistency; drop the sample
                    // with a warning instead of aborting the sweep.
                    match outcome.events[0].outcome.recovered_rounds() {
                        Some(r) => {
                            stabilized += 1;
                            rounds.push(r);
                            jammer_in_mis += usize::from(outcome.mis[..k].iter().all(|&m| m));
                        }
                        None => {
                            let _ = writeln!(
                                out,
                                "warning: dropping {kind:?} x{k} seed {seed}: stabilized run \
                                 has no recovered initial segment"
                            );
                        }
                    }
                }
            }
            let mean = if rounds.is_empty() {
                "-".to_string()
            } else {
                format!("{:.1}", analysis::Summary::of_counts(rounds.iter().copied()).mean)
            };
            table.row([
                format!("{kind:?}"),
                k.to_string(),
                format!("{stabilized}/{seeds}"),
                mean,
                format!("{jammer_in_mis}/{stabilized}"),
            ]);
        }
    }
    out.push_str(&format!("{table}"));

    // Section 4: churn under noise, per-event recovery.
    out.push_str("\n## topology churn on a noisy channel (drop p = 0.02)\n\n");
    let plan = match churn_plan(&g) {
        Some(plan) => plan,
        None => {
            let _ = writeln!(
                out,
                "warning: skipping churn composite: workload graph has no edge avoiding node 1"
            );
            return out;
        }
    };
    let channel = ChannelFault::reliable().with_drop(0.02);
    let n_events = plan.events().len() + 1;
    let mut recoveries: Vec<Vec<u64>> = vec![Vec::new(); n_events];
    let mut violations: Vec<Vec<u64>> = vec![Vec::new(); n_events];
    let mut labels: Vec<String> = vec![String::new(); n_events];
    let mut interrupted = 0usize;
    for seed in 0..seeds {
        let mut config = NoisyRunConfig::new(seed)
            .with_max_rounds(budget)
            .with_churn(plan.clone())
            .with_channel(channel.clone());
        if seed == 0 {
            // Featured run: stream round events and churn/fault markers.
            // Telemetry is observational — attaching it cannot change the
            // outcome (enforced by the bit-identity tests in crates/mis).
            config = config.with_telemetry(tele.clone());
        }
        let outcome = run_noisy(&g, &algo, &config);
        assert!(outcome.stabilized, "churn composite must re-stabilize (seed {seed})");
        for (i, event) in outcome.events.iter().enumerate() {
            labels[i] = label(&event.disturbance);
            match event.outcome.recovered_rounds() {
                Some(r) => recoveries[i].push(r),
                None => interrupted += 1,
            }
            violations[i].push(event.violation_rounds);
        }
    }
    let mut table =
        analysis::Table::new(["event", "recovery mean", "recovery max", "violation rounds"]);
    for i in 0..n_events {
        let (mean, max) = if recoveries[i].is_empty() {
            ("-".to_string(), "-".to_string())
        } else {
            let r = analysis::Summary::of_counts(recoveries[i].iter().copied());
            (format!("{:.1}", r.mean), format!("{:.0}", r.max))
        };
        let v = analysis::Summary::of_counts(violations[i].iter().copied());
        table.row([labels[i].clone(), mean, max, format!("{:.1}", v.mean)]);
    }
    out.push_str(&format!("{table}"));
    out.push_str(&format!(
        "\nevents interrupted before re-stabilizing: {interrupted}\n\
         expected shape: p ≤ 0.05 loss stabilizes everywhere with graceful slowdown; heavy \
         loss diverges; always-beep jammers join the MIS; every churn event re-stabilizes \
         in finite time with violations confined to transients.\n"
    ));
    if tele.is_enabled() {
        out.push_str(
            "\ntelemetry: seed-0 churn composite streamed (round events + churn/fault \
             markers).\n",
        );
    }
    out
}

/// The composite churn schedule: node 1 departs and rejoins with its
/// original edges, then one edge is flipped out and back. Events are spaced
/// far enough apart that each segment can re-stabilize. Returns `None` when
/// the graph has no edge avoiding node 1 (a degenerate workload the
/// schedule cannot be built on).
pub fn churn_plan(g: &Graph) -> Option<ChurnPlan> {
    let rejoin: Vec<usize> = g.neighbors(1).iter().map(|&u| u as usize).collect();
    let (eu, ev) = g.edges().find(|&(u, v)| u != 1 && v != 1)?;
    Some(
        ChurnPlan::new()
            .with_event(2_000, ChurnAction::NodeLeave(1))
            .with_event(4_000, ChurnAction::NodeJoin(1, rejoin))
            .with_event(6_000, ChurnAction::RemoveEdge(eu, ev))
            .with_event(8_000, ChurnAction::AddEdge(eu, ev)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use beeping::faults::{FaultPlan, FaultTarget};
    use mis::runner::run_recovery;

    #[test]
    fn report_covers_all_sections() {
        let report = run(true);
        for section in ["beep-loss sweep", "spurious-beep", "jammer nodes", "topology churn"] {
            assert!(report.contains(section), "missing section {section}");
        }
        assert!(report.contains("threshold["));
    }

    #[test]
    fn mild_loss_stabilizes_on_all_families() {
        // Acceptance criterion (b): p ≤ 0.05 beep loss still stabilizes on
        // every tested family.
        for (i, family) in families().iter().enumerate() {
            let g = family.generate(48, crate::common::graph_seed(i));
            let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
            let channel = ChannelFault::reliable().with_drop(0.05);
            let cell = measure_noisy(&g, &algo, &channel, 5, 200_000, false).expect("measurable");
            assert_eq!(cell.diverged, 0, "family {family} diverged at p=0.05");
            assert!(!cell.rounds.is_empty());
        }
    }

    #[test]
    fn zero_noise_recovery_matches_ss_r() {
        // Acceptance criterion (a): with the channel reliable, per-event
        // recovery equals the SS-R measurement exactly.
        let g = GraphFamily::Geometric { avg_degree: 8.0 }.generate(64, 1);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        for seed in 0..3u64 {
            let target = FaultTarget::RandomFraction(0.5);
            let rec = run_recovery(&g, &algo, seed, target.clone(), 1_000_000).unwrap();
            let config = NoisyRunConfig::new(seed)
                .with_max_rounds(1_000_000)
                .with_faults(FaultPlan::new().with_fault(rec.initial_stabilization, target));
            let noisy = run_noisy(&g, &algo, &config);
            assert_eq!(
                noisy.events[1].outcome.recovered_rounds(),
                Some(rec.recovery_rounds),
                "seed {seed}"
            );
            assert_eq!(noisy.mis, rec.mis, "seed {seed}");
        }
    }

    #[test]
    fn featured_churn_run_streams_markers_without_changing_outcome() {
        use telemetry::{Config as TeleConfig, Event, MarkerKind, MemorySink};
        let g =
            GraphFamily::Geometric { avg_degree: 8.0 }.generate(48, crate::common::graph_seed(0));
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let base = NoisyRunConfig::new(0)
            .with_max_rounds(200_000)
            .with_churn(churn_plan(&g).expect("workload graph supports the churn schedule"))
            .with_channel(ChannelFault::reliable().with_drop(0.02));
        let plain = run_noisy(&g, &algo, &base);
        let tele = Telemetry::enabled(TeleConfig::default());
        let (sink, handle) = MemorySink::new();
        tele.add_sink(Box::new(sink));
        let streamed = run_noisy(&g, &algo, &base.clone().with_telemetry(tele.clone()));
        // Observational: attaching telemetry must not perturb the run.
        assert_eq!(plain.mis, streamed.mis);
        assert_eq!(plain.stabilized, streamed.stabilized);
        let events = handle.events();
        let churn_markers = events
            .iter()
            .filter(|e| matches!(e, Event::Marker(m) if m.kind == MarkerKind::Churn))
            .count();
        assert_eq!(churn_markers, 4, "one marker per scheduled churn event");
        assert!(!handle.rounds().is_empty());
    }

    #[test]
    fn churn_events_all_recover() {
        // Acceptance criterion (c): finite re-stabilization after every
        // scheduled event.
        let g = GraphFamily::Geometric { avg_degree: 8.0 }.generate(48, 2);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let config = NoisyRunConfig::new(0)
            .with_max_rounds(200_000)
            .with_churn(churn_plan(&g).expect("workload graph supports the churn schedule"))
            .with_channel(ChannelFault::reliable().with_drop(0.02));
        let outcome = run_noisy(&g, &algo, &config);
        assert!(outcome.stabilized);
        assert!(outcome.all_recovered(), "{:?}", outcome.events);
        assert_eq!(outcome.events.len(), 5);
    }
}
