//! Experiment `EXT-2STATE` — the constant-state alternative \[16\].
//!
//! The paper cites Giakkoupis & Ziccardi's constant-state self-stabilizing
//! beeping MIS as stabilizing "in poly-logarithmic rounds w.h.p., albeit
//! being efficient only for some graph families". This experiment measures
//! a faithful-in-spirit two-state protocol against Algorithm 1 across
//! families of increasing density and heterogeneity.
//!
//! Measured outcome (recorded in EXPERIMENTS.md): the two-state dynamics is
//! empirically *fast* on every family tested — typically 3–5× fewer
//! absolute rounds than Algorithm 1, whose cost is dominated by its
//! Θ(ℓmax) level ramp. The trade the paper's algorithm makes is therefore
//! about *guarantees*, not measured speed: Algorithm 1 carries a proven
//! O(log n) w.h.p. bound on **all** graphs, while constant-state protocols'
//! analyses cover only some families (and adversarial instances beyond
//! these sweeps may exist). The experiment quantifies the constant-factor
//! price of that proof.

use analysis::Summary;
use baselines::TwoStateMis;
use graphs::generators::GraphFamily;
use mis::runner::InitialLevels;
use mis::{Algorithm1, LmaxPolicy};

use crate::common;

/// Families of increasing difficulty for the constant-state protocol.
pub fn families() -> Vec<GraphFamily> {
    vec![
        GraphFamily::Cycle,
        GraphFamily::Gnp { avg_degree: 4.0 },
        GraphFamily::Gnp { avg_degree: 16.0 },
        GraphFamily::Gnp { avg_degree: 64.0 },
        GraphFamily::BarabasiAlbert { m: 8 },
        GraphFamily::Complete,
        GraphFamily::Star,
        GraphFamily::StarOfCliques { clique: 8 },
    ]
}

/// Runs the experiment and returns the printed report.
pub fn run(quick: bool) -> String {
    let (n, seeds, budget) = if quick { (96, 5, 200_000u64) } else { (1024, 30, 1_000_000u64) };
    let mut out = common::header(
        "EXT-2STATE",
        "Constant-state baseline [16] vs Algorithm 1 across densities",
    );
    out.push_str(&format!("n = {n}, {seeds} seeds, budget {budget} rounds, random init\n\n"));
    let mut table = analysis::Table::new([
        "family",
        "Δ",
        "2-state mean",
        "2-state p95",
        "fail",
        "Alg1 mean",
        "2state/Alg1",
    ]);
    for (i, family) in families().iter().enumerate() {
        let g = family.generate(n, common::graph_seed(i));
        let two_state = TwoStateMis::new();
        let mut rounds = Vec::new();
        let mut failures = 0usize;
        for seed in 0..seeds {
            match two_state.run_random_init(&g, seed, budget) {
                Some((mis, r)) => {
                    assert!(graphs::mis::is_maximal_independent_set(&g, &mis));
                    rounds.push(r);
                }
                None => failures += 1,
            }
        }
        let reference = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let sr = common::measure(&g, &reference, seeds, InitialLevels::Random, budget).summary();
        let (mean_str, p95_str, ratio_str) = if rounds.is_empty() {
            ("—".to_string(), "—".to_string(), "—".to_string())
        } else {
            let sa = Summary::of_counts(rounds);
            (
                format!("{:.1}", sa.mean),
                format!("{:.0}", sa.p95),
                format!("{:.2}×", sa.mean / sr.mean),
            )
        };
        table.row([
            family.name(),
            g.max_degree().to_string(),
            mean_str,
            p95_str,
            failures.to_string(),
            format!("{:.1}", sr.mean),
            ratio_str,
        ]);
    }
    out.push_str(&table.to_string());
    out.push_str(
        "\nmeasured shape: the constant-state dynamics is consistently fast (often faster \
         than Algorithm 1, whose absolute cost is dominated by the Θ(ℓmax) ramp) — the \
         level ladder buys proven all-graph O(log n) guarantees rather than raw speed \
         on these families.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_all_families() {
        let report = run(true);
        assert!(report.contains("EXT-2STATE"));
        assert!(report.contains("cycle"));
        assert!(report.contains("2state/Alg1"));
    }

    #[test]
    fn two_state_competitive_on_cycles() {
        let g = GraphFamily::Cycle.generate(96, 0);
        let two_state = TwoStateMis::new();
        for seed in 0..3 {
            let (mis, rounds) = two_state.run_random_init(&g, seed, 1_000_000).expect("stabilizes");
            assert!(graphs::mis::is_maximal_independent_set(&g, &mis));
            assert!(rounds < 10_000, "cycles should be easy, took {rounds}");
        }
    }
}
