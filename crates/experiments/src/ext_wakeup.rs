//! Experiment `EXT-WAKE` — adversarial wake-up schedules.
//!
//! Afek et al.'s polynomial *lower bound* for self-stabilizing beeping MIS
//! holds in a model with adversary-chosen wake-up slots; the paper notes
//! (§1) that this bound "is not applicable in the setting of this paper".
//! The flip side, measured here: a self-stabilizing algorithm absorbs
//! wake-up adversity for free, because a sleeping node is just a node whose
//! state is pinned at an arbitrary value — stabilization counted from the
//! **last wake-up** behaves exactly like stabilization from an arbitrary
//! configuration.
//!
//! Schedules tested: everyone awake (control), uniformly random wake times
//! over a window `W`, a sequential wave (node `v` wakes at round
//! `⌊v·W/n⌋` — the adversary drip-feeds the network), and a "late
//! straggler" (all awake except one node that sleeps through everyone
//! else's stabilization).

use analysis::Summary;
use beeping::sleep::{Sleepy, SleepyState};
use beeping::Simulator;
use graphs::generators::GraphFamily;
use graphs::Graph;
use mis::levels::Level;
use mis::runner::{initial_levels, RunConfig, SelfStabilizingMis};
use mis::{Algorithm1, LmaxPolicy};
use rand::Rng;

/// A wake-up schedule: per-node sleep durations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeSchedule {
    /// Everyone participates from round one (control).
    AllAwake,
    /// Wake times uniform in `[0, window]`.
    RandomWindow(u64),
    /// Node `v` wakes at `v * window / n` — a sequential wave.
    Wave(u64),
    /// All awake except node 0, which sleeps `window` rounds.
    LateStraggler(u64),
}

impl WakeSchedule {
    /// Display label.
    pub fn label(&self) -> String {
        match self {
            WakeSchedule::AllAwake => "all awake".into(),
            WakeSchedule::RandomWindow(w) => format!("random in [0,{w}]"),
            WakeSchedule::Wave(w) => format!("wave over {w}"),
            WakeSchedule::LateStraggler(w) => format!("straggler +{w}"),
        }
    }

    /// The per-node sleep durations for an `n`-node network.
    pub fn sleeps(&self, n: usize, seed: u64) -> Vec<u64> {
        let mut rng = beeping::rng::aux_rng(seed, 0x3A1E);
        match *self {
            WakeSchedule::AllAwake => vec![0; n],
            WakeSchedule::RandomWindow(w) => (0..n).map(|_| rng.gen_range(0..=w)).collect(),
            WakeSchedule::Wave(w) => {
                (0..n).map(|v| (v as u64).saturating_mul(w) / n.max(1) as u64).collect()
            }
            WakeSchedule::LateStraggler(w) => {
                let mut sleeps = vec![0; n];
                if n > 0 {
                    sleeps[0] = w;
                }
                sleeps
            }
        }
    }
}

/// Runs Algorithm 1 under `schedule`; returns
/// `(stabilization_round_from_last_wake, total_rounds)`.
pub fn measure_wakeup(
    g: &Graph,
    schedule: WakeSchedule,
    seed: u64,
    max_rounds: u64,
) -> Option<(u64, u64)> {
    let algo = Algorithm1::new(g, LmaxPolicy::global_delta(g));
    let config = RunConfig::new(seed);
    let inner_levels: Vec<Level> = initial_levels(&algo, &config);
    let sleeps = schedule.sleeps(g.len(), seed);
    let last_wake = sleeps.iter().copied().max().unwrap_or(0);
    let init: Vec<SleepyState<Level>> =
        sleeps.iter().zip(&inner_levels).map(|(&s, &l)| SleepyState::new(s, l)).collect();
    let wrapped = Sleepy::new(algo.clone());
    let mut sim = Simulator::new(g, wrapped, init, seed);
    let stabilized = sim.run_until(max_rounds, |s| {
        s.states().iter().all(SleepyState::is_awake) && {
            let levels: Vec<Level> = s.states().iter().map(|st| st.inner).collect();
            algo.stabilized(g, &levels)
        }
    })?;
    let levels: Vec<Level> = sim.states().iter().map(|st| st.inner).collect();
    assert!(graphs::mis::is_maximal_independent_set(g, &algo.mis_of(g, &levels)));
    Some((stabilized.saturating_sub(last_wake), stabilized))
}

/// Runs the experiment and returns the printed report.
pub fn run(quick: bool) -> String {
    let (n, seeds) = if quick { (96, 5) } else { (1024, 30) };
    let family = GraphFamily::Gnp { avg_degree: 8.0 };
    let g = family.generate(n, 0x3A);
    let window = 10 * n as u64; // far longer than stabilization itself
    let mut out = common_header(n, &family, window);
    let mut table = analysis::Table::new([
        "wake schedule",
        "stab. after last wake (mean)",
        "p95",
        "total rounds (mean)",
    ]);
    for schedule in [
        WakeSchedule::AllAwake,
        WakeSchedule::RandomWindow(window),
        WakeSchedule::Wave(window),
        WakeSchedule::LateStraggler(window),
    ] {
        let mut from_wake = Vec::new();
        let mut total = Vec::new();
        let mut exhausted = false;
        for seed in 0..seeds {
            match measure_wakeup(&g, schedule, seed, 10_000_000) {
                Some((fw, t)) => {
                    from_wake.push(fw);
                    total.push(t);
                }
                None => {
                    out.push_str(&format!(
                        "warning: skipping {}: seed {seed} did not stabilize within budget\n",
                        schedule.label()
                    ));
                    exhausted = true;
                    break;
                }
            }
        }
        if exhausted {
            continue;
        }
        let sf = Summary::of_counts(from_wake);
        let st = Summary::of_counts(total);
        table.row([
            schedule.label(),
            format!("{:.1}", sf.mean),
            format!("{:.0}", sf.p95),
            format!("{:.1}", st.mean),
        ]);
    }
    out.push_str(&table.to_string());
    out.push_str(
        "\nexpected shape: stabilization counted from the last wake-up is flat across \
         schedules (≈ the all-awake control, and strictly cheaper for the straggler, \
         which wakes into an almost-stable network) — the adversary gains nothing, \
         which is why Afek et al.'s wake-up lower bound does not constrain this paper.\n",
    );
    out
}

fn common_header(n: usize, family: &GraphFamily, window: u64) -> String {
    let mut out = crate::common::header("EXT-WAKE", "Adversarial wake-up schedules");
    out.push_str(&format!(
        "workload: {family}, n = {n}; Algorithm 1, global-Δ policy; wake window {window} rounds\n\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_produce_expected_sleeps() {
        assert_eq!(WakeSchedule::AllAwake.sleeps(3, 0), vec![0, 0, 0]);
        let wave = WakeSchedule::Wave(30).sleeps(3, 0);
        assert_eq!(wave, vec![0, 10, 20]);
        let straggler = WakeSchedule::LateStraggler(99).sleeps(3, 0);
        assert_eq!(straggler, vec![99, 0, 0]);
        let random = WakeSchedule::RandomWindow(10).sleeps(100, 1);
        assert!(random.iter().all(|&s| s <= 10));
    }

    #[test]
    fn stabilizes_under_every_schedule() {
        let g = GraphFamily::Gnp { avg_degree: 8.0 }.generate(64, 1);
        for schedule in [
            WakeSchedule::AllAwake,
            WakeSchedule::RandomWindow(300),
            WakeSchedule::Wave(300),
            WakeSchedule::LateStraggler(300),
        ] {
            let (from_wake, total) =
                measure_wakeup(&g, schedule, 3, 10_000_000).expect("stabilizes");
            assert!(total >= from_wake);
        }
    }

    #[test]
    fn straggler_recovers_fast() {
        // Waking into an almost-stable network is the easy case.
        let g = GraphFamily::Gnp { avg_degree: 8.0 }.generate(128, 2);
        let mut straggler_sum = 0u64;
        let mut control_sum = 0u64;
        for seed in 0..5 {
            straggler_sum +=
                measure_wakeup(&g, WakeSchedule::LateStraggler(2_000), seed, 10_000_000).unwrap().0;
            control_sum += measure_wakeup(&g, WakeSchedule::AllAwake, seed, 10_000_000).unwrap().0;
        }
        assert!(straggler_sum < control_sum, "straggler {straggler_sum} vs control {control_sum}");
    }

    #[test]
    fn report_lists_schedules() {
        let report = run(true);
        for needle in ["all awake", "random in", "wave over", "straggler"] {
            assert!(report.contains(needle), "missing {needle}");
        }
    }
}
