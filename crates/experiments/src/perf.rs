//! Experiment `PERF` — round-engine throughput baseline (scalar vs scatter).
//!
//! *Claim under test*: the scatter delivery engine (collect the round's
//! beepers, push their signals to neighbors, word-packed "heard" bitsets,
//! fused no-fault fast path) is a pure performance refactor — bit-identical
//! to the scalar reference per seed, and ≥ 2× faster in rounds/sec on
//! sparse families at large n in the no-fault configuration.
//!
//! *Measurements*: for each graph family (cycle, 4-regular, G(n,p)) and
//! size, run Algorithm 1 to stabilization once, then time both engines over
//! the same steady-state workload (the sustained regime: MIS members beep
//! every round, everyone else listens). A differential check steps both
//! engines side by side from the same configuration and asserts identical
//! round reports and states before any timing is trusted.
//!
//! *Artifacts*: the report table, plus `results/BENCH_PERF.json` (one entry
//! per `(family, n)` with rounds/sec for both engines and the speedup) when
//! a `results/` directory exists. The committed root-level `BENCH_PERF.json`
//! baseline is replaced only by a *full* (non-`--quick`) run, and the run
//! warns when its git provenance is dirty or unknown.
//!
//! *Expected shape*: speedup grows with n and is largest on sparse families
//! (cycle, regular), where per-round bookkeeping — not edge scanning —
//! dominates the scalar engine; the acceptance bound is ≥ 2× at the largest
//! size on cycle and regular graphs.

use std::fmt::Write as _;

use beeping::{EngineMode, Simulator};
use graphs::generators::GraphFamily;
use graphs::Graph;
use mis::levels::Level;
use mis::runner::{self, RunConfig, StabilizationError};
use mis::{Algorithm1, LmaxPolicy};
use telemetry::Stopwatch;

/// The graph families of the throughput table, sparse first.
pub fn families() -> Vec<GraphFamily> {
    vec![GraphFamily::Cycle, GraphFamily::Regular { d: 4 }, GraphFamily::Gnp { avg_degree: 8.0 }]
}

/// Network sizes: powers of two up to 2^16 (2^12 under `--quick`).
pub fn sizes(quick: bool) -> Vec<usize> {
    if quick {
        vec![1 << 10, 1 << 12]
    } else {
        vec![1 << 12, 1 << 14, 1 << 16]
    }
}

/// One `(family, n)` measurement.
pub struct PerfPoint {
    /// Family label.
    pub family: String,
    /// Network size.
    pub n: usize,
    /// Edge count of the generated instance.
    pub m: usize,
    /// Timed rounds per engine.
    pub rounds: u64,
    /// Scalar-engine throughput, rounds/sec.
    pub scalar_rps: f64,
    /// Scatter-engine throughput, rounds/sec.
    pub scatter_rps: f64,
}

impl PerfPoint {
    /// Scatter speedup over scalar.
    pub fn speedup(&self) -> f64 {
        self.scatter_rps / self.scalar_rps.max(1e-9)
    }
}

/// A stabilized (steady-state) configuration for the timing workload: MIS
/// members beep every round, everyone else listens. Errors (instead of
/// panicking) when the workload run exhausts its budget.
fn steady_state_levels(
    g: &Graph,
    algo: &Algorithm1,
    seed: u64,
) -> Result<Vec<Level>, StabilizationError> {
    let config = RunConfig::new(seed).with_max_rounds(1_000_000);
    Ok(runner::run(g, algo, config)?.levels)
}

fn rounds_per_sec(
    g: &Graph,
    algo: &Algorithm1,
    levels: &[Level],
    seed: u64,
    engine: EngineMode,
    rounds: u64,
) -> f64 {
    let mut sim = Simulator::new(g, algo.clone(), levels.to_vec(), seed).with_engine(engine);
    let watch = Stopwatch::start();
    sim.run(rounds);
    let secs = watch.elapsed_secs().max(1e-9);
    std::hint::black_box(sim.states());
    rounds as f64 / secs
}

/// Steps both engines side by side and asserts bit-identical round reports,
/// states and signals — the differential gate run before any timing.
///
/// # Panics
///
/// Panics on the first diverging round.
pub fn assert_engines_identical(
    g: &Graph,
    algo: &Algorithm1,
    levels: &[Level],
    seed: u64,
    rounds: u64,
) {
    let mut scalar =
        Simulator::new(g, algo.clone(), levels.to_vec(), seed).with_engine(EngineMode::Scalar);
    let mut scatter =
        Simulator::new(g, algo.clone(), levels.to_vec(), seed).with_engine(EngineMode::Scatter);
    for round in 1..=rounds {
        let a = scalar.step();
        let b = scatter.step();
        assert_eq!(a, b, "round report diverged at round {round} (n={})", g.len());
        assert_eq!(scalar.states(), scatter.states(), "states diverged at round {round}");
        assert_eq!(scalar.last_heard(), scatter.last_heard(), "signals diverged at round {round}");
    }
}

/// Measures one `(family, n)` point: stabilize, differential-check, then
/// time both engines on the steady-state workload. Errors when the workload
/// run fails to stabilize within its budget.
pub fn measure_point(
    family: &GraphFamily,
    n: usize,
    seed: u64,
    quick: bool,
) -> Result<PerfPoint, StabilizationError> {
    let g = family.generate(n, crate::common::graph_seed(0));
    let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
    let levels = steady_state_levels(&g, &algo, seed)?;
    assert_engines_identical(&g, &algo, &levels, seed, 8);
    // Node-rounds budget per engine, so every size gets comparable wall
    // time; floors keep the smallest quick sizes from under-sampling.
    let budget: u64 = if quick { 1 << 21 } else { 1 << 25 };
    let rounds = (budget / n as u64).max(16);
    let scalar_rps = rounds_per_sec(&g, &algo, &levels, seed, EngineMode::Scalar, rounds);
    let scatter_rps = rounds_per_sec(&g, &algo, &levels, seed, EngineMode::Scatter, rounds);
    Ok(PerfPoint {
        family: family.to_string(),
        n,
        m: g.num_edges(),
        rounds,
        scalar_rps,
        scatter_rps,
    })
}

/// The current `git describe` of the working tree, for provenance in the
/// committed baseline; `"unknown"` when git (or the repository) is
/// unavailable.
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// Whether a baseline written with this provenance string deserves a
/// warning: `git describe --dirty` appends `-dirty` to describe a tree
/// with uncommitted changes, and `"unknown"` means git was unavailable —
/// either way the recorded numbers cannot be traced back to a commit.
pub fn untraceable_provenance(git: &str) -> bool {
    git == "unknown" || git.ends_with("-dirty")
}

/// Renders the measured points as the committed JSON artifact (fixed field
/// order; throughput values are wall-clock measurements and vary run to
/// run, so the file is a baseline record, not a determinism artifact).
pub fn bench_json(points: &[PerfPoint], quick: bool, git: &str) -> String {
    let mut out = String::from("{\n  \"experiment\": \"PERF\",\n");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"git\": \"{}\",", telemetry::jsonl::escape(git));
    let _ = writeln!(out, "  \"unit\": \"rounds_per_sec\",");
    out.push_str("  \"entries\": [\n");
    for (i, p) in points.iter().enumerate() {
        let sep = if i + 1 == points.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"family\": \"{}\", \"n\": {}, \"m\": {}, \"rounds\": {}, \
             \"scalar_rps\": {:.1}, \"scatter_rps\": {:.1}, \"speedup\": {:.2}}}{sep}",
            p.family,
            p.n,
            p.m,
            p.rounds,
            p.scalar_rps,
            p.scatter_rps,
            p.speedup()
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Runs the experiment and returns the printed report.
pub fn run(quick: bool) -> String {
    let seed = 0x9E2F;
    let mut out = crate::common::header("PERF", "round-engine throughput: scalar vs scatter");
    let _ = writeln!(
        out,
        "workload: Algorithm 1 (global-Δ) steady state; both engines timed on the same \
         configuration after an 8-round differential check; per-engine budget {} node-rounds",
        if quick { 1u64 << 21 } else { 1 << 25 }
    );

    let mut points = Vec::new();
    let mut table = analysis::Table::new([
        "family",
        "n",
        "m",
        "rounds",
        "scalar r/s",
        "scatter r/s",
        "speedup",
    ]);
    for family in families() {
        for &n in &sizes(quick) {
            match measure_point(&family, n, seed, quick) {
                Ok(p) => {
                    table.row([
                        p.family.clone(),
                        p.n.to_string(),
                        p.m.to_string(),
                        p.rounds.to_string(),
                        format!("{:.0}", p.scalar_rps),
                        format!("{:.0}", p.scatter_rps),
                        format!("{:.2}x", p.speedup()),
                    ]);
                    points.push(p);
                }
                Err(e) => {
                    let _ = writeln!(out, "warning: skipping ({family}, n={n}): {e}");
                }
            }
        }
    }
    out.push_str("\n## throughput (higher is better)\n\n");
    out.push_str(&format!("{table}"));

    let git = git_describe();
    let json = bench_json(&points, quick, &git);
    out.push_str("\nbench baseline:\n");
    out.push_str(&json);
    // Written whenever the standard output directory exists (the CI smoke
    // and full runs pass `--out results`); plain `cargo test` runs from the
    // crate directory, which has no results/, and never rewrites the
    // committed baselines. The root-level copy is the canonical committed
    // baseline: only a *full* run may replace it (a quick run's truncated
    // budget would masquerade as the reference numbers), and a run from a
    // dirty or unknown tree gets a provenance warning — its numbers cannot
    // be traced back to a commit.
    let results = std::path::Path::new("results");
    if results.is_dir() {
        if let Err(e) = std::fs::write(results.join("BENCH_PERF.json"), &json) {
            let _ = writeln!(out, "warning: cannot write results/BENCH_PERF.json: {e}");
        } else {
            out.push_str("\nbaseline written to results/BENCH_PERF.json\n");
        }
        if quick {
            out.push_str("quick run: committed baseline BENCH_PERF.json left untouched\n");
        } else {
            if untraceable_provenance(&git) {
                let _ = writeln!(
                    out,
                    "warning: baseline provenance is \"{git}\" (dirty or unknown tree); \
                     re-run from a clean commit before committing BENCH_PERF.json"
                );
            }
            let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .ancestors()
                .nth(2)
                .expect("workspace root exists")
                .join("BENCH_PERF.json");
            if let Err(e) = std::fs::write(&root, &json) {
                let _ = writeln!(out, "warning: cannot write {}: {e}", root.display());
            } else {
                let _ = writeln!(out, "baseline written to {}", root.display());
            }
        }
    }
    out.push_str(
        "\nexpected shape: speedup grows with n and is largest on the sparse families; \
         acceptance is >= 2x on cycle and regular at the largest size (full run).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_all_sections() {
        let report = run(true);
        for section in ["throughput", "bench baseline:", "\"experiment\": \"PERF\""] {
            assert!(report.contains(section), "missing section {section}");
        }
        assert!(report.contains("cycle"));
        assert!(report.contains("speedup"));
    }

    #[test]
    fn engines_identical_on_steady_state() {
        let family = GraphFamily::Gnp { avg_degree: 8.0 };
        let g = family.generate(96, 3);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let levels = steady_state_levels(&g, &algo, 5).expect("stabilizes");
        assert_engines_identical(&g, &algo, &levels, 5, 32);
    }

    #[test]
    fn json_is_well_formed() {
        let points = vec![PerfPoint {
            family: "cycle".into(),
            n: 64,
            m: 64,
            rounds: 100,
            scalar_rps: 1000.0,
            scatter_rps: 2500.0,
        }];
        let json = bench_json(&points, true, "v1.2.3-4-gabcdef0");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"speedup\": 2.50"));
        assert!(json.contains("\"quick\": true"));
        assert!(json.contains("\"git\": \"v1.2.3-4-gabcdef0\""));
    }

    #[test]
    fn git_describe_never_empty() {
        assert!(!git_describe().is_empty());
    }

    #[test]
    fn dirty_and_unknown_provenance_flagged() {
        assert!(untraceable_provenance("unknown"));
        assert!(untraceable_provenance("70e2657-dirty"));
        assert!(untraceable_provenance("v1.2.3-4-gabcdef0-dirty"));
        assert!(!untraceable_provenance("70e2657"));
        assert!(!untraceable_provenance("v1.2.3-4-gabcdef0"));
    }

    #[test]
    fn workload_budget_exhaustion_propagates_as_error() {
        // A 1-round budget cannot stabilize a non-trivial instance; the
        // helper must return Err instead of panicking.
        let g = GraphFamily::Gnp { avg_degree: 8.0 }.generate(64, 3);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let config = RunConfig::new(5).with_max_rounds(1);
        assert!(runner::run(&g, &algo, config).is_err());
        // And measure_point surfaces a stabilization error rather than
        // aborting the whole experiment (exercised indirectly: the Ok path
        // is covered by report_covers_all_sections).
        let p = measure_point(&GraphFamily::Cycle, 64, 5, true);
        assert!(p.is_ok());
    }
}
