//! Experiment `PERF` — round-engine throughput baseline (scalar vs scatter
//! vs frontier).
//!
//! *Claims under test*: (1) the scatter delivery engine (collect the
//! round's beepers, push their signals to neighbors, word-packed "heard"
//! bitsets, fused no-fault fast path) is a pure performance refactor —
//! bit-identical to the scalar reference per seed, and ≥ 2× faster in
//! rounds/sec on sparse families at large n in the no-fault configuration;
//! (2) the frontier (event-driven) engine makes post-stabilization rounds
//! cost O(|frontier|) instead of O(n): on the post-stabilization +
//! point-fault workload it is ≥ 10× faster than scatter at the largest
//! size, while remaining bit-identical per seed.
//!
//! *Measurements*: for each graph family (cycle, 4-regular, G(n,p)), size,
//! and workload, run Algorithm 1 to stabilization once, then time all three
//! engines over the same workload. Workloads: **steady** (the sustained
//! regime: MIS members beep every round, everyone else listens) and
//! **post-stab-fault** (steady state with one MIS member's state knocked to
//! `lmax` every [`FAULT_PERIOD`] rounds — the self-stabilization regime the
//! frontier engine targets, where each fault dirties a neighborhood and the
//! rest of the network is settled). A differential check steps all four
//! engines (the three timed here plus the parallel scatter engine) side by
//! side — fault injections included — and asserts identical round reports
//! and states before any timing is trusted. Each engine's rate is the best
//! of [`TIMING_SEGMENTS`] contiguous timed windows over one uninterrupted
//! run, so a one-shot scheduler stall cannot masquerade as an engine
//! regression; the *work* claims behind the speedups are additionally
//! pinned by deterministic operation counters (`Simulator::work`), which
//! no wall clock can perturb.
//!
//! *Artifacts*: the report table, plus `results/BENCH_PERF.json` (one entry
//! per `(family, workload, n)` with rounds/sec for all three engines and
//! the speedups) when a `results/` directory exists. The committed
//! root-level `BENCH_PERF.json` baseline is replaced only by a *full*
//! (non-`--quick`) run, and the run warns when its git provenance is dirty
//! or unknown.
//!
//! *Expected shape*: scatter's speedup over scalar grows with n and is
//! largest on sparse families (cycle, regular), where per-round bookkeeping
//! — not edge scanning — dominates the scalar engine; acceptance is ≥ 2× at
//! the largest size on cycle and regular graphs. The frontier engine's
//! speedup over scatter is largest where the settled complement is largest:
//! on post-stab-fault the dirty set is one fault neighborhood, so the win
//! grows linearly with n; acceptance is ≥ 10× over scatter at n = 2^16
//! (full run).

use std::fmt::Write as _;

use beeping::{EngineMode, Simulator};
use graphs::generators::GraphFamily;
use graphs::Graph;
use mis::levels::Level;
use mis::runner::{self, RunConfig, StabilizationError};
use mis::{Algorithm1, LmaxPolicy};
use telemetry::Stopwatch;

/// The graph families of the throughput table, sparse first.
pub fn families() -> Vec<GraphFamily> {
    vec![GraphFamily::Cycle, GraphFamily::Regular { d: 4 }, GraphFamily::Gnp { avg_degree: 8.0 }]
}

/// Network sizes: powers of two up to 2^16 (2^12 under `--quick`).
pub fn sizes(quick: bool) -> Vec<usize> {
    if quick {
        vec![1 << 10, 1 << 12]
    } else {
        vec![1 << 12, 1 << 14, 1 << 16]
    }
}

/// Rounds between point-fault injections on the post-stabilization
/// workload: long enough for the dirtied neighborhood to re-settle, short
/// enough that every timed window contains faults.
pub const FAULT_PERIOD: u64 = 64;

/// The timed regime of one measurement row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Sustained stabilized execution: no disturbances, every node
    /// re-certifies its settled round forever.
    Steady,
    /// Post-stabilization + point fault: stabilized execution with one MIS
    /// member's state knocked to `lmax` every [`FAULT_PERIOD`] rounds. The
    /// event-driven regime the frontier engine targets — each fault dirties
    /// one neighborhood while the rest of the network stays settled.
    PointFault,
}

impl Workload {
    /// Both workloads, in report order.
    pub fn all() -> [Workload; 2] {
        [Workload::Steady, Workload::PointFault]
    }

    /// The row/JSON label.
    pub fn label(&self) -> &'static str {
        match self {
            Workload::Steady => "steady",
            Workload::PointFault => "post-stab-fault",
        }
    }
}

/// One `(family, workload, n)` measurement.
pub struct PerfPoint {
    /// Family label.
    pub family: String,
    /// Workload label (see [`Workload::label`]).
    pub workload: String,
    /// Network size.
    pub n: usize,
    /// Edge count of the generated instance.
    pub m: usize,
    /// Timed rounds per engine.
    pub rounds: u64,
    /// Scalar-engine throughput, rounds/sec.
    pub scalar_rps: f64,
    /// Scatter-engine throughput, rounds/sec.
    pub scatter_rps: f64,
    /// Frontier-engine throughput, rounds/sec.
    pub frontier_rps: f64,
}

impl PerfPoint {
    /// Scatter speedup over scalar.
    pub fn scatter_speedup(&self) -> f64 {
        self.scatter_rps / self.scalar_rps.max(1e-9)
    }

    /// Frontier speedup over scatter — the frontier engine's acceptance
    /// metric is measured against the fastest full-sweep engine, not the
    /// scalar reference.
    pub fn frontier_speedup(&self) -> f64 {
        self.frontier_rps / self.scatter_rps.max(1e-9)
    }
}

/// A stabilized (steady-state) configuration for the timing workload: MIS
/// members beep every round, everyone else listens. Errors (instead of
/// panicking) when the workload run exhausts its budget.
fn steady_state_levels(
    g: &Graph,
    algo: &Algorithm1,
    seed: u64,
) -> Result<Vec<Level>, StabilizationError> {
    let config = RunConfig::new(seed).with_max_rounds(1_000_000);
    Ok(runner::run(g, algo, config)?.levels)
}

/// The point-fault rotation for a workload: on the steady workload it is
/// empty; on post-stab-fault it holds `(victim, lmax)` for every MIS
/// member of the stabilized configuration, in node order, so successive
/// faults hit different neighborhoods.
fn fault_schedule(
    g: &Graph,
    algo: &Algorithm1,
    levels: &[Level],
    workload: Workload,
) -> Vec<(usize, Level)> {
    match workload {
        Workload::Steady => Vec::new(),
        Workload::PointFault => {
            let members = algo.mis_members(g, levels);
            (0..g.len()).filter(|&v| members[v]).map(|v| (v, algo.lmax(v))).collect()
        }
    }
}

/// Applies the deterministic fault schedule for round `r` (0-based, i.e.
/// *before* stepping round `r + 1`): on every [`FAULT_PERIOD`]-th round the
/// next victim's state is knocked to its `lmax`. `corrupt_state` draws no
/// randomness, so injecting the same schedule into every engine preserves
/// bit-identity.
fn inject_fault(
    sim: &mut Simulator<'_, Algorithm1>,
    r: u64,
    faults: &[(usize, Level)],
    next: &mut usize,
) {
    if r.is_multiple_of(FAULT_PERIOD) && !faults.is_empty() {
        let (v, lmax) = faults[*next % faults.len()];
        *next += 1;
        sim.corrupt_state(v, lmax);
    }
}

/// Contiguous timed windows per engine measurement; the reported rate is
/// the **best** window. One run of each engine is a single sample on a
/// shared machine: a scheduler stall landing inside it silently taxes that
/// engine alone (the committed-baseline 0.89 scatter row on
/// (cycle, post-stab-fault, n=4096) was exactly such an artifact — the
/// deterministic work counters prove scatter does strictly less edge work
/// there; see `scatter_does_no_more_edge_work_than_scalar`). Max-of-four
/// windows discards one-shot stalls while keeping the budget unchanged.
pub const TIMING_SEGMENTS: u64 = 4;

fn rounds_per_sec(
    g: &Graph,
    algo: &Algorithm1,
    levels: &[Level],
    seed: u64,
    engine: EngineMode,
    rounds: u64,
    faults: &[(usize, Level)],
) -> f64 {
    let mut sim = Simulator::new(g, algo.clone(), levels.to_vec(), seed).with_engine(engine);
    // One simulator across all segments: the workload — round index, fault
    // rotation, RNG streams — runs on uninterrupted; only the timing is
    // windowed.
    let mut next = 0usize;
    let mut r = 0u64;
    let segment = (rounds / TIMING_SEGMENTS).max(1);
    let mut best = 0.0f64;
    while r < rounds {
        let len = segment.min(rounds - r);
        let watch = Stopwatch::start();
        for _ in 0..len {
            if !faults.is_empty() {
                inject_fault(&mut sim, r, faults, &mut next);
            }
            sim.step();
            r += 1;
        }
        let secs = watch.elapsed_secs().max(1e-9);
        best = best.max(len as f64 / secs);
    }
    std::hint::black_box(sim.states());
    best
}

/// Steps all four engines (scalar, scatter, frontier, 2-thread parallel
/// scatter) side by side — fault injections included, when `faults` is
/// non-empty — and asserts bit-identical round reports, states and
/// signals: the differential gate run before any timing.
///
/// # Panics
///
/// Panics on the first diverging round.
pub fn assert_engines_identical(
    g: &Graph,
    algo: &Algorithm1,
    levels: &[Level],
    seed: u64,
    rounds: u64,
    faults: &[(usize, Level)],
) {
    let engines = [
        EngineMode::Scalar,
        EngineMode::Scatter,
        EngineMode::Frontier,
        EngineMode::ParScatter { threads: 2 },
    ];
    let mut sims = engines
        .map(|engine| Simulator::new(g, algo.clone(), levels.to_vec(), seed).with_engine(engine));
    let mut next = [0usize; 4];
    for round in 1..=rounds {
        for (sim, next) in sims.iter_mut().zip(next.iter_mut()) {
            inject_fault(sim, round - 1, faults, next);
        }
        let reports = [sims[0].step(), sims[1].step(), sims[2].step(), sims[3].step()];
        let [scalar, rest @ ..] = &sims;
        for ((&report, other), engine) in reports[1..].iter().zip(rest).zip(&engines[1..]) {
            assert_eq!(
                reports[0],
                report,
                "{engine:?} round report diverged at round {round} (n={})",
                g.len()
            );
            assert_eq!(
                scalar.states(),
                other.states(),
                "{engine:?} states diverged at round {round}"
            );
            assert_eq!(
                scalar.last_heard(),
                other.last_heard(),
                "{engine:?} signals diverged at round {round}"
            );
        }
    }
}

/// Measures one `(family, workload, n)` point: stabilize,
/// differential-check, then time all three engines on the same workload.
/// Errors when the stabilizing run exhausts its budget.
pub fn measure_point(
    family: &GraphFamily,
    n: usize,
    seed: u64,
    quick: bool,
    workload: Workload,
) -> Result<PerfPoint, StabilizationError> {
    let g = family.generate(n, crate::common::graph_seed(0));
    let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
    let levels = steady_state_levels(&g, &algo, seed)?;
    let faults = fault_schedule(&g, &algo, &levels, workload);
    assert_engines_identical(&g, &algo, &levels, seed, 8, &faults);
    // Node-rounds budget per engine, so every size gets comparable wall
    // time; floors keep the smallest quick sizes from under-sampling.
    let budget: u64 = if quick { 1 << 21 } else { 1 << 25 };
    let rounds = (budget / n as u64).max(16);
    let [scalar_rps, scatter_rps, frontier_rps] =
        [EngineMode::Scalar, EngineMode::Scatter, EngineMode::Frontier]
            .map(|engine| rounds_per_sec(&g, &algo, &levels, seed, engine, rounds, &faults));
    Ok(PerfPoint {
        family: family.to_string(),
        workload: workload.label().to_string(),
        n,
        m: g.num_edges(),
        rounds,
        scalar_rps,
        scatter_rps,
        frontier_rps,
    })
}

/// The current `git describe` of the working tree, for provenance in the
/// committed baseline; `"unknown"` when git (or the repository) is
/// unavailable.
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// Whether a baseline written with this provenance string deserves a
/// warning: `git describe --dirty` appends `-dirty` to describe a tree
/// with uncommitted changes, and `"unknown"` means git was unavailable —
/// either way the recorded numbers cannot be traced back to a commit.
pub fn untraceable_provenance(git: &str) -> bool {
    git == "unknown" || git.ends_with("-dirty")
}

/// Renders the measured points as the committed JSON artifact (fixed field
/// order; throughput values are wall-clock measurements and vary run to
/// run, so the file is a baseline record, not a determinism artifact).
pub fn bench_json(points: &[PerfPoint], quick: bool, git: &str) -> String {
    let mut out = String::from("{\n  \"experiment\": \"PERF\",\n");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"git\": \"{}\",", telemetry::jsonl::escape(git));
    let _ = writeln!(out, "  \"unit\": \"rounds_per_sec\",");
    out.push_str("  \"entries\": [\n");
    for (i, p) in points.iter().enumerate() {
        let sep = if i + 1 == points.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"family\": \"{}\", \"workload\": \"{}\", \"n\": {}, \"m\": {}, \
             \"rounds\": {}, \"scalar_rps\": {:.1}, \"scatter_rps\": {:.1}, \
             \"frontier_rps\": {:.1}, \"scatter_speedup\": {:.2}, \
             \"frontier_speedup\": {:.2}}}{sep}",
            p.family,
            p.workload,
            p.n,
            p.m,
            p.rounds,
            p.scalar_rps,
            p.scatter_rps,
            p.frontier_rps,
            p.scatter_speedup(),
            p.frontier_speedup()
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Runs the experiment and returns the printed report.
pub fn run(quick: bool) -> String {
    let seed = 0x9E2F;
    let mut out =
        crate::common::header("PERF", "round-engine throughput: scalar vs scatter vs frontier");
    let _ = writeln!(
        out,
        "workloads: Algorithm 1 (global-Δ) steady state, and post-stabilization + point fault \
         (one MIS member knocked to lmax every {FAULT_PERIOD} rounds); all three engines timed \
         on the same configuration after an 8-round differential check; per-engine budget {} \
         node-rounds",
        if quick { 1u64 << 21 } else { 1 << 25 }
    );

    let mut points = Vec::new();
    let mut table = analysis::Table::new([
        "family",
        "workload",
        "n",
        "m",
        "rounds",
        "scalar r/s",
        "scatter r/s",
        "frontier r/s",
        "scatter x",
        "frontier x",
    ]);
    for family in families() {
        for workload in Workload::all() {
            for &n in &sizes(quick) {
                match measure_point(&family, n, seed, quick, workload) {
                    Ok(p) => {
                        table.row([
                            p.family.clone(),
                            p.workload.clone(),
                            p.n.to_string(),
                            p.m.to_string(),
                            p.rounds.to_string(),
                            format!("{:.0}", p.scalar_rps),
                            format!("{:.0}", p.scatter_rps),
                            format!("{:.0}", p.frontier_rps),
                            format!("{:.2}x", p.scatter_speedup()),
                            format!("{:.2}x", p.frontier_speedup()),
                        ]);
                        points.push(p);
                    }
                    Err(e) => {
                        let label = workload.label();
                        let _ = writeln!(out, "warning: skipping ({family}, {label}, n={n}): {e}");
                    }
                }
            }
        }
    }
    out.push_str("\n## throughput (higher is better)\n\n");
    out.push_str(&format!("{table}"));

    let git = git_describe();
    let json = bench_json(&points, quick, &git);
    out.push_str("\nbench baseline:\n");
    out.push_str(&json);
    // Written whenever the standard output directory exists (the CI smoke
    // and full runs pass `--out results`); plain `cargo test` runs from the
    // crate directory, which has no results/, and never rewrites the
    // committed baselines. The root-level copy is the canonical committed
    // baseline: only a *full* run may replace it (a quick run's truncated
    // budget would masquerade as the reference numbers), and a run from a
    // dirty or unknown tree gets a provenance warning — its numbers cannot
    // be traced back to a commit.
    let results = std::path::Path::new("results");
    if results.is_dir() {
        if let Err(e) = std::fs::write(results.join("BENCH_PERF.json"), &json) {
            let _ = writeln!(out, "warning: cannot write results/BENCH_PERF.json: {e}");
        } else {
            out.push_str("\nbaseline written to results/BENCH_PERF.json\n");
        }
        if quick {
            out.push_str("quick run: committed baseline BENCH_PERF.json left untouched\n");
        } else {
            if untraceable_provenance(&git) {
                let _ = writeln!(
                    out,
                    "warning: baseline provenance is \"{git}\" (dirty or unknown tree); \
                     re-run from a clean commit before committing BENCH_PERF.json"
                );
            }
            let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .ancestors()
                .nth(2)
                .unwrap_or_else(|| std::path::Path::new("."))
                .join("BENCH_PERF.json");
            if let Err(e) = std::fs::write(&root, &json) {
                let _ = writeln!(out, "warning: cannot write {}: {e}", root.display());
            } else {
                let _ = writeln!(out, "baseline written to {}", root.display());
            }
        }
    }
    out.push_str(
        "\nexpected shape: scatter's speedup over scalar grows with n and is largest on the \
         sparse families (acceptance >= 2x on cycle and regular at the largest size, steady \
         workload, full run); the frontier engine's speedup over scatter grows linearly with n \
         on post-stab-fault, where the dirty set is one fault neighborhood (acceptance >= 10x \
         at n=65536, full run).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_all_sections() {
        let report = run(true);
        for section in ["throughput", "bench baseline:", "\"experiment\": \"PERF\""] {
            assert!(report.contains(section), "missing section {section}");
        }
        assert!(report.contains("cycle"));
        assert!(report.contains("steady"));
        assert!(report.contains("post-stab-fault"));
        assert!(report.contains("frontier"));
    }

    #[test]
    fn engines_identical_on_steady_state() {
        let family = GraphFamily::Gnp { avg_degree: 8.0 };
        let g = family.generate(96, 3);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let levels = steady_state_levels(&g, &algo, 5).expect("stabilizes");
        assert_engines_identical(&g, &algo, &levels, 5, 32, &[]);
    }

    #[test]
    fn engines_identical_under_point_faults() {
        // The differential gate must hold through fault injections: run
        // several fault periods so the gate covers inject → recover →
        // re-settle on all three engines.
        let family = GraphFamily::Regular { d: 4 };
        let g = family.generate(96, 3);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let levels = steady_state_levels(&g, &algo, 5).expect("stabilizes");
        let faults = fault_schedule(&g, &algo, &levels, Workload::PointFault);
        assert!(!faults.is_empty(), "a stabilized MIS has members");
        assert_engines_identical(&g, &algo, &levels, 5, 3 * FAULT_PERIOD, &faults);
    }

    /// The regression guard for the committed-baseline 0.89 scatter row on
    /// (cycle, post-stab-fault, n=4096). That row was a wall-clock sampling
    /// artifact — a one-shot stall inside scatter's single timed window on a
    /// shared box — not an engine regression, and this test pins the claim
    /// in a way no scheduler can perturb: over the exact workload of that
    /// row, the deterministic operation counters must show scatter doing
    /// *strictly less* edge work than scalar (it scans `deg(beeper)`
    /// adjacency entries per beeping channel, versus scalar's
    /// `deg(listener)` per hearing-capable listener — on a stabilized
    /// configuration only MIS members beep, and everyone listens), and the
    /// frontier engine doing no more node work than either full sweep.
    #[test]
    fn scatter_does_no_more_edge_work_than_scalar() {
        let g = GraphFamily::Cycle.generate(4096, crate::common::graph_seed(0));
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let levels = steady_state_levels(&g, &algo, 0x9E2F).expect("stabilizes");
        let faults = fault_schedule(&g, &algo, &levels, Workload::PointFault);
        assert!(!faults.is_empty(), "a stabilized MIS has members");

        let work = |engine: EngineMode| {
            let mut sim =
                Simulator::new(&g, algo.clone(), levels.clone(), 0x9E2F).with_engine(engine);
            let mut next = 0usize;
            for r in 0..3 * FAULT_PERIOD {
                inject_fault(&mut sim, r, &faults, &mut next);
                sim.step();
            }
            sim.work()
        };
        let scalar = work(EngineMode::Scalar);
        let scatter = work(EngineMode::Scatter);
        let frontier = work(EngineMode::Frontier);
        let par = work(EngineMode::ParScatter { threads: 2 });

        // Full-sweep engines execute every node every round; the frontier
        // engine may only ever execute fewer.
        assert_eq!(scalar.node_execs, scatter.node_execs);
        assert_eq!(scalar.node_execs, par.node_execs);
        assert!(frontier.node_execs <= scalar.node_execs, "{frontier:?} vs {scalar:?}");

        // The heart of the regression claim: scatter-family delivery
        // traverses strictly fewer adjacency entries than scalar gathering
        // on this workload, so any measured slowdown is measurement noise.
        assert!(
            scatter.edge_visits < scalar.edge_visits,
            "scatter must do strictly less edge work: {scatter:?} vs {scalar:?}"
        );
        // The parallel engine shards the same scatter sweep: identical work.
        assert_eq!(par.edge_visits, scatter.edge_visits);
        // And the frontier engine, settled outside fault neighborhoods,
        // does no more than the scatter sweep it specializes.
        assert!(frontier.edge_visits <= scatter.edge_visits, "{frontier:?} vs {scatter:?}");
    }

    #[test]
    fn json_is_well_formed() {
        let points = vec![PerfPoint {
            family: "cycle".into(),
            workload: "post-stab-fault".into(),
            n: 64,
            m: 64,
            rounds: 100,
            scalar_rps: 1000.0,
            scatter_rps: 2500.0,
            frontier_rps: 50000.0,
        }];
        let json = bench_json(&points, true, "v1.2.3-4-gabcdef0");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"workload\": \"post-stab-fault\""));
        assert!(json.contains("\"scatter_speedup\": 2.50"));
        assert!(json.contains("\"frontier_speedup\": 20.00"));
        assert!(json.contains("\"quick\": true"));
        assert!(json.contains("\"git\": \"v1.2.3-4-gabcdef0\""));
    }

    #[test]
    fn git_describe_never_empty() {
        assert!(!git_describe().is_empty());
    }

    #[test]
    fn dirty_and_unknown_provenance_flagged() {
        assert!(untraceable_provenance("unknown"));
        assert!(untraceable_provenance("70e2657-dirty"));
        assert!(untraceable_provenance("v1.2.3-4-gabcdef0-dirty"));
        assert!(!untraceable_provenance("70e2657"));
        assert!(!untraceable_provenance("v1.2.3-4-gabcdef0"));
    }

    #[test]
    fn workload_budget_exhaustion_propagates_as_error() {
        // A 1-round budget cannot stabilize a non-trivial instance; the
        // helper must return Err instead of panicking.
        let g = GraphFamily::Gnp { avg_degree: 8.0 }.generate(64, 3);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let config = RunConfig::new(5).with_max_rounds(1);
        assert!(runner::run(&g, &algo, config).is_err());
        // And measure_point surfaces a stabilization error rather than
        // aborting the whole experiment (exercised indirectly: the Ok path
        // is covered by report_covers_all_sections).
        let p = measure_point(&GraphFamily::Cycle, 64, 5, true, Workload::PointFault);
        assert!(p.is_ok());
    }
}
