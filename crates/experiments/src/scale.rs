//! Experiment `SCALE` — practicality at large n.
//!
//! Not a paper claim per se, but the adoption question a downstream user
//! asks: how do rounds, wall-clock time and beep (energy) cost behave on
//! realistic wireless-sized deployments? Runs Algorithm 1 on random
//! geometric graphs (the wireless-sensor abstraction the paper's intro
//! motivates) up to 10⁵ nodes.

use graphs::generators::GraphFamily;
use mis::runner::{InitialLevels, RunConfig};
use mis::{Algorithm1, LmaxPolicy};
use telemetry::Stopwatch;

/// One scalability data point.
#[derive(Debug, Clone, Copy)]
pub struct ScalePoint {
    /// Network size.
    pub n: usize,
    /// Edges.
    pub m: usize,
    /// Stabilization rounds.
    pub rounds: u64,
    /// Wall-clock seconds for the whole run (including stabilization
    /// detection each round).
    pub seconds: f64,
    /// Mean channel-1 beeps per node over the execution (energy proxy).
    pub beeps_per_node: f64,
    /// MIS size.
    pub mis_size: usize,
}

/// Measures one size.
pub fn measure_scale(n: usize, seed: u64) -> ScalePoint {
    let family = GraphFamily::Geometric { avg_degree: 8.0 };
    let g = family.generate(n, seed);
    let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
    let watch = Stopwatch::start();
    let outcome =
        algo.run(&g, RunConfig::new(seed).with_init(InitialLevels::Random)).expect("stabilizes");
    let seconds = watch.elapsed_secs();
    assert!(graphs::mis::is_maximal_independent_set(&g, &outcome.mis));
    ScalePoint {
        n: g.len(),
        m: g.num_edges(),
        rounds: outcome.stabilization_round,
        seconds,
        beeps_per_node: outcome.trace.total_beeps_channel1() as f64 / g.len() as f64,
        mis_size: outcome.mis.iter().filter(|&&x| x).count(),
    }
}

/// Runs the experiment and returns the printed report.
pub fn run(quick: bool) -> String {
    let sizes: Vec<usize> = if quick { vec![1_000, 2_000] } else { vec![10_000, 30_000, 100_000] };
    let mut out = crate::common::header("SCALE", "Scalability on random geometric graphs");
    out.push_str("Algorithm 1, global-Δ policy, adversarial random init, 1 seed per size\n\n");
    let mut table = analysis::Table::new([
        "n",
        "edges",
        "rounds",
        "wall (s)",
        "rounds/s",
        "beeps/node",
        "|MIS|",
    ]);
    for (i, &n) in sizes.iter().enumerate() {
        let p = measure_scale(n, crate::common::graph_seed(i));
        table.row([
            p.n.to_string(),
            p.m.to_string(),
            p.rounds.to_string(),
            format!("{:.2}", p.seconds),
            format!("{:.0}", p.rounds as f64 / p.seconds.max(1e-9)),
            format!("{:.1}", p.beeps_per_node),
            p.mis_size.to_string(),
        ]);
    }
    out.push_str(&table.to_string());
    out.push_str(
        "\nexpected shape: rounds stay logarithmic (tens, not thousands); beeps per node \
         stay O(rounds); wall time scales ~ n·rounds.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_point_is_consistent() {
        let p = measure_scale(500, 1);
        assert_eq!(p.n, 500);
        assert!(p.rounds > 0);
        assert!(p.mis_size > 0 && p.mis_size < 500);
        assert!(p.beeps_per_node > 0.0);
    }

    #[test]
    fn rounds_grow_slowly_with_n() {
        let small = measure_scale(250, 2);
        let large = measure_scale(2_000, 2);
        // 8× nodes must not cost anywhere near 8× rounds.
        assert!(
            (large.rounds as f64) < 4.0 * small.rounds as f64,
            "small={} large={}",
            small.rounds,
            large.rounds
        );
    }
}
