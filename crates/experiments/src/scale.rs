//! Experiment `SCALE` — practicality at large n, in two parts.
//!
//! **Part 1 — stabilization scalability.** The adoption question a
//! downstream user asks: how do rounds, wall-clock time and beep (energy)
//! cost behave on realistic wireless-sized deployments? Runs Algorithm 1 on
//! random geometric graphs (the wireless-sensor abstraction the paper's
//! intro motivates) up to 10⁵ nodes.
//!
//! **Part 2 — parallel sharded scatter throughput (ROADMAP item 1).** The
//! paper's O(log n · log ℓmax) stabilization bound only separates this
//! algorithm from its rivals at node counts far beyond the PERF ceiling of
//! 2^16, so this part pushes the round engines to n = 1M/4M/16M cycles and
//! measures **node-rounds per second** for the single-thread scatter
//! baseline and [`EngineMode::ParScatter`] at several thread counts. The
//! workload is the *synthetic stabilized start*: a greedy lexicographic MIS
//! with members at `-ℓmax` and everyone else at `+ℓmax` — a fixpoint of
//! Algorithm 1's update rules (members beep every round, the rest stay
//! silenced), so no multi-minute stabilization run is needed before timing
//! and every engine sweeps the same full workload every round.
//!
//! Determinism is asserted, not assumed: every engine configuration must
//! produce the **same FNV-1a digest** of the final level vector — at any
//! thread count — before its timing is reported. The committed artifact is
//! `BENCH_SCALE.json` (one entry per size with per-engine node-rounds/sec
//! and per-core rates); the ≥ 2× ParScatter acceptance gate applies only on
//! machines with ≥ 4 cores — on smaller hosts the digests still pin
//! bit-identity and the gate reports `skipped`.

use std::fmt::Write as _;

use beeping::{EngineMode, Simulator};
use graphs::generators::GraphFamily;
use graphs::Graph;
use mis::levels::Level;
use mis::runner::{InitialLevels, RunConfig, StabilizationError};
use mis::{Algorithm1, LmaxPolicy};
use telemetry::Stopwatch;

/// One scalability data point (part 1).
#[derive(Debug, Clone, Copy)]
pub struct ScalePoint {
    /// Network size.
    pub n: usize,
    /// Edges.
    pub m: usize,
    /// Stabilization rounds.
    pub rounds: u64,
    /// Wall-clock seconds for the whole run (including stabilization
    /// detection each round).
    pub seconds: f64,
    /// Mean channel-1 beeps per node over the execution (energy proxy).
    pub beeps_per_node: f64,
    /// MIS size.
    pub mis_size: usize,
}

/// Measures one size (part 1). Errors when the run exhausts its budget.
pub fn measure_scale(n: usize, seed: u64) -> Result<ScalePoint, StabilizationError> {
    let family = GraphFamily::Geometric { avg_degree: 8.0 };
    let g = family.generate(n, seed);
    let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
    let watch = Stopwatch::start();
    let outcome = algo.run(&g, RunConfig::new(seed).with_init(InitialLevels::Random))?;
    let seconds = watch.elapsed_secs();
    assert!(graphs::mis::is_maximal_independent_set(&g, &outcome.mis));
    Ok(ScalePoint {
        n: g.len(),
        m: g.num_edges(),
        rounds: outcome.stabilization_round,
        seconds,
        beeps_per_node: outcome.trace.total_beeps_channel1() as f64 / g.len() as f64,
        mis_size: outcome.mis.iter().filter(|&&x| x).count(),
    })
}

/// The synthetic stabilized start: a greedy lexicographic MIS (take `v`
/// unless a smaller neighbor was taken) with members at `-ℓmax(v)` and
/// everyone else at `+ℓmax(v)`.
///
/// This is a fixpoint of Algorithm 1: a member beeps with probability
/// `min(2^{ℓmax}, 1) = 1` every round, hears nothing (greedy independence
/// keeps member neighborhoods member-free) and resets to `-ℓmax`; a
/// non-member has a member neighbor (greedy maximality), hears its beep and
/// saturates at `+ℓmax`. So timing can start *here* instead of after a
/// multi-minute stabilization run, and every engine executes the identical
/// full sweep each round.
pub fn stabilized_levels(g: &Graph, algo: &Algorithm1) -> Vec<Level> {
    let mut member = vec![false; g.len()];
    for v in 0..g.len() {
        member[v] = g.neighbors(v).iter().all(|&u| (u as usize) >= v || !member[u as usize]);
    }
    (0..g.len()).map(|v| if member[v] { -algo.lmax(v) } else { algo.lmax(v) }).collect()
}

/// FNV-1a over a level vector: the cross-engine determinism fingerprint of
/// part 2 (little-endian level bytes, node order).
pub fn levels_digest(levels: &[Level]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &level in levels {
        for b in level.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// One engine configuration's measurement in a [`ParScalePoint`].
#[derive(Debug, Clone, Copy)]
pub struct EngineRate {
    /// Worker threads (1 for the sequential scatter baseline).
    pub threads: usize,
    /// Throughput in node-rounds per second (`n · rounds / seconds`).
    pub node_rounds_per_sec: f64,
}

impl EngineRate {
    /// Throughput normalized by worker count — the scaling-efficiency
    /// number the BENCH_SCALE baseline tracks.
    pub fn per_core(&self) -> f64 {
        self.node_rounds_per_sec / self.threads as f64
    }
}

/// One `(family, n)` measurement of part 2.
#[derive(Debug, Clone)]
pub struct ParScalePoint {
    /// Family label.
    pub family: String,
    /// Network size.
    pub n: usize,
    /// Edge count.
    pub m: usize,
    /// Timed rounds per engine configuration.
    pub rounds: u64,
    /// FNV-1a digest of the final levels — asserted identical for every
    /// engine configuration before any rate is reported.
    pub digest: u64,
    /// Sequential scatter baseline.
    pub scatter: EngineRate,
    /// ParScatter at each measured thread count, ascending.
    pub par: Vec<EngineRate>,
}

impl ParScalePoint {
    /// ParScatter speedup over the sequential scatter baseline at `threads`.
    pub fn par_speedup(&self, threads: usize) -> Option<f64> {
        let par = self.par.iter().find(|r| r.threads == threads)?;
        Some(par.node_rounds_per_sec / self.scatter.node_rounds_per_sec.max(1e-9))
    }
}

/// Part 2 sizes: 1M/4M/16M full, small under `--quick`.
pub fn par_sizes(quick: bool) -> Vec<usize> {
    if quick {
        vec![1 << 12, 1 << 14]
    } else {
        vec![1 << 20, 1 << 22, 1 << 24]
    }
}

/// Part 2 thread counts (the `--quick` CI smoke stays at 2 workers).
pub fn par_threads(quick: bool) -> Vec<usize> {
    if quick {
        vec![1, 2]
    } else {
        vec![1, 2, 4]
    }
}

fn timed_node_rounds(
    g: &Graph,
    algo: &Algorithm1,
    levels: &[Level],
    seed: u64,
    engine: EngineMode,
    rounds: u64,
) -> (f64, u64) {
    let mut sim = Simulator::new(g, algo.clone(), levels.to_vec(), seed).with_engine(engine);
    let watch = Stopwatch::start();
    sim.run(rounds);
    let secs = watch.elapsed_secs().max(1e-9);
    let digest = levels_digest(sim.states());
    ((g.len() as u64 * rounds) as f64 / secs, digest)
}

/// Measures one part-2 size: build the cycle, synthesize the stabilized
/// start, then time the sequential scatter baseline and ParScatter at every
/// thread count over the identical workload, asserting digest equality
/// across all configurations.
///
/// # Panics
///
/// Panics if the synthetic start is not a fixpoint, or if any engine
/// configuration produces a different final-levels digest — either would
/// invalidate every number in the artifact.
pub fn measure_par_point(n: usize, seed: u64, quick: bool) -> ParScalePoint {
    let family = GraphFamily::Cycle;
    let g = family.generate(n, crate::common::graph_seed(0));
    let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
    let levels = stabilized_levels(&g, &algo);
    assert!(algo.is_stabilized(&g, &levels), "synthetic start must be a fixpoint");
    // Node-rounds budget per engine configuration; the floor keeps the
    // largest sizes from under-sampling (16M nodes still get 8 rounds).
    let budget: u64 = if quick { 1 << 22 } else { 1 << 27 };
    let rounds = (budget / n as u64).max(8);

    let (scatter_rate, digest) =
        timed_node_rounds(&g, &algo, &levels, seed, EngineMode::Scatter, rounds);
    let mut par = Vec::new();
    for threads in par_threads(quick) {
        let (rate, par_digest) =
            timed_node_rounds(&g, &algo, &levels, seed, EngineMode::ParScatter { threads }, rounds);
        assert_eq!(
            par_digest, digest,
            "ParScatter({threads}) diverged from the scatter baseline at n={n}"
        );
        par.push(EngineRate { threads, node_rounds_per_sec: rate });
    }
    ParScalePoint {
        family: family.to_string(),
        n: g.len(),
        m: g.num_edges(),
        rounds,
        digest,
        scatter: EngineRate { threads: 1, node_rounds_per_sec: scatter_rate },
        par,
    }
}

/// The ≥ 2× ParScatter acceptance gate, evaluated at the smallest full
/// size (n = 2^20): `pass`/`fail` on hosts with ≥ 4 cores, `skipped(...)`
/// elsewhere (a 1-core container cannot show parallel speedup; digests
/// still pin bit-identity there).
pub fn gate_verdict(points: &[ParScalePoint], cores: usize) -> String {
    if cores < 4 {
        return format!("skipped({cores} cores < 4)");
    }
    let Some(p) = points.iter().find(|p| p.n == 1 << 20) else {
        return "skipped(no n=2^20 row)".to_string();
    };
    match p.par_speedup(4) {
        Some(s) if s >= 2.0 => format!("pass({s:.2}x)"),
        Some(s) => format!("fail({s:.2}x < 2x)"),
        None => "skipped(no 4-thread row)".to_string(),
    }
}

/// Renders part 2 as the committed `BENCH_SCALE.json` artifact (fixed field
/// order; rates are wall-clock measurements, digests are deterministic).
pub fn bench_json(points: &[ParScalePoint], quick: bool, git: &str, gate: &str) -> String {
    let mut out = String::from("{\n  \"experiment\": \"SCALE\",\n");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"git\": \"{}\",", telemetry::jsonl::escape(git));
    let _ = writeln!(out, "  \"unit\": \"node_rounds_per_sec\",");
    let _ = writeln!(out, "  \"gate\": \"{}\",", telemetry::jsonl::escape(gate));
    out.push_str("  \"entries\": [\n");
    for (i, p) in points.iter().enumerate() {
        let sep = if i + 1 == points.len() { "" } else { "," };
        let mut engines = format!(
            "{{\"engine\": \"scatter\", \"threads\": 1, \"nrps\": {:.0}, \"per_core\": {:.0}}}",
            p.scatter.node_rounds_per_sec,
            p.scatter.per_core()
        );
        for r in &p.par {
            let _ = write!(
                engines,
                ", {{\"engine\": \"par\", \"threads\": {}, \"nrps\": {:.0}, \
                 \"per_core\": {:.0}, \"speedup\": {:.2}}}",
                r.threads,
                r.node_rounds_per_sec,
                r.per_core(),
                p.par_speedup(r.threads).unwrap_or(0.0)
            );
        }
        let _ = writeln!(
            out,
            "    {{\"family\": \"{}\", \"n\": {}, \"m\": {}, \"rounds\": {}, \
             \"digest\": \"{:016x}\", \"engines\": [{engines}]}}{sep}",
            p.family, p.n, p.m, p.rounds, p.digest
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Runs the experiment and returns the printed report.
pub fn run(quick: bool) -> String {
    let sizes: Vec<usize> = if quick { vec![1_000, 2_000] } else { vec![10_000, 30_000, 100_000] };
    let mut out = crate::common::header("SCALE", "Scalability on random geometric graphs");
    out.push_str("Algorithm 1, global-Δ policy, adversarial random init, 1 seed per size\n\n");
    let mut table = analysis::Table::new([
        "n",
        "edges",
        "rounds",
        "wall (s)",
        "rounds/s",
        "beeps/node",
        "|MIS|",
    ]);
    for (i, &n) in sizes.iter().enumerate() {
        match measure_scale(n, crate::common::graph_seed(i)) {
            Ok(p) => {
                table.row([
                    p.n.to_string(),
                    p.m.to_string(),
                    p.rounds.to_string(),
                    format!("{:.2}", p.seconds),
                    format!("{:.0}", p.rounds as f64 / p.seconds.max(1e-9)),
                    format!("{:.1}", p.beeps_per_node),
                    p.mis_size.to_string(),
                ]);
            }
            Err(e) => {
                let _ = writeln!(out, "warning: skipping n={n}: {e}");
            }
        }
    }
    out.push_str(&table.to_string());
    out.push_str(
        "\nexpected shape: rounds stay logarithmic (tens, not thousands); beeps per node \
         stay O(rounds); wall time scales ~ n·rounds.\n",
    );

    // Part 2: parallel sharded scatter at 1M-16M (ROADMAP item 1).
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let _ = writeln!(
        out,
        "\n## parallel sharded scatter (cycle, synthetic stabilized start, {cores} cores)\n"
    );
    let mut par_table = analysis::Table::new([
        "n",
        "rounds",
        "digest",
        "scatter nr/s",
        "engine",
        "nr/s",
        "nr/s/core",
        "speedup",
    ]);
    let mut points = Vec::new();
    for &n in &par_sizes(quick) {
        let p = measure_par_point(n, 0x5CA1E, quick);
        for r in &p.par {
            par_table.row([
                p.n.to_string(),
                p.rounds.to_string(),
                format!("{:016x}", p.digest),
                format!("{:.0}", p.scatter.node_rounds_per_sec),
                format!("par({})", r.threads),
                format!("{:.0}", r.node_rounds_per_sec),
                format!("{:.0}", r.per_core()),
                format!("{:.2}x", p.par_speedup(r.threads).unwrap_or(0.0)),
            ]);
        }
        points.push(p);
    }
    out.push_str(&par_table.to_string());
    let gate = gate_verdict(&points, cores);
    let _ = writeln!(out, "\nacceptance gate (par(4) >= 2x scatter at n=2^20): {gate}");

    let git = crate::perf::git_describe();
    let json = bench_json(&points, quick, &git, &gate);
    out.push_str("\nbench baseline:\n");
    out.push_str(&json);
    // Mirrors the PERF artifact policy: results/ copy whenever the standard
    // output directory exists; the committed root-level BENCH_SCALE.json is
    // replaced only by a full run, with a provenance warning from a dirty
    // or unknown tree.
    let results = std::path::Path::new("results");
    if results.is_dir() {
        if let Err(e) = std::fs::write(results.join("BENCH_SCALE.json"), &json) {
            let _ = writeln!(out, "warning: cannot write results/BENCH_SCALE.json: {e}");
        } else {
            out.push_str("\nbaseline written to results/BENCH_SCALE.json\n");
        }
        if quick {
            out.push_str("quick run: committed baseline BENCH_SCALE.json left untouched\n");
        } else {
            if crate::perf::untraceable_provenance(&git) {
                let _ = writeln!(
                    out,
                    "warning: baseline provenance is \"{git}\" (dirty or unknown tree); \
                     re-run from a clean commit before committing BENCH_SCALE.json"
                );
            }
            match std::path::Path::new(env!("CARGO_MANIFEST_DIR")).ancestors().nth(2) {
                Some(root) => {
                    let root = root.join("BENCH_SCALE.json");
                    if let Err(e) = std::fs::write(&root, &json) {
                        let _ = writeln!(out, "warning: cannot write {}: {e}", root.display());
                    } else {
                        let _ = writeln!(out, "baseline written to {}", root.display());
                    }
                }
                None => out.push_str("warning: cannot locate workspace root\n"),
            }
        }
    }
    out.push_str(
        "\nexpected shape: scatter node-rounds/sec is flat in n (the full sweep is O(n + m) \
         per round); ParScatter matches it at 1 thread (sharding overhead within noise) and \
         scales with cores when they exist, with identical digests at every thread count.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_point_is_consistent() {
        let p = measure_scale(500, 1).expect("stabilizes");
        assert_eq!(p.n, 500);
        assert!(p.rounds > 0);
        assert!(p.mis_size > 0 && p.mis_size < 500);
        assert!(p.beeps_per_node > 0.0);
    }

    #[test]
    fn rounds_grow_slowly_with_n() {
        let small = measure_scale(250, 2).expect("stabilizes");
        let large = measure_scale(2_000, 2).expect("stabilizes");
        // 8× nodes must not cost anywhere near 8× rounds.
        assert!(
            (large.rounds as f64) < 4.0 * small.rounds as f64,
            "small={} large={}",
            small.rounds,
            large.rounds
        );
    }

    #[test]
    fn synthetic_start_is_a_fixpoint_across_families() {
        for family in [
            GraphFamily::Cycle,
            GraphFamily::Regular { d: 4 },
            GraphFamily::Gnp { avg_degree: 8.0 },
        ] {
            let g = family.generate(512, 7);
            let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
            let levels = stabilized_levels(&g, &algo);
            assert!(algo.is_stabilized(&g, &levels), "{family} synthetic start not stabilized");
            // And it really is a *fixpoint*: one round changes nothing.
            let mut sim = Simulator::new(&g, algo.clone(), levels.clone(), 3);
            sim.run(16);
            assert_eq!(sim.states(), &levels[..], "{family} levels drifted");
        }
    }

    #[test]
    fn par_point_digests_agree_and_rates_are_positive() {
        let p = measure_par_point(1 << 12, 9, true);
        assert_eq!(p.n, 1 << 12);
        assert!(p.scatter.node_rounds_per_sec > 0.0);
        assert_eq!(p.par.len(), par_threads(true).len());
        for r in &p.par {
            assert!(r.node_rounds_per_sec > 0.0);
            assert!(r.per_core() <= r.node_rounds_per_sec + 1e-9);
        }
    }

    #[test]
    fn digest_depends_on_levels() {
        assert_ne!(levels_digest(&[1, 2, 3]), levels_digest(&[1, 2, 4]));
        assert_ne!(levels_digest(&[]), levels_digest(&[0]));
        assert_eq!(levels_digest(&[-5, 5]), levels_digest(&[-5, 5]));
    }

    #[test]
    fn gate_skips_on_small_hosts_and_judges_on_big_ones() {
        let mk = |speed4: f64| ParScalePoint {
            family: "cycle".into(),
            n: 1 << 20,
            m: 1 << 20,
            rounds: 128,
            digest: 7,
            scatter: EngineRate { threads: 1, node_rounds_per_sec: 1e8 },
            par: vec![EngineRate { threads: 4, node_rounds_per_sec: speed4 * 1e8 }],
        };
        assert!(gate_verdict(&[mk(3.0)], 1).starts_with("skipped"));
        assert!(gate_verdict(&[mk(3.0)], 4).starts_with("pass"));
        assert!(gate_verdict(&[mk(1.2)], 4).starts_with("fail"));
        assert!(gate_verdict(&[], 8).starts_with("skipped"));
    }

    #[test]
    fn bench_json_is_well_formed() {
        let points = vec![ParScalePoint {
            family: "cycle".into(),
            n: 1 << 20,
            m: 1 << 20,
            rounds: 128,
            digest: 0xDEAD_BEEF,
            scatter: EngineRate { threads: 1, node_rounds_per_sec: 1.0e8 },
            par: vec![
                EngineRate { threads: 1, node_rounds_per_sec: 0.98e8 },
                EngineRate { threads: 4, node_rounds_per_sec: 3.1e8 },
            ],
        }];
        let json = bench_json(&points, false, "abc1234", "skipped(1 cores < 4)");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"digest\": \"00000000deadbeef\""));
        assert!(json.contains("\"unit\": \"node_rounds_per_sec\""));
        assert!(json.contains("\"speedup\": 3.10"));
        assert!(json.contains("\"gate\": \"skipped(1 cores < 4)\""));
    }
}
