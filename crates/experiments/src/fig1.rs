//! Experiment `F1` — Figure 1 of the paper.
//!
//! Figure 1 plots the beeping probability `p_t(v)` implied by the level
//! `ℓ_t(v)`: flat at 1 for `ℓ ≤ 0`, halving per step in `(0, ℓmax)`, and
//! exactly 0 at `ℓmax` ("like an activation function in an artificial
//! neural network", §2). This driver regenerates the figure as an exact
//! value table plus an ASCII rendering, and additionally verifies the
//! implementation empirically by frequency-counting actual transmissions.

use beeping::protocol::BeepingProtocol;
use beeping::rng::node_rng;
use mis::levels::beep_probability;
use mis::{Algorithm1, LmaxPolicy};

/// Runs the experiment and returns the printed report.
pub fn run(quick: bool) -> String {
    let lmax = 10;
    let trials: u32 = if quick { 2_000 } else { 100_000 };
    let mut out = crate::common::header("F1", "Figure 1: beeping probability vs level");
    out.push_str(&format!(
        "ℓmax = {lmax}; empirical frequency over {trials} transmit draws per level\n\n"
    ));

    let g = graphs::Graph::empty(1);
    let algo = Algorithm1::new(&g, LmaxPolicy::fixed(1, lmax));
    let mut table = analysis::Table::new(["ℓ", "p (exact)", "p (empirical)", "plot"]);
    for level in -lmax..=lmax {
        let exact = beep_probability(level, lmax);
        let mut rng = node_rng(level as u64 ^ 0xF1, 0);
        let hits = (0..trials).filter(|_| !algo.transmit(0, &level, &mut rng).is_silent()).count();
        let empirical = hits as f64 / trials as f64;
        let bar_len = (exact * 40.0).round() as usize;
        table.row([
            level.to_string(),
            format!("{exact:.6}"),
            format!("{empirical:.4}"),
            "█".repeat(bar_len),
        ]);
    }
    out.push_str(&table.to_string());
    out.push_str(
        "\nshape check: p = 1 on ℓ ≤ 0, halves per level step on (0, ℓmax), p = 0 at ℓmax.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_all_levels() {
        let report = run(true);
        for level in [-10, 0, 1, 5, 10] {
            assert!(
                report.lines().any(|l| l.trim_start().starts_with(&format!("{level} "))
                    || l.trim_start().starts_with(&format!("{level}  "))),
                "missing level {level} in report"
            );
        }
        assert!(report.contains("1.000000"));
        assert!(report.contains("0.000000"));
    }

    #[test]
    fn empirical_matches_exact() {
        // Re-run the measurement core with more trials and assert closeness.
        let lmax = 6;
        let g = graphs::Graph::empty(1);
        let algo = Algorithm1::new(&g, LmaxPolicy::fixed(1, lmax));
        for level in -lmax..=lmax {
            let exact = beep_probability(level, lmax);
            let mut rng = node_rng(7, 0);
            let trials = 20_000;
            let hits =
                (0..trials).filter(|_| !algo.transmit(0, &level, &mut rng).is_silent()).count();
            let freq = hits as f64 / trials as f64;
            assert!((freq - exact).abs() < 0.02, "ℓ={level}: empirical {freq} vs exact {exact}");
        }
    }
}
