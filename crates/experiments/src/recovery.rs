//! Experiment `SS-R` — self-stabilization as fault recovery.
//!
//! *Claim* (the definition of self-stabilization, §1.1): after a transient
//! fault corrupts any subset of node RAM, the system returns to a legal
//! state within the stabilization-time bound, counted from the fault.
//!
//! *Measurement*: run to stabilization, corrupt `{1 node, 10%, 50%, 100%}`
//! of the nodes with uniformly random levels, and measure the rounds back
//! to stabilization. Reproduced if (i) recovery always succeeds, (ii)
//! recovery time is of the same order as initial stabilization (both are
//! O(log n) events — history before the fault does not matter), and (iii)
//! small faults recover faster than full corruption.

use beeping::faults::FaultTarget;
use graphs::generators::GraphFamily;
use mis::runner::run_recovery;
use mis::{Algorithm1, LmaxPolicy};

/// The corruption targets of the sweep.
pub fn targets(n: usize) -> Vec<(&'static str, FaultTarget)> {
    vec![
        ("1 node", FaultTarget::RandomCount(1.min(n))),
        ("10%", FaultTarget::RandomFraction(0.10)),
        ("50%", FaultTarget::RandomFraction(0.50)),
        ("all", FaultTarget::All),
    ]
}

/// Runs the experiment and returns the printed report.
pub fn run(quick: bool) -> String {
    let sizes: Vec<usize> = if quick { vec![64] } else { vec![256, 1024, 4096] };
    let seeds = crate::common::seed_count(quick);
    let family = GraphFamily::Geometric { avg_degree: 8.0 };
    let mut out =
        crate::common::header("SS-R", "Self-stabilization: recovery from transient faults");
    out.push_str(&format!("workload: {family}; Algorithm 1 with global-Δ policy\n\n"));
    let mut table = analysis::Table::new([
        "n",
        "fault",
        "init stab (mean)",
        "recovery (mean)",
        "recovery p95",
        "recover/init",
    ]);
    for (i, &n) in sizes.iter().enumerate() {
        let g = family.generate(n, crate::common::graph_seed(i));
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        for (label, target) in targets(g.len()) {
            let mut initial = Vec::new();
            let mut recovery = Vec::new();
            let mut exhausted = false;
            for seed in 0..seeds {
                match run_recovery(&g, &algo, seed, target.clone(), 1_000_000) {
                    Ok(rec) => {
                        assert!(graphs::mis::is_maximal_independent_set(&g, &rec.mis));
                        initial.push(rec.initial_stabilization);
                        recovery.push(rec.recovery_rounds);
                    }
                    Err(e) => {
                        out.push_str(&format!("warning: skipping n={n} {label}: {e}\n"));
                        exhausted = true;
                        break;
                    }
                }
            }
            if exhausted {
                continue;
            }
            let si = analysis::Summary::of_counts(initial);
            let sr = analysis::Summary::of_counts(recovery);
            table.row([
                g.len().to_string(),
                label.to_string(),
                format!("{:.1}", si.mean),
                format!("{:.1}", sr.mean),
                format!("{:.0}", sr.p95),
                format!("{:.2}", sr.mean / si.mean),
            ]);
        }
    }
    out.push_str(&table.to_string());
    out.push_str(
        "\nexpected shape: recovery never fails; full corruption recovers in about the \
         initial stabilization time (ratio ≈ 1); sparse faults recover faster (ratio < 1).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_all_targets() {
        let report = run(true);
        for label in ["1 node", "10%", "50%", "all"] {
            assert!(report.contains(label), "missing target {label}");
        }
    }

    #[test]
    fn sparse_faults_recover_faster_than_full_corruption() {
        let g = GraphFamily::Geometric { avg_degree: 8.0 }.generate(256, 1);
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let mut single = 0u64;
        let mut full = 0u64;
        for seed in 0..8 {
            single += run_recovery(&g, &algo, seed, FaultTarget::RandomCount(1), 1_000_000)
                .unwrap()
                .recovery_rounds;
            full +=
                run_recovery(&g, &algo, seed, FaultTarget::All, 1_000_000).unwrap().recovery_rounds;
        }
        assert!(
            single < full,
            "single-node corruption ({single}) should recover faster than full ({full})"
        );
    }
}
