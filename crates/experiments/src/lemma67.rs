//! Experiment `L6.7` — Lemma 6.7 (golden rounds turn platinum).
//!
//! *Claim*: if round `s` is **golden** for `v` (Def 6.2: either `ℓ_s(v) ≤ 1
//! ∧ d_s(v) ≤ 0.02`, or `d_s^L(v) > 0.001`) and not yet platinum, then
//! round `s + 1` is platinum for `v` with probability at least
//! `γ ≥ e⁻²⁷` — the constant that powers Lemma 3.5's exponential tail.
//!
//! *Measurement*: run Algorithm 1, classify every (vertex, round) pair in
//! the pre-platinum phase as golden/non-golden (via the clause that
//! triggered), and measure the empirical frequency of "platinum next
//! round" for each class. Reproduced if the golden-round frequency is
//! bounded away from 0 (far above `e⁻²⁷ ≈ 1.9·10⁻¹²`) and clearly exceeds
//! the non-golden frequency — i.e. golden rounds really are the progress
//! engine.

use beeping::Simulator;
use mis::observer::Snapshot;
use mis::runner::{initial_levels, RunConfig};
use mis::{Algorithm1, LmaxPolicy};

/// Frequencies of "platinum next round" by round class.
#[derive(Debug, Clone, Copy, Default)]
pub struct GoldenStats {
    /// Golden rounds via clause (a) (`ℓ ≤ 1 ∧ d ≤ 0.02`).
    pub golden_a: u64,
    /// … of which the next round was platinum.
    pub golden_a_hit: u64,
    /// Golden rounds via clause (b) (`d^L > 0.001`) only.
    pub golden_b: u64,
    /// … of which the next round was platinum.
    pub golden_b_hit: u64,
    /// Non-golden, non-platinum rounds.
    pub other: u64,
    /// … of which the next round was platinum.
    pub other_hit: u64,
}

impl GoldenStats {
    fn rate(hits: u64, total: u64) -> f64 {
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Empirical `P[platinum next | golden via (a)]`.
    pub fn rate_a(&self) -> f64 {
        GoldenStats::rate(self.golden_a_hit, self.golden_a)
    }

    /// Empirical `P[platinum next | golden via (b)]`.
    pub fn rate_b(&self) -> f64 {
        GoldenStats::rate(self.golden_b_hit, self.golden_b)
    }

    /// Empirical `P[platinum next | not golden]`.
    pub fn rate_other(&self) -> f64 {
        GoldenStats::rate(self.other_hit, self.other)
    }
}

/// Collects golden-round statistics over `seeds` executions on G(n, 8/(n-1)).
pub fn collect(n: usize, seeds: u64, horizon: u64) -> GoldenStats {
    let g = graphs::generators::random::gnp(n, 8.0 / (n as f64 - 1.0), 0x67);
    let mut stats = GoldenStats::default();
    for seed in 0..seeds {
        let algo = Algorithm1::new(&g, LmaxPolicy::global_delta(&g));
        let lmax = algo.policy().lmax_values().to_vec();
        let config = RunConfig::new(seed);
        let init = initial_levels(&algo, &config);
        let mut sim = Simulator::new(&g, algo.clone(), init, seed);
        sim.run(algo.policy().max_lmax() as u64 + 1); // Lemma 3.1 burn-in

        // Classify (vertex, round) pairs; look one round ahead.
        let mut prev = Snapshot::new(&g, &lmax, sim.states());
        let mut classes: Vec<Option<u8>> = vec![None; g.len()];
        let mut t = 0;
        while t < horizon {
            for v in g.nodes() {
                classes[v] = if prev.is_platinum_for(v) || prev.is_stable(v) {
                    None
                } else if prev.level(v) <= 1 && prev.d(v) <= 0.02 {
                    Some(0) // golden via (a)
                } else if prev.d_light(v) > 0.001 {
                    Some(1) // golden via (b)
                } else {
                    Some(2) // non-golden
                };
            }
            sim.step();
            t += 1;
            let snap = Snapshot::new(&g, &lmax, sim.states());
            for v in g.nodes() {
                let hit = snap.is_platinum_for(v);
                match classes[v] {
                    Some(0) => {
                        stats.golden_a += 1;
                        stats.golden_a_hit += u64::from(hit);
                    }
                    Some(1) => {
                        stats.golden_b += 1;
                        stats.golden_b_hit += u64::from(hit);
                    }
                    Some(2) => {
                        stats.other += 1;
                        stats.other_hit += u64::from(hit);
                    }
                    _ => {}
                }
            }
            if snap.is_stabilized() {
                break;
            }
            prev = snap;
        }
    }
    stats
}

/// Runs the experiment and returns the printed report.
pub fn run(quick: bool) -> String {
    let (n, seeds, horizon) = if quick { (64, 5, 2_000) } else { (512, 30, 20_000) };
    let mut out = crate::common::header("L6.7", "Lemma 6.7: golden rounds turn platinum");
    out.push_str(&format!(
        "workload: G(n, 8/(n-1)) with n = {n}, global-Δ policy, {seeds} seeds; \
         classification after the Lemma 3.1 burn-in\n\n"
    ));
    let s = collect(n, seeds, horizon);
    let mut table = analysis::Table::new(["round class", "observations", "P[platinum next round]"]);
    table.row([
        "golden, clause (a): ℓ≤1 ∧ d≤0.02".to_string(),
        s.golden_a.to_string(),
        format!("{:.4}", s.rate_a()),
    ]);
    table.row([
        "golden, clause (b): d^L>0.001".to_string(),
        s.golden_b.to_string(),
        format!("{:.4}", s.rate_b()),
    ]);
    table.row(["non-golden".to_string(), s.other.to_string(), format!("{:.4}", s.rate_other())]);
    out.push_str(&table.to_string());
    out.push_str(&format!(
        "\nlemma lower bound: γ = e⁻²⁷ ≈ {:.2e} (worst-case analysis constant)\n",
        (-27.0f64).exp()
    ));
    out.push_str(
        "\nexpected shape: both golden classes convert to platinum at a rate that is a \
         healthy constant — many orders of magnitude above the provable γ — and clause \
         (a) (a nearly-free lone-beep attempt) converts at close to ½.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_rounds_convert_at_constant_rate() {
        let s = collect(64, 5, 5_000);
        assert!(s.golden_a + s.golden_b > 0, "golden rounds must occur");
        // Clause (a) is a ~½ lone-beep shot; require a healthy constant.
        if s.golden_a > 50 {
            assert!(s.rate_a() > 0.2, "clause (a) rate {:.3}", s.rate_a());
        }
        // Both golden rates dominate the lemma's constant by far.
        let gamma = (-27.0f64).exp();
        assert!(s.rate_a() >= gamma);
        if s.golden_b > 0 {
            assert!(s.rate_b() >= gamma);
        }
    }

    #[test]
    fn report_has_all_classes() {
        let report = run(true);
        assert!(report.contains("clause (a)"));
        assert!(report.contains("clause (b)"));
        assert!(report.contains("non-golden"));
    }
}
