//! Differential tests: the scatter, frontier and parallel-scatter delivery
//! engines must be bit-identical to the scalar reference — same
//! `RoundReport`s, same signals, same states — per seed, on every graph,
//! channel count, duplex mode, fault plan, and (for the parallel engine)
//! every thread count.

use beeping::byzantine::{ByzantineBehavior, ByzantinePlan};
use beeping::channel::{ChannelFault, JammerKind};
use beeping::dynamic::{DynamicTopology, MotionSpec};
use beeping::protocol::{BeepSignal, BeepingProtocol, Channels, SettledRound};
use beeping::{DuplexMode, EngineMode, Simulator};
use graphs::generators::geometric::radius_for_expected_degree;
use graphs::motion::MotionModel;
use graphs::{Graph, GraphBuilder, NodeId};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use rand::RngCore;
use telemetry::{Config as TelemetryConfig, MemorySink, Telemetry};

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..24).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..60).prop_map(move |pairs| {
            let mut b = GraphBuilder::new(n);
            for (u, v) in pairs {
                if u != v {
                    b.add_edge(u, v).unwrap();
                }
            }
            b.build()
        })
    })
}

/// A randomized probe whose transmissions and state updates both consume the
/// per-node RNG stream — any draw-order divergence between the engines shows
/// up as diverging states within a round or two.
#[derive(Clone)]
struct RandomProbe {
    channels: Channels,
}

impl BeepingProtocol for RandomProbe {
    type State = u64;
    fn channels(&self) -> Channels {
        self.channels
    }
    fn transmit(&self, _: NodeId, s: &u64, rng: &mut dyn RngCore) -> BeepSignal {
        let r = rng.next_u64();
        let c1 = r & 1 == 0 && s.is_multiple_of(2);
        let c2 = self.channels == Channels::Two && r & 2 == 0 && s.is_multiple_of(3);
        BeepSignal::new(c1, c2)
    }
    fn receive(
        &self,
        _: NodeId,
        s: &mut u64,
        _: BeepSignal,
        heard: BeepSignal,
        rng: &mut dyn RngCore,
    ) {
        let bits = heard.on_channel1() as u64 | (heard.on_channel2() as u64) << 1;
        *s = s.wrapping_mul(6364136223846793005).wrapping_add(bits ^ (rng.next_u64() & 0xF));
    }
}

/// Maximum level of the settling probe.
const SETTLE_MAX: u64 = 5;

/// An Algorithm-1-shaped probe with genuine absorbing configurations and a
/// `settled_round` certificate, so the frontier engine actually *skips*
/// nodes (`RandomProbe` never settles and only exercises the frontier
/// engine's sparse/fallback sweeps with everything dirty).
///
/// Dynamics: a node at level 0 claims — beeps on channel 1 every round,
/// spending one coin on a (value-ignored) confirmation draw; hearing a beep
/// pushes a node up toward `SETTLE_MAX`; silence pulls a non-beeping node
/// down; interior nodes flip a fair coin to beep. Absorbing configurations:
/// level 0 with a silent neighborhood (claimed — 1 draw/round) and
/// `SETTLE_MAX` with a beeping neighborhood (dominated — 0 draws/round).
#[derive(Clone)]
struct SettleProbe;

impl BeepingProtocol for SettleProbe {
    type State = u64;
    fn channels(&self) -> Channels {
        Channels::One
    }
    fn transmit(&self, _: NodeId, s: &u64, rng: &mut dyn RngCore) -> BeepSignal {
        if *s == 0 {
            let _ = rng.next_u64();
            BeepSignal::channel1()
        } else if *s >= SETTLE_MAX {
            BeepSignal::silent()
        } else {
            BeepSignal::new(rng.next_u64() & 1 == 0, false)
        }
    }
    fn receive(
        &self,
        _: NodeId,
        s: &mut u64,
        sent: BeepSignal,
        heard: BeepSignal,
        _: &mut dyn RngCore,
    ) {
        if heard.on_channel1() {
            *s = (*s + 1).min(SETTLE_MAX);
        } else if !sent.on_channel1() {
            *s = s.saturating_sub(1);
        }
        // A claimer that heard silence keeps its level — the fixpoint.
    }
    fn settled_round(&self, _: NodeId, s: &u64, heard: BeepSignal) -> Option<SettledRound> {
        if *s == 0 && !heard.on_channel1() {
            Some(SettledRound { signal: BeepSignal::channel1(), draws: 1 })
        } else if *s >= SETTLE_MAX && heard.on_channel1() {
            Some(SettledRound { signal: BeepSignal::silent(), draws: 0 })
        } else {
            None
        }
    }
}

/// A mid-run topology edit, applied identically to both engines' simulators.
#[derive(Debug, Clone)]
enum ChurnOp {
    Leave(NodeId),
    Join(NodeId, Vec<NodeId>),
    RemoveEdge(NodeId, NodeId),
    InsertEdge(NodeId, NodeId),
}

fn apply_churn<P: BeepingProtocol<State = u64>>(sim: &mut Simulator<'_, P>, op: &ChurnOp) {
    match op {
        ChurnOp::Leave(v) => {
            sim.node_leave(*v).unwrap();
        }
        ChurnOp::Join(v, neighbors) => sim.node_join(*v, neighbors, 7).unwrap(),
        ChurnOp::RemoveEdge(u, v) => {
            sim.remove_edge(*u, *v).unwrap();
        }
        ChurnOp::InsertEdge(u, v) => {
            sim.insert_edge(*u, *v).unwrap();
        }
    }
}

/// The non-reference engines a differential run compares against scalar:
/// scatter, frontier, and the parallel scatter kernel at 1, 2 and
/// `nproc` worker threads (bit-identity must hold at *every* thread count).
fn candidate_engines() -> Vec<(&'static str, EngineMode)> {
    let nproc = std::thread::available_parallelism().map_or(1, |p| p.get());
    vec![
        ("scatter", EngineMode::Scatter),
        ("frontier", EngineMode::Frontier),
        ("par(1)", EngineMode::ParScatter { threads: 1 }),
        ("par(2)", EngineMode::ParScatter { threads: 2 }),
        ("par(nproc)", EngineMode::ParScatter { threads: nproc }),
    ]
}

/// Steps every engine `rounds` times under identical configuration and
/// asserts bit-identity against the scalar reference after every round.
#[allow(clippy::too_many_arguments)]
fn assert_engines_identical(
    graph: &Graph,
    seed: u64,
    rounds: u64,
    channels: Channels,
    duplex: DuplexMode,
    channel: ChannelFault,
    byzantine: ByzantinePlan<u64>,
    churn: &[(u64, ChurnOp)],
) -> Result<(), TestCaseError> {
    let init: Vec<u64> = graph.nodes().map(|v| v as u64).collect();
    let mk = |engine: EngineMode| {
        Simulator::new(graph, RandomProbe { channels }, init.clone(), seed)
            .with_duplex(duplex)
            .with_channel(channel.clone())
            .with_byzantine(byzantine.clone())
            .with_engine(engine)
    };
    let mut scalar = mk(EngineMode::Scalar);
    let mut others: Vec<(&str, Simulator<'_, RandomProbe>)> =
        candidate_engines().into_iter().map(|(name, engine)| (name, mk(engine))).collect();
    for round in 1..=rounds {
        let a = scalar.step();
        for (name, sim) in &mut others {
            let b = sim.step();
            prop_assert_eq!(a, b, "{} report diverged at round {}", *name, round);
            prop_assert_eq!(
                scalar.states(),
                sim.states(),
                "{} states diverged at round {}",
                *name,
                round
            );
            prop_assert_eq!(
                scalar.last_sent(),
                sim.last_sent(),
                "{} sent signals diverged at round {}",
                *name,
                round
            );
            prop_assert_eq!(
                scalar.last_heard(),
                sim.last_heard(),
                "{} heard signals diverged at round {}",
                *name,
                round
            );
        }
        for (_, op) in churn.iter().filter(|(r, _)| *r == round) {
            apply_churn(&mut scalar, op);
            for (name, sim) in &mut others {
                apply_churn(sim, op);
                prop_assert_eq!(scalar.last_sent(), sim.last_sent(), "{} after churn", *name);
                prop_assert_eq!(scalar.last_heard(), sim.last_heard(), "{} after churn", *name);
            }
        }
    }
    Ok(())
}

/// Scalar vs frontier on a protocol that actually settles: a long run past
/// stabilization with mid-run point corruption, churn, and a final global
/// corruption that wakes every lazily-accounted RNG stream at once — a
/// single mis-ticked draw on any skipped node diverges the closing rounds.
fn assert_frontier_settling_identical(
    graph: &Graph,
    seed: u64,
    full: bool,
) -> Result<(), TestCaseError> {
    let n = graph.len();
    let duplex = if full { DuplexMode::Full } else { DuplexMode::Half };
    let init: Vec<u64> = graph.nodes().map(|v| (v as u64) % (SETTLE_MAX + 1)).collect();
    let mk = |engine: EngineMode| {
        Simulator::new(graph, SettleProbe, init.clone(), seed)
            .with_duplex(duplex)
            .with_engine(engine)
    };
    let mut scalar = mk(EngineMode::Scalar);
    let mut frontier = mk(EngineMode::Frontier);
    let victim = n / 2;
    for round in 1..=48u64 {
        let a = scalar.step();
        let c = frontier.step();
        prop_assert_eq!(a, c, "report diverged at round {}", round);
        prop_assert_eq!(scalar.states(), frontier.states(), "states diverged at round {}", round);
        prop_assert_eq!(scalar.last_sent(), frontier.last_sent());
        prop_assert_eq!(scalar.last_heard(), frontier.last_heard());
        // Point events that unsettle a small neighborhood mid-quiescence…
        if round == 16 {
            scalar.corrupt_state(victim, 0);
            frontier.corrupt_state(victim, 0);
        }
        if round == 24 && n > 2 {
            apply_churn(&mut scalar, &ChurnOp::Leave(victim));
            apply_churn(&mut frontier, &ChurnOp::Leave(victim));
        }
        if round == 30 && n > 2 {
            let mates = vec![0, n - 1];
            apply_churn(&mut scalar, &ChurnOp::Join(victim, mates.clone()));
            apply_churn(&mut frontier, &ChurnOp::Join(victim, mates));
        }
        // …and a global corruption that forces every settled node's pending
        // jump-ahead to materialize at once.
        if round == 40 {
            scalar.corrupt_all(|v, s| *s = (v as u64) % 3);
            frontier.corrupt_all(|v, s| *s = (v as u64) % 3);
        }
    }
    Ok(())
}

/// Steps a plain simulator and a telemetry-attached twin `rounds` times
/// under identical configuration and asserts bit-identity after every round
/// — the telemetry determinism contract (observation must not perturb the
/// execution, in particular must draw no simulation randomness).
#[allow(clippy::too_many_arguments)]
fn assert_telemetry_transparent(
    graph: &Graph,
    seed: u64,
    rounds: u64,
    channels: Channels,
    duplex: DuplexMode,
    channel: ChannelFault,
    byzantine: ByzantinePlan<u64>,
    engine: EngineMode,
) -> Result<(), TestCaseError> {
    let init: Vec<u64> = graph.nodes().map(|v| v as u64).collect();
    let mk = || {
        Simulator::new(graph, RandomProbe { channels }, init.clone(), seed)
            .with_duplex(duplex)
            .with_channel(channel.clone())
            .with_byzantine(byzantine.clone())
            .with_engine(engine)
    };
    let tele = Telemetry::enabled(TelemetryConfig::default());
    let (sink, _handle) = MemorySink::new();
    tele.add_sink(Box::new(sink));
    let mut plain = mk();
    let mut observed = mk().with_telemetry(tele.clone());
    for round in 1..=rounds {
        let a = plain.step();
        let b = observed.step();
        prop_assert_eq!(a, b, "round report diverged at round {}", round);
        prop_assert_eq!(plain.states(), observed.states(), "states diverged at round {}", round);
        prop_assert_eq!(plain.last_sent(), observed.last_sent());
        prop_assert_eq!(plain.last_heard(), observed.last_heard());
    }
    // The engine-specific round counters must account for every step; the
    // fused fast path only engages for scatter with no faults installed.
    let metrics = tele.metrics();
    let fault_free = channel.is_reliable() && byzantine.is_empty();
    let expected = match engine {
        EngineMode::Scatter if fault_free => "sim.rounds.fused",
        EngineMode::Frontier if fault_free => "sim.rounds.frontier",
        EngineMode::ParScatter { .. } if fault_free => "sim.rounds.par",
        EngineMode::Scatter | EngineMode::Frontier | EngineMode::ParScatter { .. } => {
            "sim.rounds.scatter"
        }
        EngineMode::Scalar => "sim.rounds.scalar",
    };
    prop_assert_eq!(metrics.counter(expected), rounds, "counter {}", expected);
    Ok(())
}

/// A random moving deployment: node count, waypoint/drift model, speed.
fn arb_motion() -> impl Strategy<Value = (usize, MotionSpec)> {
    (6usize..20, any::<u64>(), 0.0f64..0.12, 0u64..3, any::<bool>()).prop_map(
        |(n, points_seed, speed, pause, drift)| {
            let radius = radius_for_expected_degree(n, 5.0);
            let model = if drift {
                MotionModel::Drift { speed, turn: 0.4 }
            } else {
                MotionModel::RandomWaypoint { speed, pause }
            };
            (n, MotionSpec::new(points_seed, radius, model))
        },
    )
}

/// Steps both engines over the same moving deployment — each with its own
/// [`DynamicTopology`] applying the per-round edge diffs through the batch
/// churn path — and asserts bit-identity of reports, states, signals, the
/// reconcile deltas, the evolving graphs and the motion states. With
/// `churn`, a motion-driven leave/rejoin pair is injected mid-run (rejoin
/// edges computed from current positions via `join_neighbors`).
fn assert_engines_identical_moving(
    n: usize,
    spec: &MotionSpec,
    seed: u64,
    rounds: u64,
    channel: ChannelFault,
    byzantine: ByzantinePlan<u64>,
    churn: bool,
) -> Result<(), TestCaseError> {
    let g = spec.initial_graph(n);
    let init: Vec<u64> = g.nodes().map(|v| v as u64).collect();
    let mk = |engine: EngineMode| {
        Simulator::new(&g, RandomProbe { channels: Channels::One }, init.clone(), seed)
            .with_channel(channel.clone())
            .with_byzantine(byzantine.clone())
            .with_engine(engine)
    };
    let mut scalar = mk(EngineMode::Scalar);
    let mut topo_a = DynamicTopology::new(n, spec, seed).unwrap();
    // Each candidate engine drives its own DynamicTopology over the same
    // motion spec; graphs, deltas and motion states must all stay equal.
    let mut others: Vec<(&str, Simulator<'_, RandomProbe>, DynamicTopology)> = candidate_engines()
        .into_iter()
        .map(|(name, engine)| (name, mk(engine), DynamicTopology::new(n, spec, seed).unwrap()))
        .collect();
    let victim = n / 2;
    for round in 1..=rounds {
        let a = scalar.step();
        for (name, sim, _) in &mut others {
            let b = sim.step();
            prop_assert_eq!(a, b, "{} report diverged at round {}", *name, round);
            prop_assert_eq!(
                scalar.states(),
                sim.states(),
                "{} states diverged at round {}",
                *name,
                round
            );
            prop_assert_eq!(scalar.last_sent(), sim.last_sent(), "{} sent", *name);
            prop_assert_eq!(scalar.last_heard(), sim.last_heard(), "{} heard", *name);
        }
        if churn && round == 3 {
            scalar.node_leave(victim).unwrap();
            for (_, sim, _) in &mut others {
                sim.node_leave(victim).unwrap();
            }
        }
        if churn && round == 7 {
            let mates_a = topo_a.join_neighbors(victim, scalar.active());
            scalar.node_join(victim, &mates_a, 7).unwrap();
            for (name, sim, topo) in &mut others {
                let mates_b = topo.join_neighbors(victim, sim.active());
                prop_assert_eq!(&mates_a, &mates_b, "{} join neighborhoods diverged", *name);
                sim.node_join(victim, &mates_b, 7).unwrap();
            }
        }
        let da = topo_a.advance(&mut scalar);
        for (name, sim, topo) in &mut others {
            let db = topo.advance(sim);
            prop_assert_eq!(&da, &db, "{} reconcile deltas diverged at round {}", *name, round);
            prop_assert_eq!(
                scalar.graph(),
                sim.graph(),
                "{} graphs diverged at round {}",
                *name,
                round
            );
            prop_assert_eq!(
                topo_a.state(),
                topo.state(),
                "{} motion states diverged at round {}",
                *name,
                round
            );
        }
    }
    Ok(())
}

/// Steps a plain simulator and a telemetry-attached twin over the same
/// moving deployment and asserts bit-identity after every round.
fn assert_telemetry_transparent_moving(
    n: usize,
    spec: &MotionSpec,
    seed: u64,
    rounds: u64,
    engine: EngineMode,
) -> Result<(), TestCaseError> {
    let g = spec.initial_graph(n);
    let init: Vec<u64> = g.nodes().map(|v| v as u64).collect();
    let mk = || {
        Simulator::new(&g, RandomProbe { channels: Channels::One }, init.clone(), seed)
            .with_engine(engine)
    };
    let tele = Telemetry::enabled(TelemetryConfig::default());
    let (sink, _handle) = MemorySink::new();
    tele.add_sink(Box::new(sink));
    let mut plain = mk();
    let mut observed = mk().with_telemetry(tele.clone());
    let mut topo_a = DynamicTopology::new(n, spec, seed).unwrap();
    let mut topo_b = DynamicTopology::new(n, spec, seed).unwrap();
    for round in 1..=rounds {
        let a = plain.step();
        let b = observed.step();
        prop_assert_eq!(a, b, "round report diverged at round {}", round);
        prop_assert_eq!(plain.states(), observed.states(), "states diverged at round {}", round);
        let da = topo_a.advance(&mut plain);
        let db = topo_b.advance(&mut observed);
        prop_assert_eq!(da, db, "reconcile deltas diverged at round {}", round);
        prop_assert_eq!(plain.graph(), observed.graph(), "graphs diverged at round {}", round);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// No-fault configurations (the scatter engine's fused fast path),
    /// across channel counts and duplex modes.
    #[test]
    fn engines_agree_no_fault(
        g in arb_graph(),
        seed in any::<u64>(),
        two in any::<bool>(),
        full in any::<bool>(),
    ) {
        let channels = if two { Channels::Two } else { Channels::One };
        let duplex = if full { DuplexMode::Full } else { DuplexMode::Half };
        assert_engines_identical(
            &g,
            seed,
            24,
            channels,
            duplex,
            ChannelFault::reliable(),
            ByzantinePlan::new(),
            &[],
        )?;
    }

    /// Lossy / noisy channels: drop forces the scalar fallback, spurious
    /// noise exercises the scatter path's per-listener draw ordering.
    #[test]
    fn engines_agree_under_noise(
        g in arb_graph(),
        seed in any::<u64>(),
        drop_p in 0.0f64..0.5,
        spurious_p in 0.0f64..0.3,
        two in any::<bool>(),
    ) {
        let channels = if two { Channels::Two } else { Channels::One };
        assert_engines_identical(
            &g,
            seed,
            16,
            channels,
            DuplexMode::Half,
            ChannelFault::reliable().with_drop(drop_p).with_spurious(spurious_p),
            ByzantinePlan::new(),
            &[],
        )?;
    }

    /// Composed fault plans: spurious noise + a jammer + Byzantine radios +
    /// mid-run churn, on both channel counts.
    #[test]
    fn engines_agree_under_composed_faults(
        g in arb_graph(),
        seed in any::<u64>(),
        spurious_p in 0.0f64..0.3,
        babble_p in 0.0f64..1.0,
        two in any::<bool>(),
    ) {
        let n = g.len();
        let channels = if two { Channels::Two } else { Channels::One };
        let channel = ChannelFault::reliable()
            .with_spurious(spurious_p)
            .with_jammer(0, JammerKind::AlwaysBeep);
        let mut byz = ByzantinePlan::new()
            .with_behavior(n - 1, ByzantineBehavior::Babbler(babble_p));
        if two && n > 2 {
            byz.set_behavior(1, ByzantineBehavior::Channel2Liar);
        }
        let victim = n / 2;
        let mates = if victim == n - 1 { vec![0] } else { vec![0, n - 1] };
        let churn = vec![
            (4, ChurnOp::Leave(victim)),
            (7, ChurnOp::RemoveEdge(0, n - 1)),
            (10, ChurnOp::Join(victim, mates)),
            (13, ChurnOp::InsertEdge(0, n - 1)),
        ];
        assert_engines_identical(
            &g,
            seed,
            20,
            channels,
            DuplexMode::Half,
            channel,
            byz,
            &churn,
        )?;
    }

    /// Telemetry on/off bit-identity: attaching an enabled telemetry handle
    /// (with a recording sink) must not change a single report, state or
    /// signal, on either engine, with or without channel noise and
    /// Byzantine radios.
    #[test]
    fn telemetry_attachment_is_bit_transparent(
        g in arb_graph(),
        seed in any::<u64>(),
        drop_p in 0.0f64..0.4,
        spurious_p in 0.0f64..0.3,
        noisy in any::<bool>(),
        two in any::<bool>(),
        engine_sel in 0usize..4,
    ) {
        let engine = [
            EngineMode::Scalar,
            EngineMode::Scatter,
            EngineMode::Frontier,
            EngineMode::ParScatter { threads: 2 },
        ][engine_sel];
        let channels = if two { Channels::Two } else { Channels::One };
        let (channel, byz) = if noisy {
            (
                ChannelFault::reliable().with_drop(drop_p).with_spurious(spurious_p),
                ByzantinePlan::new().with_behavior(g.len() - 1, ByzantineBehavior::Babbler(0.5)),
            )
        } else {
            // Fault-free keeps the scatter engine on its fused fast path.
            (ChannelFault::reliable(), ByzantinePlan::new())
        };
        assert_telemetry_transparent(
            &g,
            seed,
            16,
            channels,
            DuplexMode::Half,
            channel,
            byz,
            engine,
        )?;
    }

    /// Moving deployments: motion-driven edge diffs (optionally composed
    /// with channel noise, a Byzantine radio and a leave/rejoin pair) must
    /// keep the two engines bit-identical — reports, states, signals,
    /// graphs and motion state alike.
    #[test]
    fn engines_agree_on_moving_deployments(
        (n, spec) in arb_motion(),
        seed in any::<u64>(),
        drop_p in 0.0f64..0.3,
        noisy in any::<bool>(),
        byz in any::<bool>(),
        churn in any::<bool>(),
    ) {
        let channel = if noisy {
            ChannelFault::reliable().with_drop(drop_p)
        } else {
            ChannelFault::reliable()
        };
        let plan = if byz {
            ByzantinePlan::new().with_behavior(n - 1, ByzantineBehavior::StuckBeep)
        } else {
            ByzantinePlan::new()
        };
        assert_engines_identical_moving(n, &spec, seed, 16, channel, plan, churn)?;
    }

    /// Attaching telemetry to a moving run must not perturb it on either
    /// engine — the topology reconciliation draws from the dedicated
    /// motion stream, never from observed simulation randomness.
    #[test]
    fn telemetry_is_transparent_on_moving_deployments(
        (n, spec) in arb_motion(),
        seed in any::<u64>(),
        engine_sel in 0usize..4,
    ) {
        let engine = [
            EngineMode::Scalar,
            EngineMode::Scatter,
            EngineMode::Frontier,
            EngineMode::ParScatter { threads: 2 },
        ][engine_sel];
        assert_telemetry_transparent_moving(n, &spec, seed, 16, engine)?;
    }

    /// The frontier engine's actual skip path: a protocol with absorbing
    /// configurations runs far past stabilization, gets perturbed by point
    /// faults, churn and a global corruption, and must stay bit-identical
    /// to the scalar reference throughout — including the lazily-accounted
    /// RNG streams of every node it skipped.
    #[test]
    fn frontier_skips_settled_nodes_identically(
        g in arb_graph(),
        seed in any::<u64>(),
        full in any::<bool>(),
    ) {
        assert_frontier_settling_identical(&g, seed, full)?;
    }
}
