//! Cross-feature tests of the full adversary stack: scheduled RAM faults
//! ([`beeping::faults`]) × adversarial wake-up ([`beeping::sleep`]) × half
//! duplex × channel noise ([`beeping::channel`]) composed in one execution.

use beeping::channel::{BurstNoise, ChannelFault, JammerKind};
use beeping::faults::{FaultPlan, FaultTarget};
use beeping::protocol::{BeepSignal, BeepingProtocol, Channels};
use beeping::rng::aux_rng;
use beeping::sim::DuplexMode;
use beeping::sleep::{Sleepy, SleepyState};
use beeping::Simulator;
use graphs::generators::classic;
use graphs::NodeId;
use rand::{Rng, RngCore};

/// Coin-flip transmitter that counts what it hears — exercises the node RNG
/// streams (transmit) and the delivered signal (receive) at once.
#[derive(Clone)]
struct Chatty;

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct ChatState {
    beeps: u32,
    hears: u32,
}

impl BeepingProtocol for Chatty {
    type State = ChatState;
    fn channels(&self) -> Channels {
        Channels::One
    }
    fn transmit(&self, _: NodeId, _: &ChatState, rng: &mut dyn RngCore) -> BeepSignal {
        if rng.gen_bool(0.5) {
            BeepSignal::channel1()
        } else {
            BeepSignal::silent()
        }
    }
    fn receive(
        &self,
        _: NodeId,
        s: &mut ChatState,
        sent: BeepSignal,
        heard: BeepSignal,
        _: &mut dyn RngCore,
    ) {
        s.beeps += sent.on_channel1() as u32;
        s.hears += heard.on_channel1() as u32;
    }
}

/// One full-adversary execution: staggered wake-ups, half duplex, lossy +
/// spurious + bursty channel with a jammer, and a two-event fault schedule
/// applied from the shared fault stream. Returns the per-round beep counts
/// and the final states, the whole observable surface.
fn run_composed(seed: u64) -> (Vec<usize>, Vec<(u64, ChatState)>) {
    let g = classic::cycle(8);
    let init: Vec<SleepyState<ChatState>> =
        (0..8).map(|v| SleepyState::new(v as u64 % 4, ChatState::default())).collect();
    let mut sim = Simulator::new(&g, Sleepy::new(Chatty), init, seed)
        .with_duplex(DuplexMode::Half)
        .with_channel(
            ChannelFault::reliable()
                .with_drop(0.2)
                .with_spurious(0.05)
                .with_burst(BurstNoise { p_enter: 0.1, p_exit: 0.3, drop_p: 0.9 })
                .with_jammer(0, JammerKind::AlwaysBeep),
        );
    let plan = FaultPlan::new()
        .with_fault(10, FaultTarget::RandomCount(3))
        .with_fault(20, FaultTarget::RandomFraction(0.5));
    let mut fault_rng = aux_rng(seed, 0xFA17);
    let mut beeps = Vec::new();
    for _ in 0..40 {
        let report = sim.step();
        beeps.push(report.beeps_channel1);
        for event in plan.events_after_round(sim.round()) {
            for v in event.target.select(g.len(), &mut fault_rng) {
                // RAM corruption hits the *wrapped* state: both the sleep
                // counter and the inner protocol state are fair game.
                sim.corrupt_state(v, SleepyState::new(v as u64 % 3, ChatState::default()));
            }
        }
    }
    let finals = sim.states().iter().map(|s| (s.remaining_sleep, s.inner)).collect();
    (beeps, finals)
}

#[test]
fn full_adversary_composition_is_deterministic_for_fixed_seed() {
    let (beeps_a, finals_a) = run_composed(7);
    let (beeps_b, finals_b) = run_composed(7);
    assert_eq!(beeps_a, beeps_b, "same seed must reproduce the round trace");
    assert_eq!(finals_a, finals_b, "same seed must reproduce the final states");

    // A different seed re-seeds every stream (node coins, channel noise,
    // fault targets); over 40 noisy rounds the traces cannot coincide.
    let (beeps_c, finals_c) = run_composed(8);
    assert!(
        beeps_a != beeps_c || finals_a != finals_c,
        "distinct seeds should produce distinct executions"
    );
}

#[test]
fn sleeping_nodes_are_immune_to_channel_noise() {
    // A sleeping node is silent and deaf by construction: even a channel
    // that delivers a spurious beep to every listener each round cannot
    // touch its frozen inner state — only its sleep counter ticks.
    let g = classic::path(2);
    let init =
        vec![SleepyState::new(10, ChatState::default()), SleepyState::awake(ChatState::default())];
    // Drop everything real, inject a spurious beep always: all information
    // reaching any node is pure noise.
    let mut sim = Simulator::new(&g, Sleepy::new(Chatty), init, 3)
        .with_channel(ChannelFault::reliable().with_drop(1.0).with_spurious(1.0));
    sim.run(10);
    // The sleeper is untouched; the awake node heard 10 spurious beeps.
    assert_eq!(sim.state(0).inner, ChatState::default());
    assert!(sim.state(0).is_awake());
    assert_eq!(sim.state(1).inner.hears, 10);
    // Once awake it starts hearing the noise like everyone else.
    sim.run(5);
    assert_eq!(sim.state(0).inner.hears, 5);
}

#[test]
fn jammer_radio_overrides_even_a_sleeping_node() {
    // The jammer model corrupts the *radio*, not the RAM: a sleeping node
    // with an always-beep jammer still transmits, even though its protocol
    // (and its own `sent` bookkeeping) says silent.
    let g = classic::path(2);
    let init =
        vec![SleepyState::new(100, ChatState::default()), SleepyState::awake(ChatState::default())];
    let mut sim = Simulator::new(&g, Sleepy::new(Chatty), init, 5)
        .with_channel(ChannelFault::reliable().with_jammer(0, JammerKind::AlwaysBeep));
    sim.run(20);
    // The awake neighbor hears the jammed sleeper every round.
    assert_eq!(sim.state(1).inner.hears, 20);
    // The sleeper's own state stays frozen: the fault lives below RAM.
    assert_eq!(sim.state(0).inner, ChatState::default());
    assert_eq!(sim.state(0).remaining_sleep, 80);
}
