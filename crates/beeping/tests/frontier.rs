//! Frontier engine accounting: the fallback-threshold boundary must be
//! exact — a dirty set of precisely the cutoff size stays on the sparse
//! path, one more node falls back to the full sweep — observed through the
//! engine's telemetry counters.

use beeping::protocol::{BeepSignal, BeepingProtocol, Channels, SettledRound};
use beeping::{frontier_fallback_threshold, EngineMode, Simulator};
use graphs::{Graph, NodeId};
use rand::RngCore;
use telemetry::{Config as TelemetryConfig, MemorySink, Telemetry};

/// Nodes below `restless` never certify a settled round; everyone else is a
/// trivial silent fixpoint. On an empty graph this pins the steady-state
/// dirty-set size to exactly `restless`.
struct SplitProbe {
    restless: usize,
}

impl BeepingProtocol for SplitProbe {
    type State = ();
    fn channels(&self) -> Channels {
        Channels::One
    }
    fn transmit(&self, node: NodeId, _: &(), rng: &mut dyn RngCore) -> BeepSignal {
        if node < self.restless {
            let _ = rng.next_u64();
        }
        BeepSignal::silent()
    }
    fn receive(&self, _: NodeId, _: &mut (), _: BeepSignal, _: BeepSignal, _: &mut dyn RngCore) {}
    fn settled_round(&self, node: NodeId, _: &(), _: BeepSignal) -> Option<SettledRound> {
        (node >= self.restless).then_some(SettledRound { signal: BeepSignal::silent(), draws: 0 })
    }
}

/// Runs `rounds` frontier rounds with a pinned dirty-set size and returns
/// the `(sim.rounds.frontier, sim.rounds.frontier.fallback)` counters.
fn frontier_counters(n: usize, restless: usize, rounds: u64) -> (u64, u64) {
    let g = Graph::empty(n);
    let tele = Telemetry::enabled(TelemetryConfig::default());
    let (sink, _handle) = MemorySink::new();
    tele.add_sink(Box::new(sink));
    let mut sim = Simulator::new(&g, SplitProbe { restless }, vec![(); n], 3)
        .with_engine(EngineMode::Frontier)
        .with_telemetry(tele.clone());
    sim.run(rounds);
    let m = tele.metrics();
    (m.counter("sim.rounds.frontier"), m.counter("sim.rounds.frontier.fallback"))
}

#[test]
fn dirty_set_at_threshold_stays_sparse() {
    let n = 128;
    let cutoff = frontier_fallback_threshold(n);
    let (frontier, fallback) = frontier_counters(n, cutoff, 12);
    assert_eq!(frontier, 12);
    // Only the initial synchronizing sweep falls back; a dirty set of
    // exactly the cutoff size stays on the sparse path.
    assert_eq!(fallback, 1);
}

#[test]
fn dirty_set_over_threshold_falls_back() {
    let n = 128;
    let cutoff = frontier_fallback_threshold(n);
    let (frontier, fallback) = frontier_counters(n, cutoff + 1, 12);
    assert_eq!(frontier, 12);
    // One node past the cutoff: every round is a full fallback sweep.
    assert_eq!(fallback, 12);
}

#[test]
fn fully_settled_network_runs_empty_sparse_rounds() {
    let (frontier, fallback) = frontier_counters(64, 0, 12);
    assert_eq!(frontier, 12);
    assert_eq!(fallback, 1);
}
