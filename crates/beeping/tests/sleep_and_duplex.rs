//! Cross-feature tests: sleep wrappers, duplex modes and checkpointing
//! composed together.

use beeping::protocol::{BeepSignal, BeepingProtocol, Channels};
use beeping::sim::DuplexMode;
use beeping::sleep::{Sleepy, SleepyState};
use beeping::Simulator;
use graphs::generators::classic;
use graphs::NodeId;
use rand::RngCore;

/// Echo protocol: state counts (beeped, heard) events.
#[derive(Clone)]
struct Echo;

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct EchoState {
    beeps: u32,
    hears: u32,
}

impl BeepingProtocol for Echo {
    type State = EchoState;
    fn channels(&self) -> Channels {
        Channels::One
    }
    fn transmit(&self, node: NodeId, _: &EchoState, _: &mut dyn RngCore) -> BeepSignal {
        // Even nodes beep every round.
        if node.is_multiple_of(2) {
            BeepSignal::channel1()
        } else {
            BeepSignal::silent()
        }
    }
    fn receive(
        &self,
        _: NodeId,
        s: &mut EchoState,
        sent: BeepSignal,
        heard: BeepSignal,
        _: &mut dyn RngCore,
    ) {
        s.beeps += sent.on_channel1() as u32;
        s.hears += heard.on_channel1() as u32;
    }
}

#[test]
fn sleepy_plus_half_duplex_compose() {
    // Path 0-1-2: nodes 0 and 2 beep (even), node 1 silent. Under half
    // duplex the beepers hear nothing anyway (they transmit); node 1 hears.
    // Wrap node 0 with a sleep of 3: first 3 rounds only node 2 beeps.
    let g = classic::path(3);
    let init = vec![
        SleepyState::new(3, EchoState::default()),
        SleepyState::awake(EchoState::default()),
        SleepyState::awake(EchoState::default()),
    ];
    let mut sim = Simulator::new(&g, Sleepy::new(Echo), init, 1).with_duplex(DuplexMode::Half);
    sim.run(3);
    // During sleep node 0 recorded nothing.
    assert_eq!(sim.state(0).inner, EchoState::default());
    // Node 1 heard node 2 every round (and is silent so it can hear).
    assert_eq!(sim.state(1).inner, EchoState { beeps: 0, hears: 3 });
    // Node 2 beeped 3 times, heard nothing (half duplex while beeping).
    assert_eq!(sim.state(2).inner, EchoState { beeps: 3, hears: 0 });
    // After waking, node 0 beeps too; node 1 still hears.
    sim.run(2);
    assert_eq!(sim.state(0).inner, EchoState { beeps: 2, hears: 0 });
    assert_eq!(sim.state(1).inner, EchoState { beeps: 0, hears: 5 });
}

#[test]
fn checkpoint_preserves_sleep_counters() {
    let g = classic::path(2);
    let init =
        vec![SleepyState::new(10, EchoState::default()), SleepyState::awake(EchoState::default())];
    let mut sim = Simulator::new(&g, Sleepy::new(Echo), init, 2);
    sim.run(4);
    let cp = sim.checkpoint();
    assert_eq!(cp.states()[0].remaining_sleep, 6);
    sim.run(10);
    assert!(sim.state(0).is_awake());
    sim.restore(&cp).unwrap();
    assert_eq!(sim.state(0).remaining_sleep, 6);
    sim.run(10);
    assert!(sim.state(0).is_awake());
}

#[test]
fn duplex_mode_default_is_full() {
    let g = classic::path(2);
    let sim = Simulator::new(&g, Echo, vec![EchoState::default(); 2], 0);
    assert_eq!(sim.duplex(), DuplexMode::Full);
}

#[test]
fn half_duplex_on_two_channels() {
    // A transmitting node under half duplex hears nothing on EITHER channel.
    #[derive(Clone)]
    struct TwoCh;
    impl BeepingProtocol for TwoCh {
        type State = (bool, bool); // (heard1, heard2) of last round
        fn channels(&self) -> Channels {
            Channels::Two
        }
        fn transmit(&self, node: NodeId, _: &Self::State, _: &mut dyn RngCore) -> BeepSignal {
            match node {
                0 => BeepSignal::channel1(),
                1 => BeepSignal::channel2(),
                _ => BeepSignal::silent(),
            }
        }
        fn receive(
            &self,
            _: NodeId,
            s: &mut Self::State,
            _: BeepSignal,
            heard: BeepSignal,
            _: &mut dyn RngCore,
        ) {
            *s = (heard.on_channel1(), heard.on_channel2());
        }
    }
    let g = classic::complete(3);
    let mut sim =
        Simulator::new(&g, TwoCh, vec![(false, false); 3], 0).with_duplex(DuplexMode::Half);
    sim.step();
    // Nodes 0 and 1 transmit → deaf. Node 2 is silent → hears both.
    assert_eq!(*sim.state(0), (false, false));
    assert_eq!(*sim.state(1), (false, false));
    assert_eq!(*sim.state(2), (true, true));
}
