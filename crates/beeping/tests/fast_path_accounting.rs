//! Fused fast-path accounting: the scatter engine's single-pass no-fault
//! kernel must be indistinguishable from the phased path — same reports,
//! states and signals, same telemetry counter totals, and the same
//! bookkeeping *order* at the end of a round (round counted before the
//! invariant hook fires, so a panicking hook leaves both paths agreeing on
//! how many rounds completed).

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;

use beeping::channel::BurstNoise;
use beeping::protocol::{BeepSignal, BeepingProtocol, Channels};
use beeping::{ChannelFault, EngineMode, Simulator};
use graphs::generators::classic;
use graphs::{Graph, NodeId};
use rand::RngCore;
use telemetry::{Config as TelemetryConfig, MemorySink, Telemetry};

/// A channel configuration that is semantically reliable but *not*
/// `is_reliable()`: a Gilbert burst that can never be entered (all
/// probabilities zero draws nothing and drops nothing). It forces the
/// scatter engine off its fused fast path and onto the phased kernel while
/// keeping the execution bit-identical to a truly reliable channel.
fn zero_burst() -> ChannelFault {
    ChannelFault::reliable().with_burst(BurstNoise { p_enter: 0.0, p_exit: 0.0, drop_p: 0.0 })
}

/// Coin probe drawing randomness in both halves of the round, so any
/// draw-order divergence between the fused and phased kernels surfaces as
/// diverging states immediately.
struct Probe;

impl BeepingProtocol for Probe {
    type State = u64;
    fn channels(&self) -> Channels {
        Channels::One
    }
    fn transmit(&self, _: NodeId, s: &u64, rng: &mut dyn RngCore) -> BeepSignal {
        BeepSignal::new(rng.next_u64() & 1 == 0 && s.is_multiple_of(2), false)
    }
    fn receive(
        &self,
        _: NodeId,
        s: &mut u64,
        sent: BeepSignal,
        heard: BeepSignal,
        rng: &mut dyn RngCore,
    ) {
        let bits = sent.on_channel1() as u64 | (heard.on_channel1() as u64) << 1;
        *s = s.wrapping_mul(6364136223846793005).wrapping_add(bits ^ (rng.next_u64() & 0xFF));
    }
}

type HookLog = Rc<RefCell<Vec<(u64, Vec<u64>)>>>;

fn instrumented(
    g: &Graph,
    seed: u64,
    channel: ChannelFault,
    tele: Telemetry,
) -> (Simulator<'_, Probe>, HookLog) {
    let init: Vec<u64> = g.nodes().map(|v| v as u64).collect();
    let log: HookLog = Rc::new(RefCell::new(Vec::new()));
    let sink = Rc::clone(&log);
    let sim = Simulator::new(g, Probe, init, seed)
        .with_engine(EngineMode::Scatter)
        .with_channel(channel)
        .with_telemetry(tele)
        .with_invariant_hook(move |_, round, states| {
            sink.borrow_mut().push((round, states.to_vec()));
        });
    (sim, log)
}

#[test]
fn fused_and_phased_paths_account_identically() {
    let g = classic::cycle(16);
    let rounds = 30u64;
    let tele_fused = Telemetry::enabled(TelemetryConfig::default());
    let (sink, _h1) = MemorySink::new();
    tele_fused.add_sink(Box::new(sink));
    let tele_phased = Telemetry::enabled(TelemetryConfig::default());
    let (sink, _h2) = MemorySink::new();
    tele_phased.add_sink(Box::new(sink));

    let (mut fused, log_fused) = instrumented(&g, 41, ChannelFault::reliable(), tele_fused.clone());
    let (mut phased, log_phased) = instrumented(&g, 41, zero_burst(), tele_phased.clone());
    for round in 1..=rounds {
        let a = fused.step();
        let b = phased.step();
        assert_eq!(a, b, "round report diverged at round {round}");
        assert_eq!(fused.states(), phased.states(), "states diverged at round {round}");
        assert_eq!(fused.last_sent(), phased.last_sent());
        assert_eq!(fused.last_heard(), phased.last_heard());
        assert_eq!(fused.round(), phased.round());
    }
    // Identical hook observations, in the same order with the same payloads.
    assert_eq!(*log_fused.borrow(), *log_phased.borrow());
    assert_eq!(log_fused.borrow().len(), rounds as usize);
    // Every step is accounted to exactly one engine counter.
    let fused_metrics = tele_fused.metrics();
    assert_eq!(fused_metrics.counter("sim.rounds.fused"), rounds);
    assert_eq!(fused_metrics.counter("sim.rounds.scatter"), 0);
    let phased_metrics = tele_phased.metrics();
    assert_eq!(phased_metrics.counter("sim.rounds.scatter"), rounds);
    assert_eq!(phased_metrics.counter("sim.rounds.fused"), 0);
}

/// Both paths must finish the round's bookkeeping — counter bumped, round
/// advanced — *before* the invariant hook runs, so a hook that panics on a
/// violation still leaves the simulator and its telemetry agreeing on how
/// many rounds completed.
#[test]
fn hook_panic_leaves_round_accounting_consistent() {
    for channel in [ChannelFault::reliable(), zero_burst()] {
        let g = classic::path(4);
        let fused = channel.is_reliable();
        let tele = Telemetry::enabled(TelemetryConfig::default());
        let (sink, _h) = MemorySink::new();
        tele.add_sink(Box::new(sink));
        let mut sim = Simulator::new(&g, Probe, vec![0; 4], 9)
            .with_engine(EngineMode::Scatter)
            .with_channel(channel)
            .with_telemetry(tele.clone())
            .with_invariant_hook(|_, round, _| {
                assert!(round < 5, "synthetic invariant violation at round {round}");
            });
        sim.run(4);
        let panicked = catch_unwind(AssertUnwindSafe(|| {
            sim.step();
        }));
        assert!(panicked.is_err(), "hook should have panicked at round 5");
        // The panicking round was fully accounted on both paths.
        assert_eq!(sim.round(), 5);
        let counter = if fused { "sim.rounds.fused" } else { "sim.rounds.scatter" };
        assert_eq!(tele.metrics().counter(counter), 5, "fused={fused}");
    }
}
