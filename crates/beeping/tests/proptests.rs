//! Property-based tests of the simulator's model semantics.

use beeping::protocol::{BeepSignal, BeepingProtocol, Channels};
use beeping::rng::{node_rng, split_mix64};
use beeping::Simulator;
use graphs::{Graph, GraphBuilder, NodeId};
use proptest::prelude::*;
use rand::RngCore;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (1usize..24).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..60).prop_map(move |pairs| {
            let mut b = GraphBuilder::new(n);
            for (u, v) in pairs {
                if u != v {
                    b.add_edge(u, v).unwrap();
                }
            }
            b.build()
        })
    })
}

/// Probe protocol: beeps iff its state bit is set; records what it heard.
#[derive(Clone)]
struct Probe;

#[derive(Debug, Clone, Copy, Default)]
struct ProbeState {
    beep: bool,
    heard: Option<bool>,
}

impl BeepingProtocol for Probe {
    type State = ProbeState;
    fn channels(&self) -> Channels {
        Channels::One
    }
    fn transmit(&self, _: NodeId, s: &ProbeState, _: &mut dyn RngCore) -> BeepSignal {
        if s.beep {
            BeepSignal::channel1()
        } else {
            BeepSignal::silent()
        }
    }
    fn receive(
        &self,
        _: NodeId,
        s: &mut ProbeState,
        _: BeepSignal,
        heard: BeepSignal,
        _: &mut dyn RngCore,
    ) {
        s.heard = Some(heard.on_channel1());
    }
}

/// Two-channel probe: beeps on each channel iff the matching state bit is
/// set; records the heard signal verbatim.
#[derive(Clone)]
struct Probe2;

#[derive(Debug, Clone, Copy, Default)]
struct Probe2State {
    beep1: bool,
    beep2: bool,
    heard: BeepSignal,
}

impl BeepingProtocol for Probe2 {
    type State = Probe2State;
    fn channels(&self) -> Channels {
        Channels::Two
    }
    fn transmit(&self, _: NodeId, s: &Probe2State, _: &mut dyn RngCore) -> BeepSignal {
        BeepSignal::new(s.beep1, s.beep2)
    }
    fn receive(
        &self,
        _: NodeId,
        s: &mut Probe2State,
        _: BeepSignal,
        heard: BeepSignal,
        _: &mut dyn RngCore,
    ) {
        s.heard = heard;
    }
}

proptest! {
    /// The delivered bit equals the OR over neighbors' transmissions —
    /// never self, never non-neighbors.
    #[test]
    fn delivery_is_neighbor_or(g in arb_graph(), beeps in proptest::collection::vec(any::<bool>(), 24)) {
        let init: Vec<ProbeState> = g
            .nodes()
            .map(|v| ProbeState { beep: beeps[v], heard: None })
            .collect();
        let mut sim = Simulator::new(&g, Probe, init, 0);
        sim.step();
        for v in g.nodes() {
            let expected = g.neighbors(v).iter().any(|&u| beeps[u as usize]);
            prop_assert_eq!(sim.state(v).heard, Some(expected), "node {}", v);
        }
    }

    /// Round reports agree with the ground-truth counts.
    #[test]
    fn round_report_counts(g in arb_graph(), beeps in proptest::collection::vec(any::<bool>(), 24)) {
        let init: Vec<ProbeState> = g
            .nodes()
            .map(|v| ProbeState { beep: beeps[v], heard: None })
            .collect();
        let mut sim = Simulator::new(&g, Probe, init, 0);
        let report = sim.step();
        let beepers = g.nodes().filter(|&v| beeps[v]).count();
        let hearers = g
            .nodes()
            .filter(|&v| g.neighbors(v).iter().any(|&u| beeps[u as usize]))
            .count();
        let lone = g
            .nodes()
            .filter(|&v| beeps[v] && !g.neighbors(v).iter().any(|&u| beeps[u as usize]))
            .count();
        prop_assert_eq!(report.beeps_channel1, beepers);
        prop_assert_eq!(report.hearers_channel1, hearers);
        prop_assert_eq!(report.lone_beepers, lone);
        prop_assert_eq!(report.round, 1);
    }

    /// Two-channel round reports count lone beepers per channel: a node is
    /// a lone beeper on channel `c` iff it beeped on `c` and no neighbor
    /// did — activity on the other channel is irrelevant.
    #[test]
    fn round_report_counts_two_channel(
        g in arb_graph(),
        beeps1 in proptest::collection::vec(any::<bool>(), 24),
        beeps2 in proptest::collection::vec(any::<bool>(), 24),
    ) {
        let init: Vec<Probe2State> = g
            .nodes()
            .map(|v| Probe2State { beep1: beeps1[v], beep2: beeps2[v], ..Default::default() })
            .collect();
        let mut sim = Simulator::new(&g, Probe2, init, 0);
        let report = sim.step();
        let lone = |beeps: &[bool]| {
            g.nodes()
                .filter(|&v| beeps[v] && !g.neighbors(v).iter().any(|&u| beeps[u as usize]))
                .count()
        };
        prop_assert_eq!(report.beeps_channel1, g.nodes().filter(|&v| beeps1[v]).count());
        prop_assert_eq!(report.beeps_channel2, g.nodes().filter(|&v| beeps2[v]).count());
        prop_assert_eq!(report.lone_beepers, lone(&beeps1));
        prop_assert_eq!(report.lone_beepers_channel2, lone(&beeps2));
        for v in g.nodes() {
            let h = sim.state(v).heard;
            prop_assert_eq!(h.on_channel1(), g.neighbors(v).iter().any(|&u| beeps1[u as usize]));
            prop_assert_eq!(h.on_channel2(), g.neighbors(v).iter().any(|&u| beeps2[u as usize]));
        }
    }

    /// Node RNG streams are reproducible and node-separated.
    #[test]
    fn rng_streams_reproducible(seed in any::<u64>(), a in 0usize..64, b in 0usize..64) {
        let x: Vec<u64> = {
            let mut r = node_rng(seed, a);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let y: Vec<u64> = {
            let mut r = node_rng(seed, a);
            (0..8).map(|_| r.next_u64()).collect()
        };
        prop_assert_eq!(&x, &y);
        if a != b {
            let z: Vec<u64> = {
                let mut r = node_rng(seed, b);
                (0..8).map(|_| r.next_u64()).collect()
            };
            prop_assert_ne!(&x, &z);
        }
    }

    /// SplitMix64 is a bijection-grade mixer: no collisions on small inputs.
    #[test]
    fn split_mix_no_trivial_collisions(x in 0u64..10_000) {
        prop_assert_ne!(split_mix64(x), split_mix64(x + 1));
    }

    /// Fault target selection respects bounds and counts.
    #[test]
    fn fault_target_selection(n in 1usize..50, count in 0usize..50, seed in any::<u64>()) {
        use beeping::faults::FaultTarget;
        let count = count.min(n);
        let mut rng = beeping::rng::aux_rng(seed, 1);
        let picked = FaultTarget::RandomCount(count).select(n, &mut rng);
        prop_assert_eq!(picked.len(), count);
        prop_assert!(picked.iter().all(|&v| v < n));
        let all = FaultTarget::All.select(n, &mut rng);
        prop_assert_eq!(all.len(), n);
    }

    /// Signals round-trip through the constructor.
    #[test]
    fn signal_round_trip(c1 in any::<bool>(), c2 in any::<bool>()) {
        let s = BeepSignal::new(c1, c2);
        prop_assert_eq!(s.on_channel1(), c1);
        prop_assert_eq!(s.on_channel2(), c2);
        prop_assert_eq!(s.is_silent(), !c1 && !c2);
    }
}
