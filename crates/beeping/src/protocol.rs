//! The node-automaton interface of the beeping model.

use graphs::NodeId;
use rand::RngCore;

/// Number of distinguishable beeping channels a protocol uses.
///
/// The base model (paper §1) has a single channel; the extension of §7
/// provides two. The simulator enforces that a protocol never beeps on a
/// channel it did not declare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Channels {
    /// Single-channel beeping model.
    One,
    /// Two-channel beeping model (paper §7, Algorithm 2).
    Two,
}

impl Channels {
    /// The number of channels as an integer.
    pub fn count(self) -> usize {
        match self {
            Channels::One => 1,
            Channels::Two => 2,
        }
    }

    /// Bitmask of the usable channels.
    fn mask(self) -> u8 {
        match self {
            Channels::One => 0b01,
            Channels::Two => 0b11,
        }
    }

    /// The signal that beeps on *every* declared channel — what an
    /// always-beeping jammer emits.
    pub fn full_signal(self) -> BeepSignal {
        match self {
            Channels::One => BeepSignal::channel1(),
            Channels::Two => BeepSignal::both(),
        }
    }
}

/// A per-round beep decision or observation: one bit per channel.
///
/// As a *transmission*, bit `i` means "beep on channel `i+1`". As an
/// *observation*, bit `i` means "at least one neighbor beeped on channel
/// `i+1`" — the only information the beeping model delivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct BeepSignal(u8);

impl BeepSignal {
    /// Silence: no beep on any channel.
    pub const fn silent() -> BeepSignal {
        BeepSignal(0)
    }

    /// Beep on channel 1 only.
    pub const fn channel1() -> BeepSignal {
        BeepSignal(0b01)
    }

    /// Beep on channel 2 only (requires [`Channels::Two`]).
    pub const fn channel2() -> BeepSignal {
        BeepSignal(0b10)
    }

    /// Beep on both channels (requires [`Channels::Two`]).
    pub const fn both() -> BeepSignal {
        BeepSignal(0b11)
    }

    /// Builds a signal from per-channel booleans.
    pub fn new(channel1: bool, channel2: bool) -> BeepSignal {
        BeepSignal(u8::from(channel1) | (u8::from(channel2) << 1))
    }

    /// `true` if no channel carries a beep.
    pub fn is_silent(self) -> bool {
        self.0 == 0
    }

    /// `true` if channel 1 carries a beep.
    pub fn on_channel1(self) -> bool {
        self.0 & 0b01 != 0
    }

    /// `true` if channel 2 carries a beep.
    pub fn on_channel2(self) -> bool {
        self.0 & 0b10 != 0
    }

    /// Merges another signal into this one (the network's OR semantics).
    pub fn merge(&mut self, other: BeepSignal) {
        self.0 |= other.0;
    }

    /// `true` if every beep in `self` is on a channel allowed by `channels`.
    pub fn allowed_by(self, channels: Channels) -> bool {
        self.0 & !channels.mask() == 0
    }
}

impl std::fmt::Display for BeepSignal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (self.on_channel1(), self.on_channel2()) {
            (false, false) => write!(f, "silent"),
            (true, false) => write!(f, "beep1"),
            (false, true) => write!(f, "beep2"),
            (true, true) => write!(f, "beep1+2"),
        }
    }
}

/// A per-round execution certificate for a *settled* node — the protocol's
/// half of the frontier engine's draws-when-settled contract
/// (`EngineMode::Frontier` in `beeping::sim`).
///
/// Returning `Some(SettledRound { signal, draws })` from
/// [`BeepingProtocol::settled_round`] for `(node, state, heard)` certifies
/// that, for as long as the node's state and observation stay exactly
/// `(state, heard)`:
///
/// 1. [`BeepingProtocol::transmit`] returns exactly `signal` and consumes
///    exactly `draws` generator outputs (one `gen_bool`/`next_u64` = one
///    output), *regardless of the values drawn*;
/// 2. [`BeepingProtocol::receive`] with `(sent = signal, heard)` leaves the
///    state unchanged and draws nothing.
///
/// Under that certificate the frontier engine may skip the node entirely
/// and account for its stream lazily (`draws` outputs per skipped round via
/// jump-ahead), re-executing it only when a neighbor's signal — and hence
/// its observation — changes. Debug builds verify both clauses whenever a
/// node settles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SettledRound {
    /// The signal `transmit` is certified to produce every round.
    pub signal: BeepSignal,
    /// Generator outputs `transmit` consumes per round (`receive` must
    /// consume none for a settled node).
    pub draws: u64,
}

/// A protocol for the beeping model: the code in every node's ROM.
///
/// One `BeepingProtocol` value drives *all* nodes; per-node data lives in
/// `State` (the RAM that transient faults may corrupt) and in whatever
/// static per-node *knowledge* the protocol object carries (e.g. `ℓmax(v)`
/// derived from degree knowledge — knowledge is part of the model, not of
/// the mutable state, so faults never corrupt it).
///
/// Nodes are anonymous: the `node` argument exists so the protocol can look
/// up that knowledge, and must not be used as an identity in the protocol
/// logic itself.
///
/// Protocols are `Send + Sync` (and so are their states): the parallel
/// scatter engine shares one protocol value across worker threads, each
/// driving a disjoint node range. Protocol objects are ROM — immutable
/// per-run knowledge — so the bound costs nothing for plain-data protocols.
pub trait BeepingProtocol: Send + Sync {
    /// Mutable per-node state (the RAM).
    type State: Clone + std::fmt::Debug + Send + Sync;

    /// How many channels the protocol uses.
    fn channels(&self) -> Channels;

    /// First half of a round: decide what to transmit.
    ///
    /// Must be a pure function of `(knowledge, state, randomness)` — the
    /// simulator calls it exactly once per node per round.
    fn transmit(&self, node: NodeId, state: &Self::State, rng: &mut dyn RngCore) -> BeepSignal;

    /// Second half of a round: update state given what this node itself sent
    /// (`sent`) and what it heard from neighbors (`heard`). Protocols that
    /// randomize their state transition (not just their transmission) draw
    /// from the same per-node stream `rng`.
    fn receive(
        &self,
        node: NodeId,
        state: &mut Self::State,
        sent: BeepSignal,
        heard: BeepSignal,
        rng: &mut dyn RngCore,
    );

    /// Declares `(state, heard)` a fixpoint the frontier engine may skip —
    /// see [`SettledRound`] for the exact obligations a `Some` return
    /// takes on.
    ///
    /// The default declares nothing settled, which is always sound: the
    /// frontier engine then re-executes every node every round (degrading
    /// to the full kernel) and stays bit-identical. Protocols with
    /// absorbing configurations (e.g. Algorithm 1's `ℓ = ±ℓmax` states)
    /// override this to unlock O(|frontier|) post-stabilization rounds.
    fn settled_round(
        &self,
        node: NodeId,
        state: &Self::State,
        heard: BeepSignal,
    ) -> Option<SettledRound> {
        let _ = (node, state, heard);
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signal_constructors() {
        assert!(BeepSignal::silent().is_silent());
        assert!(BeepSignal::channel1().on_channel1());
        assert!(!BeepSignal::channel1().on_channel2());
        assert!(BeepSignal::channel2().on_channel2());
        assert!(!BeepSignal::channel2().on_channel1());
        assert!(BeepSignal::both().on_channel1() && BeepSignal::both().on_channel2());
        assert_eq!(BeepSignal::new(true, false), BeepSignal::channel1());
        assert_eq!(BeepSignal::new(false, true), BeepSignal::channel2());
        assert_eq!(BeepSignal::new(true, true), BeepSignal::both());
        assert_eq!(BeepSignal::new(false, false), BeepSignal::silent());
        assert_eq!(BeepSignal::default(), BeepSignal::silent());
    }

    #[test]
    fn merge_is_or() {
        let mut s = BeepSignal::silent();
        s.merge(BeepSignal::channel1());
        assert_eq!(s, BeepSignal::channel1());
        s.merge(BeepSignal::channel2());
        assert_eq!(s, BeepSignal::both());
        s.merge(BeepSignal::silent());
        assert_eq!(s, BeepSignal::both());
    }

    #[test]
    fn channel_discipline() {
        assert!(BeepSignal::channel1().allowed_by(Channels::One));
        assert!(BeepSignal::silent().allowed_by(Channels::One));
        assert!(!BeepSignal::channel2().allowed_by(Channels::One));
        assert!(!BeepSignal::both().allowed_by(Channels::One));
        assert!(BeepSignal::both().allowed_by(Channels::Two));
    }

    #[test]
    fn channel_counts() {
        assert_eq!(Channels::One.count(), 1);
        assert_eq!(Channels::Two.count(), 2);
    }

    #[test]
    fn full_signal_covers_declared_channels() {
        assert_eq!(Channels::One.full_signal(), BeepSignal::channel1());
        assert_eq!(Channels::Two.full_signal(), BeepSignal::both());
        assert!(Channels::One.full_signal().allowed_by(Channels::One));
        assert!(Channels::Two.full_signal().allowed_by(Channels::Two));
    }

    #[test]
    fn display() {
        assert_eq!(BeepSignal::silent().to_string(), "silent");
        assert_eq!(BeepSignal::channel1().to_string(), "beep1");
        assert_eq!(BeepSignal::channel2().to_string(), "beep2");
        assert_eq!(BeepSignal::both().to_string(), "beep1+2");
    }
}
