//! Discrete synchronous simulator for the **full-duplex beeping model with
//! collision detection** (also: "beeping model", Cornejo & Kuhn 2010), the
//! communication model of the reproduced paper.
//!
//! Model semantics (paper §1):
//!
//! - The network is an anonymous undirected graph; computation proceeds in
//!   synchronous rounds.
//! - In each round every node may *beep* (broadcast a signal to all
//!   neighbors) or stay silent.
//! - After transmission, a node learns exactly one bit per channel: whether
//!   **at least one** neighbor beeped. It cannot count beeps or identify
//!   senders. Full duplex: a beeping node still hears its neighbors (but not
//!   itself — the signal goes to neighbors only).
//! - An optional extension provides **two distinguishable channels**
//!   (paper §7); the bit is learned independently per channel.
//!
//! The crate provides:
//!
//! - [`protocol::BeepingProtocol`]: the node-automaton interface protocols
//!   implement;
//! - [`sim::Simulator`]: round execution over a [`graphs::Graph`] with
//!   deterministic per-node randomness;
//! - [`faults`]: the transient-fault model of the paper (§1.1): node state
//!   (RAM) can be corrupted arbitrarily, code (ROM) cannot;
//! - [`channel`]: the unreliable-channel adversary — beep loss, spurious
//!   beeps, Gilbert burst noise and jammer nodes — applied between the
//!   network's OR-aggregation and each node's `receive`;
//! - [`churn`]: scheduled topology churn (edge insert/delete, node
//!   leave/join) applied to a copy-on-write graph mid-execution;
//! - [`dynamic`]: the mobility driver — keeps a simulator's topology
//!   synchronized with a moving geometric deployment
//!   ([`graphs::motion`]) via batched per-round edge diffs;
//! - [`byzantine`]: permanently deviating nodes — stuck beepers, babblers,
//!   crash-restart reboots and channel-2 liars — overriding the protocol's
//!   radio behavior inside the round loop;
//! - [`trace`]: per-round observations for the analysis experiments;
//! - [`rng`]: deterministic per-node random streams.
//!
//! The four fault axes — RAM corruption, channel noise, topology churn,
//! Byzantine behavior — are orthogonal and compose; see `DESIGN.md`
//! ("Fault & adversary model").
//!
//! # Example
//!
//! ```
//! use beeping::protocol::{BeepSignal, BeepingProtocol, Channels};
//! use beeping::sim::Simulator;
//!
//! /// Toy protocol: everyone beeps every round.
//! struct AlwaysBeep;
//! impl BeepingProtocol for AlwaysBeep {
//!     type State = ();
//!     fn channels(&self) -> Channels { Channels::One }
//!     fn transmit(&self, _: usize, _: &(), _: &mut dyn rand::RngCore) -> BeepSignal {
//!         BeepSignal::channel1()
//!     }
//!     fn receive(&self, _: usize, _: &mut (), _: BeepSignal, heard: BeepSignal, _: &mut dyn rand::RngCore) {
//!         assert!(heard.on_channel1()); // in a connected graph everyone hears
//!     }
//! }
//!
//! let g = graphs::generators::classic::cycle(8);
//! let mut sim = Simulator::new(&g, AlwaysBeep, vec![(); 8], 1);
//! let report = sim.step();
//! assert_eq!(report.beeps_channel1, 8);
//! ```

pub mod byzantine;
pub mod channel;
pub mod churn;
pub mod dynamic;
pub mod faults;
pub(crate) mod par;
pub mod protocol;
pub mod rng;
pub mod sim;
pub mod sleep;
pub mod trace;

pub use byzantine::{ByzantineBehavior, ByzantineError, ByzantinePlan, Resurrect};
pub use channel::{BurstNoise, ChannelFault, ChannelState, JammerKind};
pub use churn::{ChurnAction, ChurnError, ChurnEvent, ChurnPlan};
pub use faults::{FaultError, FaultPlan, FaultTarget, TransientFault};
pub use protocol::{BeepSignal, BeepingProtocol, Channels, SettledRound};
pub use sim::{
    frontier_fallback_threshold, Checkpoint, DuplexMode, EngineMode, RestoreError, Simulator,
    WorkCounters,
};
