//! Per-round observations for analysis experiments.

use crate::protocol::BeepSignal;

/// Aggregate activity of one simulated round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoundReport {
    /// 1-based index of the round this report describes.
    pub round: u64,
    /// Nodes that beeped on channel 1.
    pub beeps_channel1: usize,
    /// Nodes that beeped on channel 2.
    pub beeps_channel2: usize,
    /// Nodes that heard at least one channel-1 beep.
    pub hearers_channel1: usize,
    /// Nodes that heard at least one channel-2 beep.
    pub hearers_channel2: usize,
    /// Nodes that beeped (any channel) while hearing nothing on channel 1 —
    /// in Algorithm 1 these are exactly the MIS *join attempts* of the round.
    pub lone_beepers: usize,
}

impl RoundReport {
    /// Computes the report from the transmission and observation vectors of
    /// a round.
    pub fn from_signals(round: u64, sent: &[BeepSignal], heard: &[BeepSignal]) -> RoundReport {
        let mut r = RoundReport { round, ..RoundReport::default() };
        for (&s, &h) in sent.iter().zip(heard) {
            if s.on_channel1() {
                r.beeps_channel1 += 1;
            }
            if s.on_channel2() {
                r.beeps_channel2 += 1;
            }
            if h.on_channel1() {
                r.hearers_channel1 += 1;
            }
            if h.on_channel2() {
                r.hearers_channel2 += 1;
            }
            if !s.is_silent() && !h.on_channel1() {
                r.lone_beepers += 1;
            }
        }
        r
    }

    /// Total beeps across both channels.
    pub fn total_beeps(&self) -> usize {
        self.beeps_channel1 + self.beeps_channel2
    }
}

/// Collects [`RoundReport`]s over an execution, with simple aggregate
/// queries used by experiment drivers.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    reports: Vec<RoundReport>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Appends a round report.
    pub fn push(&mut self, report: RoundReport) {
        self.reports.push(report);
    }

    /// All recorded reports in round order.
    pub fn reports(&self) -> &[RoundReport] {
        &self.reports
    }

    /// Number of recorded rounds.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// `true` if nothing is recorded yet.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// Sum of channel-1 beeps over the execution — the total message
    /// (energy) cost in the beeping model.
    pub fn total_beeps_channel1(&self) -> usize {
        self.reports.iter().map(|r| r.beeps_channel1).sum()
    }

    /// Sum over rounds of lone beepers (MIS join attempts for Algorithm 1).
    pub fn total_lone_beepers(&self) -> usize {
        self.reports.iter().map(|r| r.lone_beepers).sum()
    }

    /// Average channel-1 beeps per round (0.0 for an empty trace).
    pub fn mean_beeps_channel1(&self) -> f64 {
        if self.reports.is_empty() {
            0.0
        } else {
            self.total_beeps_channel1() as f64 / self.reports.len() as f64
        }
    }
}

impl Extend<RoundReport> for Trace {
    fn extend<I: IntoIterator<Item = RoundReport>>(&mut self, iter: I) {
        self.reports.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_from_signals() {
        let sent = vec![BeepSignal::channel1(), BeepSignal::silent(), BeepSignal::both()];
        let heard = vec![BeepSignal::silent(), BeepSignal::channel1(), BeepSignal::channel2()];
        let r = RoundReport::from_signals(3, &sent, &heard);
        assert_eq!(r.round, 3);
        assert_eq!(r.beeps_channel1, 2);
        assert_eq!(r.beeps_channel2, 1);
        assert_eq!(r.hearers_channel1, 1);
        assert_eq!(r.hearers_channel2, 1);
        // Node 0 beeped and heard nothing; node 2 beeped and heard only ch2.
        assert_eq!(r.lone_beepers, 2);
        assert_eq!(r.total_beeps(), 3);
    }

    #[test]
    fn trace_aggregates() {
        let mut t = Trace::new();
        assert!(t.is_empty());
        assert_eq!(t.mean_beeps_channel1(), 0.0);
        t.push(RoundReport { round: 1, beeps_channel1: 4, lone_beepers: 1, ..Default::default() });
        t.push(RoundReport { round: 2, beeps_channel1: 2, lone_beepers: 0, ..Default::default() });
        assert_eq!(t.len(), 2);
        assert_eq!(t.total_beeps_channel1(), 6);
        assert_eq!(t.total_lone_beepers(), 1);
        assert!((t.mean_beeps_channel1() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn trace_extend() {
        let mut t = Trace::new();
        t.extend([RoundReport::default(), RoundReport::default()]);
        assert_eq!(t.len(), 2);
    }
}
