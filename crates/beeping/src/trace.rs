//! Per-round observations for analysis experiments.

use crate::protocol::BeepSignal;

/// Aggregate activity of one simulated round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoundReport {
    /// 1-based index of the round this report describes.
    pub round: u64,
    /// Nodes that beeped on channel 1.
    pub beeps_channel1: usize,
    /// Nodes that beeped on channel 2.
    pub beeps_channel2: usize,
    /// Nodes that heard at least one channel-1 beep.
    pub hearers_channel1: usize,
    /// Nodes that heard at least one channel-2 beep.
    pub hearers_channel2: usize,
    /// Nodes that beeped on channel 1 while hearing nothing on channel 1 —
    /// the paper's per-channel "beeped and heard nothing" event; in
    /// Algorithm 1 these are exactly the MIS *join attempts* of the round.
    pub lone_beepers: usize,
    /// Nodes that beeped on channel 2 while hearing nothing on channel 2 —
    /// the channel-2 lone-beep event driving Algorithm 2 (Cor 2.3).
    pub lone_beepers_channel2: usize,
}

impl RoundReport {
    /// Computes the report from the transmission and observation vectors of
    /// a round.
    pub fn from_signals(round: u64, sent: &[BeepSignal], heard: &[BeepSignal]) -> RoundReport {
        let mut r = RoundReport { round, ..RoundReport::default() };
        for (&s, &h) in sent.iter().zip(heard) {
            if s.on_channel1() {
                r.beeps_channel1 += 1;
            }
            if s.on_channel2() {
                r.beeps_channel2 += 1;
            }
            if h.on_channel1() {
                r.hearers_channel1 += 1;
            }
            if h.on_channel2() {
                r.hearers_channel2 += 1;
            }
            // Lone beeps are per-channel events: a channel-2 beeper that
            // hears only channel 2 is *not* a channel-1 lone beeper (the
            // old `!s.is_silent()` test conflated the channels and
            // miscounted two-channel runs).
            if s.on_channel1() && !h.on_channel1() {
                r.lone_beepers += 1;
            }
            if s.on_channel2() && !h.on_channel2() {
                r.lone_beepers_channel2 += 1;
            }
        }
        r
    }

    /// Total beeps across both channels.
    pub fn total_beeps(&self) -> usize {
        self.beeps_channel1 + self.beeps_channel2
    }
}

/// Collects [`RoundReport`]s over an execution, with simple aggregate
/// queries used by experiment drivers.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    reports: Vec<RoundReport>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Appends a round report.
    pub fn push(&mut self, report: RoundReport) {
        self.reports.push(report);
    }

    /// All recorded reports in round order.
    pub fn reports(&self) -> &[RoundReport] {
        &self.reports
    }

    /// Number of recorded rounds.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// `true` if nothing is recorded yet.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// Sum of channel-1 beeps over the execution — the total message
    /// (energy) cost in the beeping model.
    pub fn total_beeps_channel1(&self) -> usize {
        self.reports.iter().map(|r| r.beeps_channel1).sum()
    }

    /// Sum over rounds of channel-1 lone beepers (MIS join attempts for
    /// Algorithm 1).
    pub fn total_lone_beepers(&self) -> usize {
        self.reports.iter().map(|r| r.lone_beepers).sum()
    }

    /// Sum over rounds of channel-2 lone beepers (Algorithm 2's per-round
    /// "beeped on channel 2, heard no channel 2" events).
    pub fn total_lone_beepers_channel2(&self) -> usize {
        self.reports.iter().map(|r| r.lone_beepers_channel2).sum()
    }

    /// Average channel-1 beeps per round (0.0 for an empty trace).
    pub fn mean_beeps_channel1(&self) -> f64 {
        if self.reports.is_empty() {
            0.0
        } else {
            self.total_beeps_channel1() as f64 / self.reports.len() as f64
        }
    }
}

impl Extend<RoundReport> for Trace {
    fn extend<I: IntoIterator<Item = RoundReport>>(&mut self, iter: I) {
        self.reports.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_from_signals() {
        // Node 3 beeps only on channel 2 and hears nothing: it is a
        // channel-2 lone beeper, NOT a channel-1 one (the pre-fix counter
        // wrongly counted it in `lone_beepers`).
        let sent = vec![
            BeepSignal::channel1(),
            BeepSignal::silent(),
            BeepSignal::both(),
            BeepSignal::channel2(),
        ];
        let heard = vec![
            BeepSignal::silent(),
            BeepSignal::channel1(),
            BeepSignal::channel2(),
            BeepSignal::silent(),
        ];
        let r = RoundReport::from_signals(3, &sent, &heard);
        assert_eq!(r.round, 3);
        assert_eq!(r.beeps_channel1, 2);
        assert_eq!(r.beeps_channel2, 2);
        assert_eq!(r.hearers_channel1, 1);
        assert_eq!(r.hearers_channel2, 1);
        // Channel-1 lone beepers: node 0 (beeped c1, heard nothing) and
        // node 2 (beeped c1 as part of `both`, heard only c2).
        assert_eq!(r.lone_beepers, 2);
        // Channel-2 lone beepers: node 3 only — node 2 heard a c2 beep.
        assert_eq!(r.lone_beepers_channel2, 1);
        assert_eq!(r.total_beeps(), 4);
    }

    #[test]
    fn lone_beeps_are_counted_per_channel() {
        // A node beeping c2-only that hears only c2 is lone on neither
        // channel; one that hears only c1 is lone on channel 2 exactly.
        let sent = vec![BeepSignal::channel2(), BeepSignal::channel2()];
        let heard = vec![BeepSignal::channel2(), BeepSignal::channel1()];
        let r = RoundReport::from_signals(1, &sent, &heard);
        assert_eq!(r.lone_beepers, 0);
        assert_eq!(r.lone_beepers_channel2, 1);
    }

    #[test]
    fn trace_aggregates() {
        let mut t = Trace::new();
        assert!(t.is_empty());
        assert_eq!(t.mean_beeps_channel1(), 0.0);
        t.push(RoundReport {
            round: 1,
            beeps_channel1: 4,
            lone_beepers: 1,
            lone_beepers_channel2: 2,
            ..Default::default()
        });
        t.push(RoundReport { round: 2, beeps_channel1: 2, lone_beepers: 0, ..Default::default() });
        assert_eq!(t.len(), 2);
        assert_eq!(t.total_beeps_channel1(), 6);
        assert_eq!(t.total_lone_beepers(), 1);
        assert_eq!(t.total_lone_beepers_channel2(), 2);
        assert!((t.mean_beeps_channel1() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn trace_extend() {
        let mut t = Trace::new();
        t.extend([RoundReport::default(), RoundReport::default()]);
        assert_eq!(t.len(), 2);
    }
}
