//! Parallel sharded scatter kernel — the engine behind
//! [`EngineMode::ParScatter`](crate::sim::EngineMode::ParScatter).
//!
//! # Layout
//!
//! The node range is partitioned by [`graphs::ShardPlan`] into cache-sized,
//! degree-balanced shards whose boundaries sit on multiples of 64, then
//! grouped into one contiguous run of shards per worker. Word alignment is
//! what makes the data decomposition safe: every per-node array (`states`,
//! `rngs`, `sent`, `heard`) *and* every word-packed per-channel bitset can
//! be split at worker boundaries into disjoint `&mut` slices, so the whole
//! kernel is expressible with `std::thread::scope` and `split_at_mut` —
//! no locks, no atomics, no unsafe.
//!
//! # Two-phase round
//!
//! **Phase 1 (transmit + scatter).** Each worker walks its own node range,
//! drawing transmissions from the per-node RNG streams it exclusively owns
//! and scattering each beeper's signal into *thread-local* full-length word
//! accumulators. Writes to a shared "heard" bitset would race (a beeper's
//! neighbors live in other workers' ranges); thread-local accumulators make
//! every phase-1 write private.
//!
//! **Phase 2 (merge + gather + receive).** Each worker OR-merges all
//! workers' accumulators — in fixed worker order — over its *own* word
//! range into the shared heard bitsets, masks them with the packed
//! participation bitset, then immediately gathers its nodes' bits and runs
//! `receive`. The fusion is sound because the gather for node `v` reads
//! only word `v / 64`, which lies in the worker's own word range.
//!
//! # Determinism
//!
//! Same-seed runs are bit-identical to the sequential engines at any
//! thread count:
//!
//! - every node's randomness comes from its private stream ([`crate::rng`]),
//!   so execution order across nodes cannot change what any node draws;
//! - per-channel delivery is an OR — commutative and associative — so the
//!   merge order over accumulators cannot change any heard bit;
//! - report and work totals are sums of per-node indicators, accumulated
//!   per worker and added up in fixed worker order on the calling thread.
//!
//! The kernel is only entered on fault-free rounds: channel noise and
//! Byzantine behavior draw from shared streams in strict node order, which
//! a parallel sweep cannot preserve, so those rounds run the phased
//! sequential path instead (see `Simulator::step`).

use std::ops::Range;

use graphs::{Graph, ShardPlan};
use rand_pcg::Pcg64Mcg;

use crate::protocol::{BeepSignal, BeepingProtocol, Channels};
use crate::sim::WorkCounters;
use crate::trace::RoundReport;

/// Persistent bookkeeping of the parallel kernel: the worker ranges and the
/// reusable thread-local accumulators. Rebuilt when the topology or the
/// configured thread count changes; never part of a checkpoint.
#[derive(Debug)]
pub(crate) struct ParPlan {
    /// Cache key: the plan is valid for this (n, degree_sum, threads).
    n: usize,
    degree_sum: usize,
    threads: usize,
    /// One contiguous, word-aligned, work-balanced node range per worker.
    ranges: Vec<Range<usize>>,
    /// Thread-local per-channel word accumulators, `[worker][word]`,
    /// full-length so any worker can scatter to any neighbor.
    locals1: Vec<Vec<u64>>,
    locals2: Vec<Vec<u64>>,
}

impl ParPlan {
    /// Builds the worker decomposition for `graph` and `threads` workers
    /// (clamped to at least 1; tiny graphs may yield fewer ranges).
    pub(crate) fn build(graph: &Graph, threads: usize) -> ParPlan {
        let threads = threads.max(1);
        let ranges = ShardPlan::cache_sized(graph, threads).worker_ranges(threads);
        let workers = ranges.len();
        ParPlan {
            n: graph.len(),
            degree_sum: graph.degree_sum(),
            threads,
            ranges,
            locals1: vec![Vec::new(); workers],
            locals2: vec![Vec::new(); workers],
        }
    }

    /// `true` if the plan is still valid for this topology + thread count.
    pub(crate) fn matches(&self, graph: &Graph, threads: usize) -> bool {
        self.n == graph.len()
            && self.degree_sum == graph.degree_sum()
            && self.threads == threads.max(1)
    }
}

/// Per-worker partial totals, summed in worker order by [`run_round`].
#[derive(Debug, Default, Clone, Copy)]
struct WorkerTally {
    beeps1: usize,
    beeps2: usize,
    hearers1: usize,
    hearers2: usize,
    lone1: usize,
    lone2: usize,
    node_execs: u64,
    edge_visits: u64,
}

/// Splits `slice` into one disjoint `&mut` piece per worker range.
///
/// The ranges are contiguous and cover `0..slice.len()` (a [`ShardPlan`]
/// invariant), so this is a chain of `split_at_mut` calls.
fn split_by_ranges<'a, T>(mut slice: &'a mut [T], ranges: &[Range<usize>]) -> Vec<&'a mut [T]> {
    let mut parts = Vec::with_capacity(ranges.len());
    for r in ranges {
        let (head, tail) = std::mem::take(&mut slice).split_at_mut(r.end - r.start);
        parts.push(head);
        slice = tail;
    }
    parts
}

/// Executes one fault-free round across the plan's workers. See the module
/// docs for the phase structure and the determinism argument.
///
/// `heard1`/`heard2` are the simulator's shared per-channel bitsets (resized
/// and overwritten here); `active`/`active_bits` are the participation
/// bitmap and its word-packed mirror; `round` is the 1-based round being
/// executed, stamped into the report.
///
/// # Panics
///
/// Panics if the protocol transmits on an undeclared channel (a model
/// violation, exactly as on the sequential engines). A panic on a worker
/// thread propagates to the caller when the scope joins.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_round<P: BeepingProtocol>(
    plan: &mut ParPlan,
    graph: &Graph,
    protocol: &P,
    channels: Channels,
    full_duplex: bool,
    round: u64,
    active: &[bool],
    active_bits: &[u64],
    states: &mut [P::State],
    rngs: &mut [Pcg64Mcg],
    sent: &mut [BeepSignal],
    heard: &mut [BeepSignal],
    heard1: &mut Vec<u64>,
    heard2: &mut Vec<u64>,
) -> (RoundReport, WorkCounters) {
    let n = graph.len();
    let words = n.div_ceil(64);
    let two = channels == Channels::Two;
    heard1.clear();
    heard1.resize(words, 0);
    heard2.clear();
    heard2.resize(words, 0);
    let workers = plan.ranges.len();
    let mut tallies = vec![WorkerTally::default(); workers];

    // Phase 1: transmit + scatter into thread-local accumulators. Workers
    // exclusively own their range's RNG and `sent` slices; `states` and the
    // graph are shared read-only.
    {
        let rng_parts = split_by_ranges(rngs, &plan.ranges);
        let sent_parts = split_by_ranges(sent, &plan.ranges);
        let states_ro: &[P::State] = states;
        std::thread::scope(|scope| {
            let jobs = plan
                .ranges
                .iter()
                .zip(rng_parts)
                .zip(sent_parts)
                .zip(plan.locals1.iter_mut())
                .zip(plan.locals2.iter_mut())
                .zip(tallies.iter_mut());
            for (((((range, rngs_w), sent_w), local1), local2), tally) in jobs {
                scope.spawn(move || {
                    local1.clear();
                    local1.resize(words, 0);
                    if two {
                        local2.clear();
                        local2.resize(words, 0);
                    }
                    for (i, v) in range.clone().enumerate() {
                        let signal = if active[v] {
                            tally.node_execs += 1;
                            let s = protocol.transmit(v, &states_ro[v], &mut rngs_w[i]);
                            assert!(
                                s.allowed_by(channels),
                                "protocol beeped on an undeclared channel (node {v}, signal {s})"
                            );
                            s
                        } else {
                            BeepSignal::silent()
                        };
                        sent_w[i] = signal;
                        if signal.is_silent() {
                            continue;
                        }
                        if signal.on_channel1() {
                            tally.beeps1 += 1;
                            tally.edge_visits += graph.degree(v) as u64;
                            for &w in graph.neighbors(v) {
                                local1[(w >> 6) as usize] |= 1u64 << (w & 63);
                            }
                        }
                        if signal.on_channel2() {
                            tally.beeps2 += 1;
                            tally.edge_visits += graph.degree(v) as u64;
                            for &w in graph.neighbors(v) {
                                local2[(w >> 6) as usize] |= 1u64 << (w & 63);
                            }
                        }
                    }
                });
            }
        });
    }

    // Phase 2: merge + gather + receive. The accumulators are now shared
    // read-only; the shared heard bitsets are split at the (word-aligned)
    // worker boundaries, so merging and gathering fuse without a barrier
    // between them — a worker only ever gathers words it just merged.
    {
        let locals1: &[Vec<u64>] = &plan.locals1;
        let locals2: &[Vec<u64>] = &plan.locals2;
        let sent_ro: &[BeepSignal] = sent;
        let state_parts = split_by_ranges(states, &plan.ranges);
        let rng_parts = split_by_ranges(rngs, &plan.ranges);
        let heard_parts = split_by_ranges(heard, &plan.ranges);
        let word_ranges: Vec<Range<usize>> =
            plan.ranges.iter().map(|r| (r.start >> 6)..r.end.div_ceil(64)).collect();
        let heard1_parts = split_by_ranges(heard1, &word_ranges);
        let heard2_parts = split_by_ranges(heard2, &word_ranges);
        std::thread::scope(|scope| {
            let jobs = plan
                .ranges
                .iter()
                .zip(state_parts)
                .zip(rng_parts)
                .zip(heard_parts)
                .zip(heard1_parts)
                .zip(heard2_parts)
                .zip(tallies.iter_mut());
            for ((((((range, states_w), rngs_w), heard_w), heard1_w), heard2_w), tally) in jobs {
                scope.spawn(move || {
                    let word_start = range.start >> 6;
                    // Merge, masking departed listeners at word granularity
                    // with the packed participation bitset.
                    for (i, dst) in heard1_w.iter_mut().enumerate() {
                        let w = word_start + i;
                        let mut acc = 0u64;
                        for local in locals1 {
                            acc |= local[w];
                        }
                        *dst = acc & active_bits[w];
                    }
                    if two {
                        for (i, dst) in heard2_w.iter_mut().enumerate() {
                            let w = word_start + i;
                            let mut acc = 0u64;
                            for local in locals2 {
                                acc |= local[w];
                            }
                            *dst = acc & active_bits[w];
                        }
                    }
                    // Gather + receive over the worker's own nodes.
                    for (i, v) in range.clone().enumerate() {
                        let s = sent_ro[v];
                        let h = if full_duplex || s.is_silent() {
                            let word = (v >> 6) - word_start;
                            let bit = 1u64 << (v & 63);
                            BeepSignal::new(
                                heard1_w[word] & bit != 0,
                                two && heard2_w[word] & bit != 0,
                            )
                        } else {
                            BeepSignal::silent()
                        };
                        heard_w[i] = h;
                        tally.hearers1 += h.on_channel1() as usize;
                        tally.hearers2 += h.on_channel2() as usize;
                        tally.lone1 += (s.on_channel1() && !h.on_channel1()) as usize;
                        tally.lone2 += (s.on_channel2() && !h.on_channel2()) as usize;
                        if active[v] {
                            protocol.receive(v, &mut states_w[i], s, h, &mut rngs_w[i]);
                        }
                    }
                });
            }
        });
    }

    // Deterministic reduction: fixed worker order, and every total is a sum
    // of per-node indicators, so the value is independent of thread timing.
    let mut report = RoundReport { round, ..RoundReport::default() };
    let mut work = WorkCounters::default();
    for t in &tallies {
        report.beeps_channel1 += t.beeps1;
        report.beeps_channel2 += t.beeps2;
        report.hearers_channel1 += t.hearers1;
        report.hearers_channel2 += t.hearers2;
        report.lone_beepers += t.lone1;
        report.lone_beepers_channel2 += t.lone2;
        work.node_execs += t.node_execs;
        work.edge_visits += t.edge_visits;
    }
    (report, work)
}
