//! Adversarial wake-up: nodes start asleep and join the protocol at
//! adversary-chosen rounds.
//!
//! The reproduced paper distinguishes itself from Afek et al.'s
//! polynomial *lower bound* precisely on this point (§1): that bound holds
//! in a model where "an adversary \[is\] able to select the wake-up time
//! slots for the vertices", and "because of the presence of the adversary,
//! the lower bound … is not applicable in the setting of this paper".
//! A self-stabilizing algorithm nevertheless handles wake-up schedules for
//! free: a sleeping node is indistinguishable from a node whose state is
//! pinned, so stabilization counted from the *last* wake-up is just
//! stabilization from an arbitrary configuration.
//!
//! [`Sleepy`] wraps any [`BeepingProtocol`]: a node holding a positive
//! sleep counter is silent and deaf (its inner state frozen); each round
//! decrements the counter; at zero the node runs the inner protocol
//! normally. The counter lives in the wrapped state, so no simulator
//! changes are needed and fault injection composes.

use graphs::NodeId;
use rand::RngCore;

use crate::protocol::{BeepSignal, BeepingProtocol, Channels};

/// Per-node state of a [`Sleepy`]-wrapped protocol.
#[derive(Debug, Clone)]
pub struct SleepyState<S> {
    /// Rounds left to sleep; the node participates once this reaches 0.
    pub remaining_sleep: u64,
    /// The inner protocol's state (frozen while asleep).
    pub inner: S,
}

impl<S> SleepyState<S> {
    /// A node that wakes after `sleep` rounds with the given inner state.
    pub fn new(sleep: u64, inner: S) -> SleepyState<S> {
        SleepyState { remaining_sleep: sleep, inner }
    }

    /// A node that participates from round one.
    pub fn awake(inner: S) -> SleepyState<S> {
        SleepyState::new(0, inner)
    }

    /// `true` once the node participates.
    pub fn is_awake(&self) -> bool {
        self.remaining_sleep == 0
    }
}

/// Wraps a protocol with adversarial wake-up semantics.
///
/// # Example
///
/// ```
/// use beeping::sleep::{Sleepy, SleepyState};
/// use beeping::Simulator;
/// use graphs::generators::classic;
/// use mis_like_doc_stub::*;
/// # mod mis_like_doc_stub {
/// #     use beeping::protocol::*;
/// #     use rand::RngCore;
/// #     pub struct Noop;
/// #     impl BeepingProtocol for Noop {
/// #         type State = ();
/// #         fn channels(&self) -> Channels { Channels::One }
/// #         fn transmit(&self, _: usize, _: &(), _: &mut dyn RngCore) -> BeepSignal {
/// #             BeepSignal::channel1()
/// #         }
/// #         fn receive(&self, _: usize, _: &mut (), _: BeepSignal, _: BeepSignal, _: &mut dyn RngCore) {}
/// #     }
/// # }
///
/// let g = classic::path(2);
/// let init = vec![SleepyState::new(3, ()), SleepyState::awake(())];
/// let mut sim = Simulator::new(&g, Sleepy::new(Noop), init, 1);
/// let report = sim.step();
/// assert_eq!(report.beeps_channel1, 1); // only the awake node beeps
/// ```
#[derive(Debug, Clone)]
pub struct Sleepy<P> {
    inner: P,
}

impl<P> Sleepy<P> {
    /// Wraps `inner`.
    pub fn new(inner: P) -> Sleepy<P> {
        Sleepy { inner }
    }

    /// The wrapped protocol.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P: BeepingProtocol> BeepingProtocol for Sleepy<P> {
    type State = SleepyState<P::State>;

    fn channels(&self) -> Channels {
        self.inner.channels()
    }

    fn transmit(&self, node: NodeId, state: &Self::State, rng: &mut dyn RngCore) -> BeepSignal {
        if state.is_awake() {
            self.inner.transmit(node, &state.inner, rng)
        } else {
            BeepSignal::silent()
        }
    }

    fn receive(
        &self,
        node: NodeId,
        state: &mut Self::State,
        sent: BeepSignal,
        heard: BeepSignal,
        rng: &mut dyn RngCore,
    ) {
        if state.is_awake() {
            self.inner.receive(node, &mut state.inner, sent, heard, rng);
        } else {
            state.remaining_sleep -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;
    use graphs::generators::classic;

    /// Counter protocol: beeps always, counts heard beeps.
    struct Count;
    impl BeepingProtocol for Count {
        type State = u64;
        fn channels(&self) -> Channels {
            Channels::One
        }
        fn transmit(&self, _: NodeId, _: &u64, _: &mut dyn RngCore) -> BeepSignal {
            BeepSignal::channel1()
        }
        fn receive(
            &self,
            _: NodeId,
            s: &mut u64,
            _: BeepSignal,
            heard: BeepSignal,
            _: &mut dyn RngCore,
        ) {
            if heard.on_channel1() {
                *s += 1;
            }
        }
    }

    #[test]
    fn sleeping_nodes_are_silent_and_deaf() {
        let g = classic::path(2);
        let init = vec![SleepyState::new(5, 0u64), SleepyState::awake(0u64)];
        let mut sim = Simulator::new(&g, Sleepy::new(Count), init, 0);
        for round in 1..=5u64 {
            let report = sim.step();
            assert_eq!(report.beeps_channel1, 1, "round {round}");
        }
        // Node 0 heard nothing while asleep; node 1 heard nothing (its only
        // neighbor slept).
        assert_eq!(sim.state(0).inner, 0);
        assert_eq!(sim.state(1).inner, 0);
        assert!(sim.state(0).is_awake());
        // Both awake now: both beep, both hear.
        sim.step();
        assert_eq!(sim.state(0).inner, 1);
        assert_eq!(sim.state(1).inner, 1);
    }

    #[test]
    fn wake_counter_decrements_exactly() {
        let g = classic::path(2);
        let init = vec![SleepyState::new(3, 0u64), SleepyState::awake(0u64)];
        let mut sim = Simulator::new(&g, Sleepy::new(Count), init, 0);
        sim.step();
        assert_eq!(sim.state(0).remaining_sleep, 2);
        sim.step();
        sim.step();
        assert_eq!(sim.state(0).remaining_sleep, 0);
        assert!(sim.state(0).is_awake());
    }

    #[test]
    fn all_awake_behaves_like_inner() {
        let g = classic::cycle(5);
        let wrapped_init: Vec<_> = (0..5).map(|_| SleepyState::awake(0u64)).collect();
        let mut wrapped = Simulator::new(&g, Sleepy::new(Count), wrapped_init, 7);
        let mut plain = Simulator::new(&g, Count, vec![0u64; 5], 7);
        for _ in 0..20 {
            wrapped.step();
            plain.step();
        }
        let unwrapped: Vec<u64> = wrapped.states().iter().map(|s| s.inner).collect();
        assert_eq!(unwrapped, plain.states());
    }
}
