//! The unreliable-channel adversary: beep loss, spurious beeps, correlated
//! burst noise and jammer nodes.
//!
//! The paper's model assumes a perfectly reliable channel; the broader
//! beeping literature (Cornejo–Haeupler–Kuhn; Afek et al.) motivates beeps
//! precisely as a *weak, unreliable* primitive. This module models that
//! unreliability as a second, orthogonal fault axis next to the RAM
//! corruption of [`crate::faults`]:
//!
//! - **false negatives** — each directed beep delivery is lost independently
//!   with probability [`ChannelFault::drop_p`] (all channels of that
//!   delivery interfere away together);
//! - **false positives** — each listening node hears a spurious beep on each
//!   declared channel with probability [`ChannelFault::spurious_p`];
//! - **correlated bursts** — a two-state Gilbert process ([`BurstNoise`])
//!   switches the network between a good window (base `drop_p`) and a bad
//!   window with its own, typically much higher, loss rate;
//! - **jammers** — Byzantine transmitters ([`JammerKind`]) whose radio
//!   ignores the protocol: always beeping on every declared channel, or
//!   permanently dead.
//!
//! The model is pure configuration; the per-execution randomness comes from
//! the simulator's dedicated channel RNG stream (independent of every node
//! stream, so enabling noise never perturbs the protocol's own coin flips),
//! and the Gilbert window position lives in [`ChannelState`] so checkpoints
//! can capture it.
//!
//! # Example
//!
//! ```
//! use beeping::channel::{BurstNoise, ChannelFault, JammerKind};
//!
//! let channel = ChannelFault::reliable()
//!     .with_drop(0.05)
//!     .with_spurious(0.001)
//!     .with_burst(BurstNoise { p_enter: 0.01, p_exit: 0.2, drop_p: 0.8 })
//!     .with_jammer(3, JammerKind::AlwaysBeep);
//! assert!(!channel.is_reliable());
//! assert_eq!(channel.jammer(3), Some(JammerKind::AlwaysBeep));
//! assert_eq!(channel.jammer(0), None);
//! ```

use graphs::NodeId;
use rand::Rng;
use rand_pcg::Pcg64Mcg;

/// Byzantine radio behavior of a jammer node.
///
/// A jammer's *transmitter* is faulty, not its RAM: the protocol still runs
/// (and still updates state from the overridden `sent` value), but what
/// reaches the air is fixed by the adversary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JammerKind {
    /// Beeps on every declared channel every round.
    AlwaysBeep,
    /// Never emits anything (a dead radio); the node still listens.
    AlwaysSilent,
}

/// Two-state Gilbert burst-noise process.
///
/// The network starts in the *good* state. Each round it enters the *bad*
/// state with probability `p_enter`, and leaves it with probability
/// `p_exit`; while bad, the beep-loss probability is this struct's `drop_p`
/// instead of the channel's base rate. Expected bad-window length is
/// `1 / p_exit` rounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstNoise {
    /// Per-round probability of entering the bad window.
    pub p_enter: f64,
    /// Per-round probability of leaving the bad window.
    pub p_exit: f64,
    /// Beep-loss probability while the bad window is live (replaces the
    /// channel's base `drop_p`).
    pub drop_p: f64,
}

/// Mutable per-execution state of the channel model: the Gilbert window
/// position. Owned by the simulator and captured by checkpoints.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelState {
    /// `true` while the burst process sits in its bad window.
    pub in_burst: bool,
}

/// Configuration of the unreliable channel, applied between the network's
/// OR-aggregation and each node's `receive` step.
///
/// The default ([`ChannelFault::reliable`]) is the paper's perfect channel;
/// a reliable channel draws **zero** random numbers, so enabling the
/// subsystem without noise reproduces pre-noise executions bit-for-bit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChannelFault {
    /// Per-(directed edge, round) beep-loss probability in the good window.
    pub drop_p: f64,
    /// Per-(node, round, channel) spurious heard-beep probability.
    pub spurious_p: f64,
    /// Optional correlated burst noise.
    pub burst: Option<BurstNoise>,
    /// Jammer roles by node id (at most one per node; last write wins).
    jammers: Vec<(NodeId, JammerKind)>,
}

impl ChannelFault {
    /// The perfect channel of the paper: no loss, no spurious beeps, no
    /// bursts, no jammers.
    pub fn reliable() -> ChannelFault {
        ChannelFault::default()
    }

    /// Sets the base beep-loss probability (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn with_drop(mut self, p: f64) -> ChannelFault {
        assert!((0.0..=1.0).contains(&p), "drop probability must be in [0,1], got {p}");
        self.drop_p = p;
        self
    }

    /// Sets the spurious-beep probability (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn with_spurious(mut self, p: f64) -> ChannelFault {
        assert!((0.0..=1.0).contains(&p), "spurious probability must be in [0,1], got {p}");
        self.spurious_p = p;
        self
    }

    /// Enables correlated burst noise (builder style).
    ///
    /// # Panics
    ///
    /// Panics if any of the burst probabilities is outside `[0, 1]`.
    pub fn with_burst(mut self, burst: BurstNoise) -> ChannelFault {
        for (name, p) in
            [("p_enter", burst.p_enter), ("p_exit", burst.p_exit), ("drop_p", burst.drop_p)]
        {
            assert!((0.0..=1.0).contains(&p), "burst {name} must be in [0,1], got {p}");
        }
        self.burst = Some(burst);
        self
    }

    /// Declares `node` a jammer of the given kind (builder style),
    /// replacing any previous role for that node.
    pub fn with_jammer(mut self, node: NodeId, kind: JammerKind) -> ChannelFault {
        if let Some(entry) = self.jammers.iter_mut().find(|(v, _)| *v == node) {
            entry.1 = kind;
        } else {
            self.jammers.push((node, kind));
        }
        self
    }

    /// The jammer role of `node`, if any.
    pub fn jammer(&self, node: NodeId) -> Option<JammerKind> {
        self.jammers.iter().find(|(v, _)| *v == node).map(|&(_, kind)| kind)
    }

    /// All declared jammers as `(node, kind)` pairs.
    pub fn jammers(&self) -> &[(NodeId, JammerKind)] {
        &self.jammers
    }

    /// `true` if this is the perfect channel: the simulator then skips every
    /// channel-RNG draw and reproduces noise-free executions exactly.
    pub fn is_reliable(&self) -> bool {
        self.drop_p == 0.0
            && self.spurious_p == 0.0
            && self.burst.is_none()
            && self.jammers.is_empty()
    }

    /// Advances the Gilbert window by one round. A no-op (zero RNG draws)
    /// without burst noise.
    pub fn advance_window(&self, state: &mut ChannelState, rng: &mut Pcg64Mcg) {
        if let Some(burst) = &self.burst {
            let flip = if state.in_burst { burst.p_exit } else { burst.p_enter };
            if flip > 0.0 && rng.gen_bool(flip) {
                state.in_burst = !state.in_burst;
            }
        }
    }

    /// The beep-loss probability in effect for the current round.
    pub fn effective_drop(&self, state: &ChannelState) -> f64 {
        match &self.burst {
            Some(burst) if state.in_burst => burst.drop_p,
            _ => self.drop_p,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::aux_rng;

    #[test]
    fn reliable_channel_is_reliable() {
        let c = ChannelFault::reliable();
        assert!(c.is_reliable());
        assert_eq!(c.effective_drop(&ChannelState::default()), 0.0);
        assert!(c.jammers().is_empty());
    }

    #[test]
    fn builders_set_fields() {
        let c = ChannelFault::reliable().with_drop(0.1).with_spurious(0.01);
        assert!(!c.is_reliable());
        assert_eq!(c.drop_p, 0.1);
        assert_eq!(c.spurious_p, 0.01);
    }

    #[test]
    fn jammer_roles_last_write_wins() {
        let c = ChannelFault::reliable()
            .with_jammer(2, JammerKind::AlwaysBeep)
            .with_jammer(5, JammerKind::AlwaysSilent)
            .with_jammer(2, JammerKind::AlwaysSilent);
        assert_eq!(c.jammer(2), Some(JammerKind::AlwaysSilent));
        assert_eq!(c.jammer(5), Some(JammerKind::AlwaysSilent));
        assert_eq!(c.jammer(0), None);
        assert_eq!(c.jammers().len(), 2);
        assert!(!c.is_reliable());
    }

    #[test]
    fn effective_drop_switches_with_window() {
        let c = ChannelFault::reliable().with_drop(0.05).with_burst(BurstNoise {
            p_enter: 0.5,
            p_exit: 0.5,
            drop_p: 0.9,
        });
        let good = ChannelState { in_burst: false };
        let bad = ChannelState { in_burst: true };
        assert_eq!(c.effective_drop(&good), 0.05);
        assert_eq!(c.effective_drop(&bad), 0.9);
    }

    #[test]
    fn window_advances_and_eventually_visits_both_states() {
        let c = ChannelFault::reliable().with_burst(BurstNoise {
            p_enter: 0.3,
            p_exit: 0.3,
            drop_p: 1.0,
        });
        let mut state = ChannelState::default();
        let mut rng = aux_rng(1, 1);
        let mut saw_burst = false;
        let mut saw_good = false;
        for _ in 0..200 {
            c.advance_window(&mut state, &mut rng);
            saw_burst |= state.in_burst;
            saw_good |= !state.in_burst;
        }
        assert!(saw_burst && saw_good);
    }

    #[test]
    fn window_is_static_without_burst() {
        let c = ChannelFault::reliable().with_drop(0.5);
        let mut state = ChannelState::default();
        let mut rng = aux_rng(1, 2);
        let mut before = rng.clone();
        c.advance_window(&mut state, &mut rng);
        assert!(!state.in_burst);
        // No draw happened: the stream is untouched.
        assert_eq!(rng.gen::<u64>(), before.gen::<u64>());
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn drop_out_of_range_panics() {
        let _ = ChannelFault::reliable().with_drop(1.5);
    }

    #[test]
    #[should_panic(expected = "spurious probability")]
    fn spurious_out_of_range_panics() {
        let _ = ChannelFault::reliable().with_spurious(-0.1);
    }

    #[test]
    #[should_panic(expected = "burst p_enter")]
    fn burst_out_of_range_panics() {
        let _ = ChannelFault::reliable().with_burst(BurstNoise {
            p_enter: 2.0,
            p_exit: 0.5,
            drop_p: 0.5,
        });
    }
}
