//! The Byzantine-node adversary: *permanent* behavioral deviation.
//!
//! The paper's fault model (§1.1) is transient: RAM can be corrupted, but
//! the code is in ROM, so every node eventually follows the algorithm again.
//! This module models the complementary regime studied in the broader
//! beeping-MIS literature — nodes whose *radio behavior* deviates forever:
//!
//! - [`ByzantineBehavior::StuckBeep`] / [`ByzantineBehavior::StuckSilent`]:
//!   a radio wedged permanently on or off;
//! - [`ByzantineBehavior::Babbler`]: beeps i.i.d. with probability `p` each
//!   round, ignoring the protocol;
//! - [`ByzantineBehavior::CrashRestart`]: periodically reboots with
//!   adversary-chosen RAM (the closure picks the post-restart state);
//! - [`ByzantineBehavior::Channel2Liar`]: for two-channel protocols
//!   (Algorithm 2), asserts MIS membership on channel 2 in every round while
//!   otherwise following the protocol.
//!
//! No algorithm can stabilize *at* a Byzantine site; the measurable claim is
//! **containment** — disruption stays within a small graph radius of the
//! faulty nodes — certified downstream by `mis::containment`.
//!
//! A [`ByzantinePlan`] composes with every other adversary axis
//! ([`crate::channel`], [`crate::churn`], [`crate::faults`]). Behavior
//! randomness (babbler coins, restart states) is drawn from a dedicated
//! seeded stream inside the simulator, so executions stay bit-reproducible
//! per seed and an *empty* plan draws nothing: it reproduces the reliable
//! baseline exactly.
//!
//! # Example
//!
//! ```
//! use beeping::byzantine::{ByzantineBehavior, ByzantinePlan};
//! use beeping::protocol::Channels;
//!
//! let plan: ByzantinePlan<i32> = ByzantinePlan::new()
//!     .with_behavior(0, ByzantineBehavior::StuckBeep)
//!     .with_behavior(3, ByzantineBehavior::Babbler(0.5));
//! assert!(plan.validate(8, Channels::One).is_ok());
//! assert_eq!(plan.nodes(), vec![0, 3]);
//! ```

use std::fmt;
use std::rc::Rc;

use graphs::NodeId;
use rand_pcg::Pcg64Mcg;

use crate::protocol::Channels;

/// Signature of a state-resurrection closure: given the node, the 1-based
/// round being executed and the Byzantine RNG stream, it returns the
/// arbitrary RAM contents the node reboots with.
type ResurrectFn<S> = dyn Fn(NodeId, u64, &mut Pcg64Mcg) -> S;

/// The adversary's state-resurrection closure for
/// [`ByzantineBehavior::CrashRestart`].
pub struct Resurrect<S>(Rc<ResurrectFn<S>>);

impl<S> Resurrect<S> {
    /// Wraps a resurrection closure.
    pub fn new<F>(f: F) -> Resurrect<S>
    where
        F: Fn(NodeId, u64, &mut Pcg64Mcg) -> S + 'static,
    {
        Resurrect(Rc::new(f))
    }

    /// Draws the post-restart state for `node` at `round`.
    pub fn call(&self, node: NodeId, round: u64, rng: &mut Pcg64Mcg) -> S {
        (self.0)(node, round, rng)
    }
}

impl<S> Clone for Resurrect<S> {
    fn clone(&self) -> Resurrect<S> {
        Resurrect(Rc::clone(&self.0))
    }
}

impl<S> fmt::Debug for Resurrect<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Resurrect(closure)")
    }
}

/// How a Byzantine node deviates, applied inside the simulator round loop.
#[derive(Debug, Clone)]
pub enum ByzantineBehavior<S> {
    /// Beeps on every declared channel in every round.
    StuckBeep,
    /// Never beeps, regardless of the protocol's decision.
    StuckSilent,
    /// Beeps on every declared channel i.i.d. with probability `p ∈ [0, 1]`
    /// each round, drawn from the dedicated Byzantine stream.
    Babbler(f64),
    /// Follows the protocol but additionally beeps on channel 2 every round
    /// — a persistent false "I am in the MIS" announcement against
    /// two-channel protocols (Algorithm 2). Requires [`Channels::Two`].
    Channel2Liar,
    /// Every `period` rounds the node reboots: its state is overwritten by
    /// `resurrect` *before* the round's transmissions, then the protocol
    /// runs normally until the next restart.
    CrashRestart {
        /// Restart interval in rounds (must be `> 0`); the node reboots in
        /// rounds `period`, `2·period`, ….
        period: u64,
        /// Adversary-chosen post-restart RAM contents.
        resurrect: Resurrect<S>,
    },
}

impl<S> ByzantineBehavior<S> {
    /// Short human-readable label for reports and certificates.
    pub fn label(&self) -> String {
        match self {
            ByzantineBehavior::StuckBeep => "stuck-beep".to_string(),
            ByzantineBehavior::StuckSilent => "stuck-silent".to_string(),
            ByzantineBehavior::Babbler(p) => format!("babbler({p:.2})"),
            ByzantineBehavior::Channel2Liar => "channel2-liar".to_string(),
            ByzantineBehavior::CrashRestart { period, .. } => {
                format!("crash-restart({period})")
            }
        }
    }
}

/// A misconfigured [`ByzantinePlan`], reported by [`ByzantinePlan::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum ByzantineError {
    /// A behavior was assigned to a node id outside `0..n`.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// The network size it was validated against.
        n: usize,
    },
    /// A [`ByzantineBehavior::Babbler`] probability outside `[0, 1]`.
    InvalidProbability {
        /// The node carrying the babbler.
        node: NodeId,
        /// The offending probability.
        p: f64,
    },
    /// A [`ByzantineBehavior::CrashRestart`] with `period == 0`.
    ZeroPeriod {
        /// The node carrying the crash-restart behavior.
        node: NodeId,
    },
    /// A [`ByzantineBehavior::Channel2Liar`] against a single-channel
    /// protocol.
    Channel2Unavailable {
        /// The node carrying the liar behavior.
        node: NodeId,
    },
}

impl fmt::Display for ByzantineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ByzantineError::NodeOutOfRange { node, n } => {
                write!(f, "byzantine node {node} out of range for n={n}")
            }
            ByzantineError::InvalidProbability { node, p } => {
                write!(f, "babbler probability must be in [0,1], got {p} (node {node})")
            }
            ByzantineError::ZeroPeriod { node } => {
                write!(f, "crash-restart period must be > 0 (node {node})")
            }
            ByzantineError::Channel2Unavailable { node } => {
                write!(f, "channel2-liar requires a two-channel protocol (node {node})")
            }
        }
    }
}

impl std::error::Error for ByzantineError {}

/// Per-node Byzantine behavior overrides for one execution.
///
/// Assigning a behavior to the same node twice keeps the last assignment
/// (mirroring jammer semantics in [`crate::channel::ChannelFault`]). An
/// empty plan is the honest network.
#[derive(Debug, Clone, Default)]
pub struct ByzantinePlan<S> {
    overrides: Vec<(NodeId, ByzantineBehavior<S>)>,
}

impl<S> ByzantinePlan<S> {
    /// An empty plan: every node honest.
    pub fn new() -> ByzantinePlan<S> {
        ByzantinePlan { overrides: Vec::new() }
    }

    /// Assigns `behavior` to `node` (builder style; last assignment wins).
    pub fn with_behavior(
        mut self,
        node: NodeId,
        behavior: ByzantineBehavior<S>,
    ) -> ByzantinePlan<S> {
        self.set_behavior(node, behavior);
        self
    }

    /// Assigns `behavior` to `node` in place (last assignment wins).
    pub fn set_behavior(&mut self, node: NodeId, behavior: ByzantineBehavior<S>) {
        self.overrides.push((node, behavior));
    }

    /// The behavior of `node`, if it is Byzantine.
    pub fn behavior(&self, node: NodeId) -> Option<&ByzantineBehavior<S>> {
        self.overrides.iter().rev().find(|(v, _)| *v == node).map(|(_, b)| b)
    }

    /// The raw assignment list, in insertion order (duplicates included; the
    /// last assignment per node is the effective one).
    pub fn overrides(&self) -> &[(NodeId, ByzantineBehavior<S>)] {
        &self.overrides
    }

    /// The sorted, deduplicated set of Byzantine node ids.
    pub fn nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.overrides.iter().map(|(v, _)| *v).collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// `true` if no node is Byzantine.
    pub fn is_empty(&self) -> bool {
        self.overrides.is_empty()
    }

    /// Number of distinct Byzantine nodes.
    pub fn len(&self) -> usize {
        self.nodes().len()
    }

    /// Checks the plan against an `n`-node network running a protocol with
    /// the given channel count. Call this (or let
    /// [`crate::Simulator::with_byzantine`] call it) before execution so a
    /// misconfigured adversary fails at build time, not mid-simulation.
    ///
    /// # Errors
    ///
    /// Returns the first [`ByzantineError`] in insertion order.
    pub fn validate(&self, n: usize, channels: Channels) -> Result<(), ByzantineError> {
        for (node, behavior) in &self.overrides {
            let node = *node;
            if node >= n {
                return Err(ByzantineError::NodeOutOfRange { node, n });
            }
            match behavior {
                ByzantineBehavior::Babbler(p) => {
                    if !(0.0..=1.0).contains(p) {
                        return Err(ByzantineError::InvalidProbability { node, p: *p });
                    }
                }
                ByzantineBehavior::CrashRestart { period, .. } => {
                    if *period == 0 {
                        return Err(ByzantineError::ZeroPeriod { node });
                    }
                }
                ByzantineBehavior::Channel2Liar => {
                    if channels != Channels::Two {
                        return Err(ByzantineError::Channel2Unavailable { node });
                    }
                }
                ByzantineBehavior::StuckBeep | ByzantineBehavior::StuckSilent => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_lookup_last_assignment_wins() {
        let plan: ByzantinePlan<u32> = ByzantinePlan::new()
            .with_behavior(1, ByzantineBehavior::StuckBeep)
            .with_behavior(1, ByzantineBehavior::StuckSilent);
        assert!(matches!(plan.behavior(1), Some(ByzantineBehavior::StuckSilent)));
        assert!(plan.behavior(0).is_none());
        assert_eq!(plan.nodes(), vec![1]);
        assert_eq!(plan.len(), 1);
        assert!(!plan.is_empty());
        assert!(ByzantinePlan::<u32>::new().is_empty());
    }

    #[test]
    fn validate_catches_each_misconfiguration() {
        let out_of_range: ByzantinePlan<u32> =
            ByzantinePlan::new().with_behavior(9, ByzantineBehavior::StuckBeep);
        assert_eq!(
            out_of_range.validate(4, Channels::One),
            Err(ByzantineError::NodeOutOfRange { node: 9, n: 4 })
        );

        let bad_p: ByzantinePlan<u32> =
            ByzantinePlan::new().with_behavior(0, ByzantineBehavior::Babbler(1.5));
        assert_eq!(
            bad_p.validate(4, Channels::One),
            Err(ByzantineError::InvalidProbability { node: 0, p: 1.5 })
        );

        let zero_period: ByzantinePlan<u32> = ByzantinePlan::new().with_behavior(
            0,
            ByzantineBehavior::CrashRestart { period: 0, resurrect: Resurrect::new(|_, _, _| 7) },
        );
        assert_eq!(
            zero_period.validate(4, Channels::One),
            Err(ByzantineError::ZeroPeriod { node: 0 })
        );

        let liar: ByzantinePlan<u32> =
            ByzantinePlan::new().with_behavior(2, ByzantineBehavior::Channel2Liar);
        assert_eq!(
            liar.validate(4, Channels::One),
            Err(ByzantineError::Channel2Unavailable { node: 2 })
        );
        assert!(liar.validate(4, Channels::Two).is_ok());

        let ok: ByzantinePlan<u32> = ByzantinePlan::new()
            .with_behavior(0, ByzantineBehavior::StuckBeep)
            .with_behavior(1, ByzantineBehavior::Babbler(0.5))
            .with_behavior(
                2,
                ByzantineBehavior::CrashRestart {
                    period: 10,
                    resurrect: Resurrect::new(|_, _, _| 0),
                },
            );
        assert!(ok.validate(4, Channels::One).is_ok());
    }

    #[test]
    fn errors_display_their_context() {
        let e = ByzantineError::NodeOutOfRange { node: 9, n: 4 };
        assert!(e.to_string().contains("out of range"));
        let e = ByzantineError::InvalidProbability { node: 1, p: -0.5 };
        assert!(e.to_string().contains("[0,1]"));
        let e = ByzantineError::ZeroPeriod { node: 3 };
        assert!(e.to_string().contains("period"));
        let e = ByzantineError::Channel2Unavailable { node: 2 };
        assert!(e.to_string().contains("two-channel"));
    }

    #[test]
    fn labels_are_descriptive() {
        assert_eq!(ByzantineBehavior::<u32>::StuckBeep.label(), "stuck-beep");
        assert_eq!(ByzantineBehavior::<u32>::StuckSilent.label(), "stuck-silent");
        assert_eq!(ByzantineBehavior::<u32>::Babbler(0.5).label(), "babbler(0.50)");
        assert_eq!(ByzantineBehavior::<u32>::Channel2Liar.label(), "channel2-liar");
        let cr = ByzantineBehavior::CrashRestart {
            period: 25,
            resurrect: Resurrect::new(|_, _, _| 0u32),
        };
        assert_eq!(cr.label(), "crash-restart(25)");
    }

    #[test]
    fn resurrect_is_cloneable_and_callable() {
        let r = Resurrect::new(|node, round, _rng: &mut Pcg64Mcg| node as u64 + round);
        let r2 = r.clone();
        let mut rng = crate::rng::aux_rng(0, 0);
        assert_eq!(r.call(3, 10, &mut rng), 13);
        assert_eq!(r2.call(3, 10, &mut rng), 13);
        assert!(format!("{r:?}").contains("Resurrect"));
    }
}
