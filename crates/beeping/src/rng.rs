//! Deterministic per-node random streams.
//!
//! Every node gets an independent PCG64 stream derived from
//! `(master_seed, node_id)` through a SplitMix64 mix, so:
//!
//! - a fixed master seed reproduces an entire execution bit-for-bit;
//! - adding instrumentation or reordering *observation* code cannot perturb
//!   the protocol's random choices;
//! - two different nodes (or two different master seeds) get streams that
//!   are statistically independent for all practical purposes.

use graphs::NodeId;
use rand::SeedableRng;
use rand_pcg::Pcg64Mcg;

/// SplitMix64 finalizer: the standard 64-bit mixing function used to expand
/// one seed into many well-separated ones.
pub fn split_mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the RNG for `node` under `master_seed`.
pub fn node_rng(master_seed: u64, node: NodeId) -> Pcg64Mcg {
    let mixed = split_mix64(master_seed ^ split_mix64(node as u64 + 1));
    Pcg64Mcg::seed_from_u64(mixed)
}

/// Derives one RNG per node for an `n`-node network.
pub fn node_rngs(master_seed: u64, n: usize) -> Vec<Pcg64Mcg> {
    (0..n).map(|v| node_rng(master_seed, v)).collect()
}

/// Derives an auxiliary RNG stream (for fault injection, initial-state
/// sampling, …) that is independent of every node stream.
pub fn aux_rng(master_seed: u64, purpose: u64) -> Pcg64Mcg {
    let mixed =
        split_mix64(master_seed.wrapping_add(0xA5A5_A5A5).rotate_left(17) ^ split_mix64(!purpose));
    Pcg64Mcg::seed_from_u64(mixed)
}

/// The exact stream position of a generator, as a raw 128-bit state word —
/// the serialization half of durable snapshots. Round-trips through
/// [`pcg_from_state`].
///
/// This is the single place the workspace touches the vendored
/// `rand_pcg`'s state accessors (upstream gates the equivalent behind its
/// `serde1` feature); keep any future serialization change confined here.
pub fn pcg_state(rng: &Pcg64Mcg) -> u128 {
    rng.state()
}

/// Rebuilds a generator at an exact stream position captured by
/// [`pcg_state`] — the deserialization half of durable snapshots.
pub fn pcg_from_state(state: u128) -> Pcg64Mcg {
    Pcg64Mcg::from_state(state)
}

/// The PCG reference multiplier (128-bit MCG step). Mirrors the vendored
/// `rand_pcg` constant; [`advance_steps`]'s test pins the two against each
/// other, so a divergence cannot go unnoticed.
const PCG_MULTIPLIER: u128 = 0x2360_ed05_1fc6_5da4_4385_df64_9fcc_f645;

/// Advances a generator by exactly `steps` outputs in O(log steps) time,
/// without producing them — the jump-ahead backing the frontier engine's
/// RNG draw accounting (`beeping::sim`): a settled node that would draw
/// `k` coins per skipped round is ticked in bulk when it wakes.
///
/// An MCG's step is `state ← state · M (mod 2^128)`, so `steps` outputs
/// compose to a single multiplication by `M^steps`, computed here by
/// square-and-multiply. Equivalent to calling `next_u64` `steps` times.
pub fn advance_steps(rng: &mut Pcg64Mcg, steps: u128) {
    let mut mult: u128 = 1;
    let mut base = PCG_MULTIPLIER;
    let mut k = steps;
    while k > 0 {
        if k & 1 == 1 {
            mult = mult.wrapping_mul(base);
        }
        base = base.wrapping_mul(base);
        k >>= 1;
    }
    *rng = pcg_from_state(pcg_state(rng).wrapping_mul(mult));
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn split_mix_changes_input() {
        assert_ne!(split_mix64(0), 0);
        assert_ne!(split_mix64(1), split_mix64(2));
    }

    #[test]
    fn node_streams_are_deterministic() {
        let mut a = node_rng(42, 7);
        let mut b = node_rng(42, 7);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn node_streams_differ_across_nodes_and_seeds() {
        let mut a = node_rng(42, 0);
        let mut b = node_rng(42, 1);
        let mut c = node_rng(43, 0);
        let (x, y, z) = (a.gen::<u64>(), b.gen::<u64>(), c.gen::<u64>());
        assert_ne!(x, y);
        assert_ne!(x, z);
        assert_ne!(y, z);
    }

    #[test]
    fn node_rngs_count() {
        assert_eq!(node_rngs(1, 5).len(), 5);
        assert!(node_rngs(1, 0).is_empty());
    }

    #[test]
    fn aux_stream_independent_of_node_zero() {
        let mut aux = aux_rng(42, 0);
        let mut node = node_rng(42, 0);
        // Not a strong independence test — just that they are not the same
        // stream.
        let same = (0..8).all(|_| aux.gen::<u64>() == node.gen::<u64>());
        assert!(!same);
    }

    #[test]
    fn pcg_state_round_trips_mid_stream() {
        let mut rng = node_rng(42, 3);
        for _ in 0..5 {
            rng.gen::<u64>();
        }
        let mut restored = pcg_from_state(pcg_state(&rng));
        for _ in 0..16 {
            assert_eq!(rng.gen::<u64>(), restored.gen::<u64>());
        }
    }

    #[test]
    fn advance_steps_equals_sequential_draws() {
        // Pins the jump-ahead against the vendored generator: advancing by
        // k must land on exactly the state reached by k next_u64 calls (and
        // hence pins PCG_MULTIPLIER against the vendored constant).
        for k in [0u128, 1, 2, 3, 7, 64, 1000, 123_457] {
            let mut jumped = node_rng(42, 5);
            let mut walked = node_rng(42, 5);
            advance_steps(&mut jumped, k);
            for _ in 0..k {
                walked.gen::<u64>();
            }
            assert_eq!(pcg_state(&jumped), pcg_state(&walked), "k={k}");
            assert_eq!(jumped.gen::<u64>(), walked.gen::<u64>(), "k={k}");
        }
    }

    #[test]
    fn advance_steps_composes() {
        // Jumping a+b equals jumping a then b — the property the frontier
        // engine relies on when a settled node is ticked across several
        // disturbance epochs.
        let mut once = node_rng(7, 0);
        let mut twice = node_rng(7, 0);
        advance_steps(&mut once, 1000 + 37);
        advance_steps(&mut twice, 1000);
        advance_steps(&mut twice, 37);
        assert_eq!(pcg_state(&once), pcg_state(&twice));
    }

    #[test]
    fn bernoulli_rate_sane() {
        // Sanity: gen_bool(0.25) over many draws lands near 0.25.
        let mut rng = node_rng(7, 3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "hits={hits}");
    }
}
