//! Topology churn: scheduled edge and node events over one execution.
//!
//! The third fault axis next to RAM corruption ([`crate::faults`]) and
//! channel noise ([`crate::channel`]): the communication graph itself
//! changes while the protocol runs. A self-stabilizing algorithm treats a
//! topology change exactly like a transient fault — the configuration it
//! converged to is no longer legal for the new graph, and the stabilization
//! bound applies again from the event.
//!
//! As with [`crate::faults::FaultPlan`], this module is the *scheduling*
//! half; applying the events to a live execution is the simulator's job
//! (edge events via [`crate::Simulator::insert_edge`] /
//! [`crate::Simulator::remove_edge`], node events via
//! [`crate::Simulator::node_leave`] / [`crate::Simulator::node_join`]).
//! Node ids are stable across churn: a departed node stays allocated (and
//! inactive) so it can later rejoin.

use graphs::NodeId;

/// Why a churn action is invalid for (or could not be applied to) a
/// network of `n` nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChurnError {
    /// An action references a node outside `0..n`.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// Network size.
        n: usize,
    },
    /// An edge action names the same node twice (the beeping model is
    /// defined on simple graphs) or a join lists the joining node as its
    /// own neighbor.
    SelfEdge(NodeId),
}

impl std::fmt::Display for ChurnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChurnError::NodeOutOfRange { node, n } => {
                write!(f, "churn action references node {node}, but n={n}")
            }
            ChurnError::SelfEdge(v) => {
                write!(f, "churn action creates a self edge at node {v}")
            }
        }
    }
}

impl std::error::Error for ChurnError {}

/// A single topology mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChurnAction {
    /// Insert the undirected edge `{u, v}` (no-op if already present).
    AddEdge(NodeId, NodeId),
    /// Remove the undirected edge `{u, v}` (no-op if absent).
    RemoveEdge(NodeId, NodeId),
    /// The node crashes/departs: all incident edges vanish and it stops
    /// transmitting, hearing and updating state.
    NodeLeave(NodeId),
    /// The node (re)joins with the given incident edges and arbitrary
    /// ("fresh boot") state.
    NodeJoin(NodeId, Vec<NodeId>),
}

impl ChurnAction {
    /// The node ids this action touches (for validation against `n`).
    pub fn touched_nodes(&self) -> Vec<NodeId> {
        match self {
            ChurnAction::AddEdge(u, v) | ChurnAction::RemoveEdge(u, v) => vec![*u, *v],
            ChurnAction::NodeLeave(v) => vec![*v],
            ChurnAction::NodeJoin(v, neighbors) => {
                let mut nodes = vec![*v];
                nodes.extend_from_slice(neighbors);
                nodes
            }
        }
    }
}

/// A scheduled churn event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnEvent {
    /// Round *after* which the event strikes (0 = mutate the initial graph
    /// before any round runs).
    pub after_round: u64,
    /// The topology mutation.
    pub action: ChurnAction,
}

impl ChurnEvent {
    /// Creates an event applying `action` after `after_round` rounds.
    pub fn new(after_round: u64, action: ChurnAction) -> ChurnEvent {
        ChurnEvent { after_round, action }
    }
}

/// A schedule of topology changes over one execution, kept sorted by round
/// (insertion order among events of the same round).
///
/// # Example
///
/// ```
/// use beeping::churn::{ChurnAction, ChurnPlan};
///
/// let plan = ChurnPlan::new()
///     .with_event(50, ChurnAction::RemoveEdge(0, 1))
///     .with_event(20, ChurnAction::NodeLeave(3))
///     .with_event(80, ChurnAction::NodeJoin(3, vec![0, 2]));
/// assert_eq!(plan.events().len(), 3);
/// assert_eq!(plan.events()[0].after_round, 20); // sorted on insert
/// assert_eq!(plan.last_event_round(), Some(80));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChurnPlan {
    events: Vec<ChurnEvent>,
}

impl ChurnPlan {
    /// An empty plan (static topology).
    pub fn new() -> ChurnPlan {
        ChurnPlan::default()
    }

    /// Adds an event (builder style).
    pub fn with_event(mut self, after_round: u64, action: ChurnAction) -> ChurnPlan {
        self.push(ChurnEvent::new(after_round, action));
        self
    }

    /// Adds an event in place, keeping the schedule sorted by round (stable
    /// among events of the same round).
    pub fn push(&mut self, event: ChurnEvent) {
        let pos = self.events.partition_point(|e| e.after_round <= event.after_round);
        self.events.insert(pos, event);
    }

    /// The scheduled events, sorted by round (insertion order within a
    /// round).
    pub fn events(&self) -> &[ChurnEvent] {
        &self.events
    }

    /// `true` if no event is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All events scheduled exactly after `round`, in schedule order.
    pub fn events_after_round(&self, round: u64) -> impl Iterator<Item = &ChurnEvent> {
        self.events.iter().filter(move |e| e.after_round == round)
    }

    /// The latest scheduled event round, or `None` for an empty plan.
    pub fn last_event_round(&self) -> Option<u64> {
        self.events.last().map(|e| e.after_round)
    }

    /// Checks every event against a network of `n` nodes: all touched node
    /// ids must be in range and no edge action may form a self loop. Called
    /// by drivers before execution so schedule typos fail fast — a plan
    /// that passes here applies infallibly through the simulator's churn
    /// API.
    ///
    /// # Errors
    ///
    /// Returns the first [`ChurnError`] found, in schedule order.
    pub fn validate(&self, n: usize) -> Result<(), ChurnError> {
        for event in &self.events {
            for v in event.action.touched_nodes() {
                if v >= n {
                    return Err(ChurnError::NodeOutOfRange { node: v, n });
                }
            }
            match &event.action {
                ChurnAction::AddEdge(u, v) | ChurnAction::RemoveEdge(u, v) if u == v => {
                    return Err(ChurnError::SelfEdge(*u));
                }
                ChurnAction::NodeJoin(v, neighbors) if neighbors.contains(v) => {
                    return Err(ChurnError::SelfEdge(*v));
                }
                _ => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_sorts_on_insert() {
        let plan = ChurnPlan::new()
            .with_event(30, ChurnAction::AddEdge(0, 1))
            .with_event(10, ChurnAction::NodeLeave(2))
            .with_event(30, ChurnAction::RemoveEdge(1, 2))
            .with_event(20, ChurnAction::NodeJoin(2, vec![0]));
        let rounds: Vec<u64> = plan.events().iter().map(|e| e.after_round).collect();
        assert_eq!(rounds, vec![10, 20, 30, 30]);
        // Same-round events keep insertion order.
        assert_eq!(plan.events()[2].action, ChurnAction::AddEdge(0, 1));
        assert_eq!(plan.events()[3].action, ChurnAction::RemoveEdge(1, 2));
        assert_eq!(plan.last_event_round(), Some(30));
        assert!(!plan.is_empty());
        assert!(ChurnPlan::new().is_empty());
        assert_eq!(ChurnPlan::new().last_event_round(), None);
    }

    #[test]
    fn events_after_round_filters() {
        let plan = ChurnPlan::new()
            .with_event(5, ChurnAction::AddEdge(0, 1))
            .with_event(5, ChurnAction::NodeLeave(1))
            .with_event(9, ChurnAction::RemoveEdge(0, 1));
        assert_eq!(plan.events_after_round(5).count(), 2);
        assert_eq!(plan.events_after_round(9).count(), 1);
        assert_eq!(plan.events_after_round(7).count(), 0);
    }

    #[test]
    fn touched_nodes_covers_all_variants() {
        assert_eq!(ChurnAction::AddEdge(1, 2).touched_nodes(), vec![1, 2]);
        assert_eq!(ChurnAction::RemoveEdge(3, 4).touched_nodes(), vec![3, 4]);
        assert_eq!(ChurnAction::NodeLeave(5).touched_nodes(), vec![5]);
        assert_eq!(ChurnAction::NodeJoin(6, vec![7, 8]).touched_nodes(), vec![6, 7, 8]);
    }

    #[test]
    fn validate_accepts_in_range() {
        assert_eq!(
            ChurnPlan::new().with_event(1, ChurnAction::NodeJoin(2, vec![0, 1])).validate(3),
            Ok(())
        );
    }

    #[test]
    fn validate_rejects_out_of_range() {
        assert_eq!(
            ChurnPlan::new().with_event(1, ChurnAction::AddEdge(0, 7)).validate(3),
            Err(ChurnError::NodeOutOfRange { node: 7, n: 3 })
        );
    }

    #[test]
    fn validate_rejects_self_edges() {
        assert_eq!(
            ChurnPlan::new().with_event(1, ChurnAction::AddEdge(2, 2)).validate(3),
            Err(ChurnError::SelfEdge(2))
        );
        assert_eq!(
            ChurnPlan::new().with_event(1, ChurnAction::NodeJoin(1, vec![0, 1])).validate(3),
            Err(ChurnError::SelfEdge(1))
        );
    }
}
