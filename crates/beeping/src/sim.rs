//! Round execution of a [`BeepingProtocol`] over a graph.

use graphs::{Graph, NodeId};
use rand_pcg::Pcg64Mcg;

use crate::protocol::{BeepSignal, BeepingProtocol};
use crate::rng;
use crate::trace::RoundReport;

pub use crate::protocol::Channels as SimulatorChannels;

/// Listening capability of a transmitting node.
///
/// The paper's model is **full duplex** ("beeping model with collision
/// detection"): a beeping node still hears its neighbors. The weaker
/// half-duplex variant from the broader beeping literature — where
/// transmitting drowns out reception — is provided for model ablations:
/// Algorithm 1's lone-beep detection fundamentally requires full duplex,
/// and experiment `ABL-HD` demonstrates the failure mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DuplexMode {
    /// A beeping node hears its neighbors (the paper's model).
    #[default]
    Full,
    /// A beeping node hears nothing that round.
    Half,
}

/// A synchronous-round simulator of the full-duplex beeping model.
///
/// Each call to [`Simulator::step`] executes one round:
///
/// 1. every node draws its transmission from
///    [`BeepingProtocol::transmit`] using its private random stream;
/// 2. the network delivers, to each node, the OR over its *neighbors'*
///    transmissions per channel (collision-detection semantics: "≥ 1 beep",
///    nothing more);
/// 3. every node updates its state via [`BeepingProtocol::receive`].
///
/// The simulator is deterministic for a fixed `(graph, protocol, initial
/// states, master seed)`.
///
/// # Example
///
/// See the crate-level example in [`crate`].
#[derive(Debug)]
pub struct Simulator<'g, P: BeepingProtocol> {
    graph: &'g Graph,
    protocol: P,
    states: Vec<P::State>,
    rngs: Vec<Pcg64Mcg>,
    round: u64,
    sent: Vec<BeepSignal>,
    heard: Vec<BeepSignal>,
    duplex: DuplexMode,
}

impl<'g, P: BeepingProtocol> Simulator<'g, P> {
    /// Creates a simulator over `graph` running `protocol` from
    /// `initial_states`, with all node randomness derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `initial_states.len() != graph.len()`.
    pub fn new(
        graph: &'g Graph,
        protocol: P,
        initial_states: Vec<P::State>,
        seed: u64,
    ) -> Simulator<'g, P> {
        assert_eq!(
            initial_states.len(),
            graph.len(),
            "one initial state per node is required"
        );
        let n = graph.len();
        Simulator {
            graph,
            protocol,
            states: initial_states,
            rngs: rng::node_rngs(seed, n),
            round: 0,
            sent: vec![BeepSignal::silent(); n],
            heard: vec![BeepSignal::silent(); n],
            duplex: DuplexMode::Full,
        }
    }

    /// Switches to the given duplex mode (builder style); the default is
    /// [`DuplexMode::Full`], the paper's model.
    pub fn with_duplex(mut self, duplex: DuplexMode) -> Simulator<'g, P> {
        self.duplex = duplex;
        self
    }

    /// The active duplex mode.
    pub fn duplex(&self) -> DuplexMode {
        self.duplex
    }

    /// The graph being simulated.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// The protocol (the ROM).
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Rounds executed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Current node states (the RAM), indexed by node id.
    pub fn states(&self) -> &[P::State] {
        &self.states
    }

    /// The state of a single node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn state(&self, node: NodeId) -> &P::State {
        &self.states[node]
    }

    /// Overwrites the state of `node` — the transient-fault ("RAM
    /// corruption") entry point. The protocol logic (ROM) is untouched.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn corrupt_state(&mut self, node: NodeId, state: P::State) {
        self.states[node] = state;
    }

    /// Applies `f` to every node state — bulk fault injection or
    /// adversarial re-initialization mid-run.
    pub fn corrupt_all<F: FnMut(NodeId, &mut P::State)>(&mut self, mut f: F) {
        for (v, s) in self.states.iter_mut().enumerate() {
            f(v, s);
        }
    }

    /// The transmissions of the most recent round (all silent before the
    /// first [`Simulator::step`]).
    pub fn last_sent(&self) -> &[BeepSignal] {
        &self.sent
    }

    /// The observations of the most recent round.
    pub fn last_heard(&self) -> &[BeepSignal] {
        &self.heard
    }

    /// Executes one synchronous round and reports aggregate beep activity.
    ///
    /// # Panics
    ///
    /// Panics (in debug and release) if the protocol transmits on a channel
    /// it did not declare via [`BeepingProtocol::channels`] — that would be
    /// a model violation, not a recoverable condition.
    pub fn step(&mut self) -> RoundReport {
        let n = self.graph.len();
        let channels = self.protocol.channels();
        // Phase 1: transmissions.
        for v in 0..n {
            let signal = self.protocol.transmit(v, &self.states[v], &mut self.rngs[v]);
            assert!(
                signal.allowed_by(channels),
                "protocol beeped on an undeclared channel (node {v}, signal {signal})"
            );
            self.sent[v] = signal;
        }
        // Phase 2: delivery — OR over neighbors, per channel. A node does
        // not hear itself: beeps are sent to neighbors only (paper §1).
        // Under half duplex, a transmitting node additionally hears nothing.
        for v in 0..n {
            let mut heard = BeepSignal::silent();
            if self.duplex == DuplexMode::Full || self.sent[v].is_silent() {
                for &u in self.graph.neighbors(v) {
                    heard.merge(self.sent[u as usize]);
                }
            }
            self.heard[v] = heard;
        }
        // Phase 3: state updates.
        for v in 0..n {
            self.protocol.receive(
                v,
                &mut self.states[v],
                self.sent[v],
                self.heard[v],
                &mut self.rngs[v],
            );
        }
        self.round += 1;
        RoundReport::from_signals(self.round, &self.sent, &self.heard)
    }

    /// Runs until `stop(states) == true` or `max_rounds` total rounds have
    /// executed; returns the first round count (1-based) at which `stop`
    /// held, or `None` on budget exhaustion.
    ///
    /// `stop` is evaluated *before* the first step (round count 0) and after
    /// every step.
    pub fn run_until<F>(&mut self, max_rounds: u64, mut stop: F) -> Option<u64>
    where
        F: FnMut(&Simulator<'g, P>) -> bool,
    {
        if stop(self) {
            return Some(self.round);
        }
        while self.round < max_rounds {
            self.step();
            if stop(self) {
                return Some(self.round);
            }
        }
        None
    }

    /// Runs exactly `rounds` rounds, discarding the per-round reports.
    pub fn run(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Consumes the simulator, returning the final states.
    pub fn into_states(self) -> Vec<P::State> {
        self.states
    }

    /// Captures the complete execution state — node states, per-node RNG
    /// positions and the round counter — so the run can later be branched
    /// or replayed from this exact point via [`Simulator::restore`].
    pub fn checkpoint(&self) -> Checkpoint<P::State> {
        Checkpoint {
            states: self.states.clone(),
            rngs: self.rngs.clone(),
            round: self.round,
            sent: self.sent.clone(),
            heard: self.heard.clone(),
        }
    }

    /// Rewinds (or fast-forwards) the simulator to a previously captured
    /// [`Checkpoint`]. Continuing from a restored checkpoint reproduces the
    /// original continuation exactly.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint was taken on a different-sized network.
    pub fn restore(&mut self, checkpoint: &Checkpoint<P::State>) {
        assert_eq!(
            checkpoint.states.len(),
            self.graph.len(),
            "checkpoint belongs to a different network"
        );
        self.states = checkpoint.states.clone();
        self.rngs = checkpoint.rngs.clone();
        self.round = checkpoint.round;
        self.sent = checkpoint.sent.clone();
        self.heard = checkpoint.heard.clone();
    }
}

/// A captured execution point of a [`Simulator`]; see
/// [`Simulator::checkpoint`].
#[derive(Debug, Clone)]
pub struct Checkpoint<S> {
    states: Vec<S>,
    rngs: Vec<Pcg64Mcg>,
    round: u64,
    sent: Vec<BeepSignal>,
    heard: Vec<BeepSignal>,
}

impl<S> Checkpoint<S> {
    /// The round at which the checkpoint was captured.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The captured node states.
    pub fn states(&self) -> &[S] {
        &self.states
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Channels;
    use graphs::generators::classic;
    use rand::RngCore;

    /// Parity protocol: node beeps iff its counter is even; counter
    /// increments when it hears a beep.
    struct Parity;
    impl BeepingProtocol for Parity {
        type State = u64;
        fn channels(&self) -> Channels {
            Channels::One
        }
        fn transmit(&self, _: NodeId, state: &u64, _: &mut dyn RngCore) -> BeepSignal {
            if state % 2 == 0 {
                BeepSignal::channel1()
            } else {
                BeepSignal::silent()
            }
        }
        fn receive(&self, _: NodeId, state: &mut u64, _: BeepSignal, heard: BeepSignal, _: &mut dyn RngCore) {
            if heard.on_channel1() {
                *state += 1;
            }
        }
    }

    #[test]
    fn no_self_hearing() {
        // A single isolated node beeps but must hear nothing.
        let g = Graph::empty(1);
        let mut sim = Simulator::new(&g, Parity, vec![0], 0);
        let report = sim.step();
        assert_eq!(report.beeps_channel1, 1);
        assert_eq!(report.hearers_channel1, 0);
        // The counter never advances: it never hears anything.
        sim.run(10);
        assert_eq!(*sim.state(0), 0);
    }

    #[test]
    fn half_duplex_deafens_transmitters() {
        // Both path endpoints beep in round 1; under half duplex neither
        // hears the other, so neither counter advances.
        let g = classic::path(2);
        let mut sim =
            Simulator::new(&g, Parity, vec![0, 0], 0).with_duplex(DuplexMode::Half);
        assert_eq!(sim.duplex(), DuplexMode::Half);
        sim.step();
        assert_eq!(sim.states(), &[0, 0]);
        // A silent node still hears: make node 1 silent (odd counter).
        let mut sim =
            Simulator::new(&g, Parity, vec![0, 1], 0).with_duplex(DuplexMode::Half);
        sim.step();
        assert_eq!(sim.states(), &[0, 2]); // only the silent node heard
    }

    #[test]
    fn or_semantics_on_star() {
        // All leaves beep in round 1 (state 0 = even); the hub hears one bit.
        let g = classic::star(5);
        let mut sim = Simulator::new(&g, Parity, vec![0, 0, 0, 0, 0], 0);
        sim.step();
        // Hub heard (4 leaf beeps → 1 bit) and each leaf heard the hub.
        assert!(sim.last_heard().iter().all(|h| h.on_channel1()));
        assert!(sim.states().iter().all(|&s| s == 1));
    }

    #[test]
    fn deterministic_for_seed() {
        struct Coin;
        impl BeepingProtocol for Coin {
            type State = u32;
            fn channels(&self) -> Channels {
                Channels::One
            }
            fn transmit(&self, _: NodeId, _: &u32, rng: &mut dyn RngCore) -> BeepSignal {
                if rng.next_u32() % 2 == 0 {
                    BeepSignal::channel1()
                } else {
                    BeepSignal::silent()
                }
            }
            fn receive(&self, _: NodeId, s: &mut u32, sent: BeepSignal, _: BeepSignal, _: &mut dyn RngCore) {
                *s = s.wrapping_mul(31).wrapping_add(sent.on_channel1() as u32);
            }
        }
        let g = classic::cycle(16);
        let run = |seed| {
            let mut sim = Simulator::new(&g, Coin, vec![0; 16], seed);
            sim.run(50);
            sim.into_states()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn run_until_stops_at_predicate() {
        let g = classic::path(2);
        let mut sim = Simulator::new(&g, Parity, vec![0, 0], 0);
        // Both nodes beep in round 1 (counter 0 is even), hear each other,
        // and increment to 1 — then both go silent forever.
        let stopped = sim.run_until(100, |s| s.states().iter().all(|&c| c >= 1));
        assert_eq!(stopped, Some(1));
        assert_eq!(sim.states(), &[1, 1]);
    }

    #[test]
    fn run_until_checks_initial_state() {
        let g = classic::path(2);
        let mut sim = Simulator::new(&g, Parity, vec![5, 5], 0);
        assert_eq!(sim.run_until(100, |s| s.states().iter().all(|&c| c == 5)), Some(0));
        assert_eq!(sim.round(), 0);
    }

    #[test]
    fn run_until_budget_exhaustion() {
        let g = classic::path(2);
        let mut sim = Simulator::new(&g, Parity, vec![0, 0], 0);
        assert_eq!(sim.run_until(5, |_| false), None);
        assert_eq!(sim.round(), 5);
    }

    #[test]
    fn checkpoint_restore_reproduces_continuation() {
        struct Coin2;
        impl BeepingProtocol for Coin2 {
            type State = u32;
            fn channels(&self) -> Channels {
                Channels::One
            }
            fn transmit(&self, _: NodeId, _: &u32, rng: &mut dyn RngCore) -> BeepSignal {
                if rng.next_u32() % 3 == 0 {
                    BeepSignal::channel1()
                } else {
                    BeepSignal::silent()
                }
            }
            fn receive(
                &self,
                _: NodeId,
                s: &mut u32,
                sent: BeepSignal,
                heard: BeepSignal,
                _: &mut dyn RngCore,
            ) {
                *s = s
                    .wrapping_mul(17)
                    .wrapping_add(sent.on_channel1() as u32)
                    .wrapping_add(2 * heard.on_channel1() as u32);
            }
        }
        let g = classic::cycle(12);
        let mut sim = Simulator::new(&g, Coin2, vec![0; 12], 5);
        sim.run(20);
        let cp = sim.checkpoint();
        assert_eq!(cp.round(), 20);
        sim.run(30);
        let final_a = sim.states().to_vec();
        // Rewind and replay.
        sim.restore(&cp);
        assert_eq!(sim.round(), 20);
        assert_eq!(sim.states(), cp.states());
        sim.run(30);
        assert_eq!(sim.states(), final_a.as_slice());
    }

    #[test]
    fn corrupt_state_changes_behavior() {
        let g = classic::path(2);
        let mut sim = Simulator::new(&g, Parity, vec![0, 0], 0);
        sim.corrupt_state(0, 1); // odd: silent
        sim.corrupt_state(1, 1);
        sim.step();
        assert_eq!(sim.states(), &[1, 1]); // nobody beeped, nothing heard
    }

    #[test]
    fn corrupt_all_applies_everywhere() {
        let g = classic::cycle(4);
        let mut sim = Simulator::new(&g, Parity, vec![0; 4], 0);
        sim.corrupt_all(|v, s| *s = v as u64);
        assert_eq!(sim.states(), &[0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "undeclared channel")]
    fn channel_discipline_enforced() {
        struct Cheater;
        impl BeepingProtocol for Cheater {
            type State = ();
            fn channels(&self) -> Channels {
                Channels::One
            }
            fn transmit(&self, _: NodeId, _: &(), _: &mut dyn RngCore) -> BeepSignal {
                BeepSignal::channel2()
            }
            fn receive(&self, _: NodeId, _: &mut (), _: BeepSignal, _: BeepSignal, _: &mut dyn RngCore) {}
        }
        let g = classic::path(2);
        Simulator::new(&g, Cheater, vec![(), ()], 0).step();
    }

    #[test]
    #[should_panic(expected = "one initial state per node")]
    fn wrong_state_count_panics() {
        let g = classic::path(3);
        let _ = Simulator::new(&g, Parity, vec![0, 0], 0);
    }
}
